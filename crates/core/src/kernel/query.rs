//! The three-step query mechanism (§2.1.5), staged as plan → bind → fire → project.
//!
//! "Queries are executed through retrieval of existing data, retrieval
//! plus interpolation, or retrieval plus derivation." Step 1 retrieves
//! stored objects matching the spatio-temporal predicate; step 2
//! interpolates between bracketing snapshots when the query pins an
//! instant; step 3 derives:
//!
//! * **plan** — `Gaea::derivation_plan` builds the filtered Petri-net
//!   view of the catalog and backward-chains from the goal class to a
//!   firing plan;
//! * **bind** — `Gaea::binding_candidates` enumerates admissible input
//!   selections per argument (co-temporal `SETOF` groups first, exact
//!   query-instant matches preferred);
//! * **fire** — `Gaea::fire_with_chosen_bindings` walks the bounded
//!   candidate product, reusing identical *current* prior tasks when
//!   [`Gaea::reuse_tasks`] allows, re-firing *stale* ones (their inputs
//!   were mutated after derivation), and skipping derivations the current
//!   plan already consumed;
//! * **project** — `Gaea::project_outcome` re-retrieves the goal class
//!   so the answer is served from the store exactly like step 1 would,
//!   staleness flags included.
//!
//! The declarative `RETRIEVE … WHERE …` surface (`gaea-lang`) lowers onto
//! these stages: WHERE attribute predicates join the step-1 retrieval
//! filter (and the planner's goal marking), `DERIVE USING p` pins the
//! goal's producer in the plan stage, `DERIVE COST oldest|newest`
//! overrides the bind stage's candidate ordering (falling back to the
//! fired process's declared `COST`, then to the heuristic), `FRESH`
//! re-fires stale step-1 hits instead of serving flagged history, and the
//! projection prunes returned attributes after every stage has run.

use super::Gaea;
use crate::derivation::executor::{self, PreparedFiring, TaskRun};
use crate::derivation::net::DerivationNet;
use crate::error::{KernelError, KernelResult};
use crate::ids::{ClassId, ObjectId, ProcessId, TaskId};
use crate::object::{DataObject, SPATIAL_ATTR, TEMPORAL_ATTR};
use crate::query::{
    AccessPath, AttrCmp, Query, QueryMethod, QueryOutcome, QueryStrategy, QueryTarget, ScanPlan,
    TimeSel,
};
use crate::schema::{ClassDef, ProcessArg, ProcessDef, ProcessKind};
use crate::task::{Task, TaskKind};
use crate::template::Template;
use gaea_adt::{AbsTime, Value};
use gaea_petri::backward::plan_derivation;
use gaea_sched::{DepGraph, NodeId};
use gaea_store::{Oid, Predicate};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of the bind/fire walker for one planned firing.
pub(crate) enum ChosenFiring {
    /// The derivation happened (fresh firing) or an identical current
    /// task was reused; either way a recorded task answers it.
    Fired(TaskRun),
    /// Bind-only mode: these bindings passed the guards and await a
    /// prepare/commit cycle.
    Bound(Vec<(String, Vec<ObjectId>)>),
    /// The identical derivation is already in flight as a background
    /// job ([`Gaea::submit_derivation`]); firing it again would record
    /// a duplicate. Synchronous callers surface this as
    /// [`KernelError::DerivationPending`]; a duplicate submission
    /// dedups to the id.
    Pending(super::jobs::JobId),
}

impl Gaea {
    // ------------------------------------------------------------------
    // The three-step query mechanism (§2.1.5)
    // ------------------------------------------------------------------

    /// Execute a query through retrieval → interpolation → derivation.
    ///
    /// Step-1 answers classify every hit against the store's MVCC version
    /// counters: derived objects whose recorded inputs drifted since
    /// derivation are still served (they are §2.1.1 history) but listed in
    /// [`QueryOutcome::stale`] so the caller can
    /// [`Gaea::refresh_object`](super::Gaea::refresh_object) them.
    pub fn query(&mut self, q: &Query) -> KernelResult<QueryOutcome> {
        // One observability trace per statement: the stage spans opened
        // below become the outcome's `EXPLAIN ANALYZE` profile, and slow
        // traces are retained in the process-wide ring.
        let tracer = gaea_obs::start_trace("query", q.target.name());
        let mut result = self.query_stages(q);
        if let Ok(outcome) = &mut result {
            if let Some(trace) = tracer.finish() {
                crate::query::apply_trace(outcome, &trace);
            }
        }
        result
    }

    /// The staged body of [`Gaea::query`], running inside the statement
    /// trace (a failed statement still finalizes the trace through the
    /// guard's drop).
    fn query_stages(&mut self, q: &Query) -> KernelResult<QueryOutcome> {
        let class_names = {
            let _plan = gaea_obs::span("plan");
            let class_names = self.target_classes(q)?;
            self.validate_query(&class_names, q)?;
            // Optimizer: give the query's predicate-hot attributes index or
            // grid access paths on every large-enough target extent.
            self.ensure_access_paths(&class_names, q)?;
            // Commit any finished background jobs first: their outputs are
            // stored data this very query may retrieve.
            self.pump_jobs();
            class_names
        };
        // Step 1: direct retrieval.
        let (hits, plans, stale) = {
            let _retrieve = gaea_obs::span("retrieve");
            let (hits, plans) = self.retrieve(&class_names, q)?;
            for p in &plans {
                gaea_obs::note("path", p.to_string());
            }
            let stale = self.flag_stale(&hits);
            (hits, plans, stale)
        };
        if !hits.is_empty() {
            return self.finish_outcome(
                QueryOutcome {
                    objects: hits,
                    method: QueryMethod::Retrieved,
                    tasks: vec![],
                    stale,
                    pending: vec![],
                    plans,
                    profile: None,
                },
                q,
            );
        }
        // `DERIVE ASYNC`: nothing stored answers the query — submit the
        // derivation as a background job and return its id instead of
        // blocking on the (possibly minutes-long) firing.
        if q.async_submit {
            let _submit = gaea_obs::span("submit");
            let job = self.submit_derivation(q)?;
            // This query's own job leads; other in-flight jobs of the
            // target classes follow, honouring `pending`'s contract
            // (the submission may also have resolved instantly through
            // reuse, in which case only the listing here names it).
            let mut pending = vec![job];
            pending.extend(
                self.pending_jobs_for(&class_names)
                    .into_iter()
                    .filter(|other| *other != job),
            );
            return Ok(QueryOutcome {
                objects: vec![],
                method: QueryMethod::Submitted,
                tasks: vec![],
                stale: vec![],
                pending,
                plans: vec![],
                profile: None,
            });
        }
        let steps: &[QueryMethod] = match q.strategy {
            QueryStrategy::RetrieveOnly => &[],
            QueryStrategy::PreferInterpolation => {
                &[QueryMethod::Interpolated, QueryMethod::Derived]
            }
            QueryStrategy::PreferDerivation => &[QueryMethod::Derived, QueryMethod::Interpolated],
        };
        let mut failures: Vec<String> = Vec::new();
        for step in steps {
            let attempt = match step {
                QueryMethod::Interpolated => {
                    let _interpolate = gaea_obs::span("interpolate");
                    self.try_interpolate(&class_names, q)
                }
                QueryMethod::Derived => {
                    let _derive = gaea_obs::span("derive");
                    self.try_derive(&class_names, q, false)
                }
                QueryMethod::Retrieved => unreachable!("retrieval ran first"),
                QueryMethod::Submitted => unreachable!("async submission returned above"),
            };
            match attempt {
                Ok(Some(outcome)) => return self.finish_outcome(outcome, q),
                Ok(None) => failures.push(format!("{step:?}: not applicable")),
                Err(e) => failures.push(format!("{step:?}: {e}")),
            }
        }
        Err(KernelError::NoData(format!(
            "classes {class_names:?} hold no matching objects; {}",
            if failures.is_empty() {
                "strategy forbids computation".to_string()
            } else {
                failures.join("; ")
            }
        )))
    }

    /// Validate the declarative parts of a query against the catalog
    /// before any stage runs: attribute predicates must name attributes
    /// every target class carries (extents included) *at the predicate
    /// constant's own type* — a cross-type comparison would silently
    /// match nothing — projections must name known attributes, and a
    /// pinned `USING` process must exist and produce a target class.
    pub(crate) fn validate_query(&self, classes: &[String], q: &Query) -> KernelResult<()> {
        validate_query_in(&self.catalog, classes, q)
    }

    /// Final stage shared by every step: honour `FRESH`, then apply the
    /// projection to the returned objects.
    ///
    /// `FRESH` is refuse-stale, not serve-history: every stale hit is
    /// re-fired through [`Gaea::refresh_object`], and the answer is then
    /// served from the store again, exactly like step 1 — so a
    /// replacement only appears while it still satisfies the query's own
    /// predicates (a re-derivation may well move the timestamp or an
    /// attribute out of the queried window). Stale hits whose producer
    /// cannot be re-fired automatically (manual procedures, query-driven
    /// interpolations) are *excluded* from the answer rather than served
    /// stale or allowed to fail the whole query. A query whose answer
    /// empties out under those rules errors with [`KernelError::NoData`].
    fn finish_outcome(
        &mut self,
        mut outcome: QueryOutcome,
        q: &Query,
    ) -> KernelResult<QueryOutcome> {
        let _project = gaea_obs::span("project");
        if q.fresh && !outcome.stale.is_empty() {
            let class_names = self.target_classes(q)?;
            // History that must not be served again: refreshed (replaced)
            // and refused (not auto-firable) stale objects.
            let mut excluded: BTreeSet<ObjectId> = BTreeSet::new();
            let mut pending: BTreeSet<ObjectId> = outcome.stale.drain(..).collect();
            let mut refused = 0usize;
            // Each round moves `pending` into `excluded`, so the loop is
            // bounded by the number of stored stale objects; replacements
            // are current by construction (refresh re-fires stale inputs
            // recursively).
            while !pending.is_empty() {
                for oid in std::mem::take(&mut pending) {
                    match self.refresh_object(oid) {
                        Ok(run) => outcome.tasks.push(run.task),
                        Err(KernelError::NotAutoFirable { .. }) => refused += 1,
                        Err(other) => return Err(other),
                    }
                    excluded.insert(oid);
                }
                let (retrieved, plans) = self.retrieve(&class_names, q)?;
                outcome.plans = plans;
                let hits: Vec<DataObject> = retrieved
                    .into_iter()
                    .filter(|o| !excluded.contains(&o.id))
                    .collect();
                // Re-retrieval can surface further stale objects the
                // original answer did not include; refresh those too.
                pending = self.flag_stale(&hits).into_iter().collect();
                outcome.objects = hits;
            }
            if outcome.objects.is_empty() {
                return Err(KernelError::NoData(format!(
                    "FRESH refused {} stale hit(s){} and no current object satisfies \
                     the query; re-issue without FRESH to inspect the flagged history",
                    excluded.len(),
                    if refused > 0 {
                        format!(" ({refused} cannot be re-fired automatically)")
                    } else {
                        String::new()
                    }
                )));
            }
        }
        order_limit_project(&mut outcome, q);
        // Surface every in-flight background derivation of a target
        // class: the answer may be about to grow (or to replace a stale
        // hit), and the caller can await the listed jobs.
        outcome.pending = self.pending_jobs_for(&self.target_classes(q)?);
        Ok(outcome)
    }

    pub(crate) fn target_classes(&self, q: &Query) -> KernelResult<Vec<String>> {
        target_classes_in(&self.catalog, q)
    }

    fn retrieval_predicate(&self, class: &ClassDef, q: &Query) -> Predicate {
        retrieval_predicate_for(class, q)
    }

    /// Step-1 retrieval through the optimizer over the live store. See
    /// [`retrieve_in`].
    fn retrieve(
        &self,
        classes: &[String],
        q: &Query,
    ) -> KernelResult<(Vec<DataObject>, Vec<ScanPlan>)> {
        retrieve_in(&self.db, &self.catalog, classes, q)
    }

    /// `ORDER BY attr LIMIT n` over a single class whose order attribute
    /// carries an index walks [`gaea_store::OrderedIndex::sorted_oids`]
    /// in query order and stops as soon as `n` rows matched — plus every
    /// remaining tie of the boundary key, so the exact
    /// (value, id)-ordered top-N survives [`Gaea::finish_outcome`]'s
    /// final sort-and-truncate. `FRESH` queries skip the short-circuit:
    /// the refusal loop must see the full answer to classify it.
    /// Classify retrieved objects against the store's version counters;
    /// returns the stale subset. See [`flag_stale_in`].
    fn flag_stale(&self, hits: &[DataObject]) -> Vec<ObjectId> {
        flag_stale_in(&self.db, &self.catalog, hits)
    }

    /// Step 2: temporal interpolation. Applicable when the query pins an
    /// instant and a class stores bracketing image snapshots.
    fn try_interpolate(
        &mut self,
        classes: &[String],
        q: &Query,
    ) -> KernelResult<Option<QueryOutcome>> {
        let t = match q.time {
            Some(TimeSel::At(t)) => t,
            _ => return Ok(None),
        };
        for name in classes {
            let def = self.catalog.class_by_name(name)?.clone();
            if !def.has_temporal
                || def.attr("data").map(|a| a.tag) != Some(gaea_adt::TypeTag::Image)
            {
                continue;
            }
            // Spatially compatible snapshots with data + timestamps.
            let spatial_query = Query {
                time: None,
                ..q.clone()
            };
            let pred = self.retrieval_predicate(&def, &spatial_query);
            let mut snaps: Vec<DataObject> = Vec::new();
            let (snap_oids, _plan) = self.scan_class(&def, &pred)?;
            for oid in snap_oids {
                let obj = self.object(ObjectId(oid))?;
                if obj.timestamp().is_some() && obj.attr("data").is_some() {
                    snaps.push(obj);
                }
            }
            let earlier = snaps
                .iter()
                .filter(|o| o.timestamp().expect("filtered") < t)
                .max_by_key(|o| o.timestamp().expect("filtered"));
            let later = snaps
                .iter()
                .filter(|o| o.timestamp().expect("filtered") > t)
                .min_by_key(|o| o.timestamp().expect("filtered"));
            let (earlier, later) = match (earlier, later) {
                (Some(e), Some(l)) => (e.clone(), l.clone()),
                _ => continue,
            };
            let img = gaea_raster::interp::temporal_interp(
                earlier
                    .attr("data")
                    .expect("filtered")
                    .as_image()
                    .ok_or_else(|| {
                        KernelError::Template("interpolation: data attr is not an image".into())
                    })?,
                earlier.timestamp().expect("filtered"),
                later
                    .attr("data")
                    .expect("filtered")
                    .as_image()
                    .ok_or_else(|| {
                        KernelError::Template("interpolation: data attr is not an image".into())
                    })?,
                later.timestamp().expect("filtered"),
                t,
            )?;
            // New object: the earlier snapshot's attributes, re-timed.
            let mut attrs = earlier.attrs.clone();
            attrs.insert("data".into(), Value::image(img));
            attrs.insert(TEMPORAL_ATTR.into(), Value::AbsTime(t));
            // The inserted object and the lazily-registered interpolation
            // process ride in the task's commit delta below.
            let mark = self.wal_mark();
            let obj = executor::insert_object(&mut self.db, &mut self.catalog, &def, &attrs)?;
            let pid = self.interpolation_process(&def)?;
            let task_id = TaskId(self.db.allocate_oid());
            let seq = self.catalog.next_task_seq();
            let mut inputs = BTreeMap::new();
            inputs.insert("earlier".to_string(), vec![earlier.id]);
            inputs.insert("later".to_string(), vec![later.id]);
            let mut input_versions = BTreeMap::new();
            input_versions.insert(earlier.id, self.db.object_version(earlier.id.0));
            input_versions.insert(later.id, self.db.object_version(later.id.0));
            let mut params = BTreeMap::new();
            params.insert("at".to_string(), Value::AbsTime(t));
            self.catalog.add_task(Task {
                id: task_id,
                process: pid,
                process_name: format!("interpolate_{}", def.name),
                inputs,
                input_versions,
                outputs: vec![obj],
                params,
                seq,
                user: self.user.clone(),
                kind: TaskKind::Interpolation,
                children: vec![],
            });
            self.wal_commit_delta(mark)?;
            // The interpolation is fresh, but its bracketing snapshots may
            // themselves be stale derivations — classify like step 1 does,
            // so the same object answers consistently however it is served.
            let objects = vec![self.object(obj)?];
            let stale = self.flag_stale(&objects);
            return Ok(Some(QueryOutcome {
                objects,
                method: QueryMethod::Interpolated,
                tasks: vec![task_id],
                stale,
                pending: vec![],
                plans: vec![],
                profile: None,
            }));
        }
        Ok(None)
    }

    /// The generic interpolation process for a class, lazily registered
    /// ("it is a generic derivation process which is applicable to many
    /// data types", §2.1.5).
    fn interpolation_process(&mut self, class: &ClassDef) -> KernelResult<ProcessId> {
        let name = format!("interpolate_{}", class.name);
        if let Ok(p) = self.catalog.process_by_name(&name) {
            return Ok(p.id);
        }
        let id = ProcessId(self.db.allocate_oid());
        self.catalog.add_process(ProcessDef {
            id,
            name,
            output: class.id,
            args: vec![
                ProcessArg::one("earlier", class.id),
                ProcessArg::one("later", class.id),
            ],
            template: Template::default(),
            kind: ProcessKind::Primitive,
            interactions: vec![],
            cost: None,
            doc: "built-in linear temporal interpolation (kernel §2.1.5 step 2); \
                  the target instant is recorded as task parameter `at`"
                .into(),
        })?;
        Ok(id)
    }

    /// Step 3: derivation — plan over the Petri net, fire the plan,
    /// project the goal class back through retrieval. With `force_waves`
    /// (or a multi-worker scheduler) a plan of two or more firings
    /// executes through the dependency-wave fire stage.
    fn try_derive(
        &mut self,
        classes: &[String],
        q: &Query,
        force_waves: bool,
    ) -> KernelResult<Option<QueryOutcome>> {
        // Plan stage inputs: the net view and the stored-object marking.
        let (dnet, marking) = {
            let _plan = gaea_obs::span("plan");
            let dnet = self.plannable_net(q)?;
            let marking = self.planning_marking(&dnet, classes, q)?;
            (dnet, marking)
        };
        let mut all_tasks = Vec::new();
        for name in classes {
            let def = self.catalog.class_by_name(name)?.clone();
            let plan = {
                let _plan = gaea_obs::span("plan");
                match self.derivation_plan(&dnet, &marking, &def)? {
                    Some(p) => {
                        gaea_obs::note("firings", p.cost().to_string());
                        p
                    }
                    None if classes.len() == 1 => {
                        return Err(KernelError::DerivationImpossible(format!(
                            "class {name}: missing base data in {:?}",
                            self.missing_base_classes(&dnet, &marking, &def)
                        )))
                    }
                    // Try the next member class of the concept.
                    None => continue,
                }
            };
            all_tasks.extend({
                let _fire = gaea_obs::span("fire");
                self.fire_plan(&dnet, &plan, q, force_waves)?
            });
            // Project: step 1 again over the now-extended extension.
            if let Some(outcome) = {
                let _project = gaea_obs::span("project");
                self.project_outcome(name, q, &all_tasks)?
            } {
                return Ok(Some(outcome));
            }
            // The derivation ran but extent transfer did not match the
            // query exactly (e.g. requested instant between snapshots):
            // fall through so interpolation can take over.
        }
        Ok(None)
    }

    /// Plan stage, part 1: the derivation net restricted to processes the
    /// kernel can fire without a scientist — plain primitives and external
    /// processes whose site is currently reachable. A `DERIVE USING p`
    /// query additionally removes every *other* producer of `p`'s output
    /// class, so the plan can only reach the goal through the pinned
    /// process (intermediate derivations stay open).
    pub(crate) fn plannable_net(&self, q: &Query) -> KernelResult<DerivationNet> {
        let pinned: Option<(ClassId, ProcessId)> = match &q.using_process {
            Some(name) => {
                let def = self.catalog.process_by_name(name)?;
                Some((def.output, def.id))
            }
            None => None,
        };
        Ok(DerivationNet::build_filtered(&self.catalog, |def| {
            if let Some((goal, pid)) = pinned {
                if def.output == goal && def.id != pid {
                    return false;
                }
            }
            match &def.kind {
                ProcessKind::Primitive => !def.is_interactive(),
                ProcessKind::External { site } => self.externals.reachable_site(site).is_some(),
                ProcessKind::Compound(_) | ProcessKind::NonApplicative { .. } => false,
            }
        }))
    }

    /// Plan stage, part 2: the marking — spatially compatible stored
    /// objects per class. For the *target* classes the full query
    /// predicate applies (an object at the wrong instant does not satisfy
    /// the goal, so it must not make the planner believe the goal is
    /// already stored).
    pub(crate) fn planning_marking(
        &self,
        dnet: &DerivationNet,
        targets: &[String],
        q: &Query,
    ) -> KernelResult<gaea_petri::marking::Marking> {
        let mut counts: BTreeMap<ClassId, u64> = BTreeMap::new();
        for (cid, def) in &self.catalog.classes {
            let pred = if targets.contains(&def.name) {
                self.retrieval_predicate(def, q)
            } else {
                match q.spatial {
                    Some(bbox) if def.has_spatial => {
                        Predicate::BoxOverlaps(SPATIAL_ATTR.into(), bbox)
                    }
                    _ => Predicate::True,
                }
            };
            // Cardinality only: the planned access path counts OIDs
            // without materializing (or cloning) a single tuple.
            let n = self.count_class(def, &pred)?;
            counts.insert(*cid, n);
        }
        Ok(dnet.marking(&counts))
    }

    /// Plan stage, part 3: backward-chain from the goal class to a firing
    /// plan. `None` means the net cannot reach the goal from the marking.
    pub(crate) fn derivation_plan(
        &self,
        dnet: &DerivationNet,
        marking: &gaea_petri::marking::Marking,
        goal: &ClassDef,
    ) -> KernelResult<Option<gaea_petri::backward::DerivationPlan>> {
        let place = match dnet.place_of.get(&goal.id) {
            Some(p) => *p,
            None => return Ok(None),
        };
        Ok(plan_derivation(&dnet.net, marking, place, 1).ok())
    }

    /// Diagnosis for a failed plan: which base classes lack data.
    fn missing_base_classes(
        &self,
        dnet: &DerivationNet,
        marking: &gaea_petri::marking::Marking,
        goal: &ClassDef,
    ) -> Vec<String> {
        let Some(place) = dnet.place_of.get(&goal.id) else {
            return vec![goal.name.clone()];
        };
        match plan_derivation(&dnet.net, marking, *place, 1) {
            Ok(_) => vec![],
            Err(failure) => failure
                .missing_base
                .iter()
                .filter_map(|p| dnet.class_at(*p))
                .filter_map(|c| self.catalog.class(c).ok().map(|d| d.name.clone()))
                .collect(),
        }
    }

    /// Fire stage: realize every firing of the plan. Each repetition of a
    /// process must realize a *distinct* derivation (different inputs), so
    /// the bindings of firings already used by this plan are excluded from
    /// reuse.
    ///
    /// Routing: the serial loop is the default (and the only path a
    /// single-worker scheduler ever takes — existing behaviour,
    /// unchanged); plans with at least two firings go through the
    /// dependency-wave stage when the scheduler has workers to use or
    /// the caller ([`Gaea::derive_parallel`]) forces it.
    fn fire_plan(
        &mut self,
        dnet: &DerivationNet,
        plan: &gaea_petri::backward::DerivationPlan,
        q: &Query,
        force_waves: bool,
    ) -> KernelResult<Vec<TaskId>> {
        if (force_waves || self.scheduler.workers() >= 2) && plan.cost() >= 2 {
            self.fire_plan_waves(dnet, plan, q)
        } else {
            self.fire_plan_serial(dnet, plan, q)
        }
    }

    /// The classic one-at-a-time fire stage.
    fn fire_plan_serial(
        &mut self,
        dnet: &DerivationNet,
        plan: &gaea_petri::backward::DerivationPlan,
        q: &Query,
    ) -> KernelResult<Vec<TaskId>> {
        let mut fired_keys: BTreeSet<String> = BTreeSet::new();
        let mut tasks = Vec::new();
        for (tid, times) in &plan.firings {
            let pid = dnet
                .process_at(*tid)
                .expect("planner only uses catalog transitions");
            for _rep in 0..*times {
                let run = self.fire_with_chosen_bindings(pid, q, &fired_keys)?;
                fired_keys.insert(self.catalog.task(run.task)?.dedup_key());
                tasks.push(run.task);
            }
        }
        Ok(tasks)
    }

    /// The scheduled fire stage: the plan's firings become a dependency
    /// DAG (one node per firing instance; an edge wherever one firing's
    /// output class feeds another's inputs) executed wave by wave. Per
    /// wave, bindings are *chosen* serially — guards decide
    /// admissibility, and each choice excludes its dedup key so
    /// repetitions realize distinct derivations, exactly like the serial
    /// loop — then the expensive template evaluations prepare on the
    /// worker pool, and the results commit in node order. Reused current
    /// tasks short-circuit in the choose phase and never hit a worker.
    fn fire_plan_waves(
        &mut self,
        dnet: &DerivationNet,
        plan: &gaea_petri::backward::DerivationPlan,
        q: &Query,
    ) -> KernelResult<Vec<TaskId>> {
        let mut graph: DepGraph<ProcessId> = DepGraph::new();
        for (tid, times) in &plan.firings {
            let pid = dnet
                .process_at(*tid)
                .expect("planner only uses catalog transitions");
            for _rep in 0..*times {
                graph.add_node(pid);
            }
        }
        for i in 0..graph.len() {
            for j in 0..graph.len() {
                let (pi, pj) = (*graph.payload(NodeId(i)), *graph.payload(NodeId(j)));
                if i == j {
                    continue;
                }
                if pi == pj {
                    // Repetitions of the same process are independent —
                    // *unless* the process feeds itself (its output class
                    // is among its own input classes): then the serial
                    // semantics let firing k+1 bind firing k's output, so
                    // the repetitions must order by node id, not share a
                    // wave.
                    let def = self.catalog.process(pi)?;
                    if i < j && def.args.iter().any(|a| a.class == def.output) {
                        graph
                            .add_edge(NodeId(i), NodeId(j))
                            .expect("distinct nodes cannot self-loop");
                    }
                    continue;
                }
                let out_i = self.catalog.process(pi)?.output;
                if self
                    .catalog
                    .process(pj)?
                    .args
                    .iter()
                    .any(|a| a.class == out_i)
                {
                    graph
                        .add_edge(NodeId(i), NodeId(j))
                        .expect("distinct nodes cannot self-loop");
                }
            }
        }
        let waves = match graph.waves() {
            Ok(w) => w,
            // A cyclic class graph (A derives B derives A) admits no wave
            // order; the serial loop still can consume the plan's own
            // firing order.
            Err(_) => return self.fire_plan_serial(dnet, plan, q),
        };
        let mut fired_keys: BTreeSet<String> = BTreeSet::new();
        let mut tasks = Vec::new();
        for wave in &waves {
            gaea_obs::note("wave_width", wave.len().to_string());
            // Choose phase (serial): admissible bindings or reused tasks.
            let mut staged: Vec<(ProcessId, Option<executor::Bindings>)> =
                Vec::with_capacity(wave.len());
            for node in wave {
                let pid = *graph.payload(*node);
                match self.choose_or_fire(pid, q, &fired_keys, true)? {
                    ChosenFiring::Fired(run) => {
                        fired_keys.insert(self.catalog.task(run.task)?.dedup_key());
                        tasks.push(run.task);
                        staged.push((pid, None));
                    }
                    ChosenFiring::Bound(bindings) => {
                        fired_keys.insert(dedup_key_for(self.catalog.process(pid)?, &bindings));
                        staged.push((pid, Some(bindings)));
                    }
                    // A background job is already realizing this firing;
                    // the plan cannot complete synchronously without
                    // duplicating it.
                    ChosenFiring::Pending(job) => {
                        return Err(KernelError::DerivationPending {
                            process: self.catalog.process(pid)?.name.clone(),
                            job,
                        })
                    }
                }
            }
            // Prepare phase (parallel): template evaluation on workers.
            let to_prepare: Vec<(ProcessId, executor::Bindings)> = staged
                .iter()
                .filter_map(|(pid, b)| b.as_ref().map(|b| (*pid, b.clone())))
                .collect();
            let db = &self.db;
            let catalog = &self.catalog;
            let registry = &self.registry;
            let externals = &self.externals;
            let prepared: Vec<KernelResult<PreparedFiring>> =
                self.scheduler.map(to_prepare, |_, (pid, bindings)| {
                    executor::prepare_firing(db, catalog, registry, externals, pid, &bindings)
                });
            // Commit phase (serial, node order).
            let mut prepared = prepared.into_iter();
            for (_, bindings) in &staged {
                if bindings.is_some() {
                    let prep = prepared.next().expect("one prepare per bound node")?;
                    let run = self.commit_prepared(prep)?;
                    tasks.push(run.task);
                }
            }
        }
        Ok(tasks)
    }

    /// Force the derivation step of the query mechanism through the
    /// scheduled fire stage: plan over the Petri net, execute the plan's
    /// dependency waves on the worker pool (whatever
    /// [`Gaea::workers`] currently is — with one worker this is the
    /// deterministic in-order schedule), and project the goal class back
    /// through retrieval. Unlike [`Gaea::query`] it never serves stored
    /// answers first — it exists to *make* the derivation happen, with
    /// the plan's independent firings running side by side.
    pub fn derive_parallel(&mut self, q: &Query) -> KernelResult<QueryOutcome> {
        let tracer = gaea_obs::start_trace("derive_parallel", q.target.name());
        let mut result = (|| {
            let class_names = {
                let _plan = gaea_obs::span("plan");
                let class_names = self.target_classes(q)?;
                self.validate_query(&class_names, q)?;
                self.ensure_access_paths(&class_names, q)?;
                self.pump_jobs();
                class_names
            };
            let derived = {
                let _derive = gaea_obs::span("derive");
                self.try_derive(&class_names, q, true)?
            };
            match derived {
                Some(outcome) => self.finish_outcome(outcome, q),
                None => Err(KernelError::NoData(format!(
                    "classes {class_names:?}: the derivation plan fired but extent transfer \
                     did not match the query"
                ))),
            }
        })();
        if let Ok(outcome) = &mut result {
            if let Some(trace) = tracer.finish() {
                crate::query::apply_trace(outcome, &trace);
            }
        }
        result
    }

    /// Project stage: serve the derived answer through retrieval, exactly
    /// like step 1 would, so callers observe store-resident objects —
    /// including the staleness classification, since the projection can
    /// pick up previously stored (possibly stale) objects alongside the
    /// freshly derived ones.
    fn project_outcome(
        &self,
        class: &str,
        q: &Query,
        tasks: &[TaskId],
    ) -> KernelResult<Option<QueryOutcome>> {
        let (hits, plans) = self.retrieve(&[class.to_string()], q)?;
        if hits.is_empty() {
            return Ok(None);
        }
        let stale = self.flag_stale(&hits);
        Ok(Some(QueryOutcome {
            objects: hits,
            method: QueryMethod::Derived,
            tasks: tasks.to_vec(),
            stale,
            pending: vec![],
            plans,
            profile: None,
        }))
    }

    /// Choose input objects for one firing of `pid`.
    ///
    /// Bindings whose dedup key is in `exclude` are skipped outright (the
    /// current plan already consumed that derivation). A binding identical
    /// to a *prior* (pre-plan) task is reused without re-deriving when
    /// [`Gaea::reuse_tasks`] is on; otherwise it is skipped so the kernel
    /// never silently duplicates a derivation.
    /// Bind stage: enumerate candidate input selections per argument of
    /// `def`, spatially filtered by the query window and deterministically
    /// ordered — exact query-instant matches first, then by timestamp,
    /// then id. `SETOF` arguments get co-temporal groups first (they
    /// satisfy `common(timestamp)` guards), then a pool prefix.
    ///
    /// A declared cost hint replaces the heuristic's timestamp order: the
    /// query's `DERIVE COST …` wins over the fired process's own `COST`
    /// declaration, and with neither the heuristic stands (`COST oldest`
    /// pins the heuristic's order, `COST newest` reverses it).
    fn binding_candidates(
        &self,
        def: &ProcessDef,
        q: &Query,
    ) -> KernelResult<Vec<Vec<Vec<ObjectId>>>> {
        // The instant the query pins, if any: bindings matching it are
        // preferred so that invariantly transferred timestamps land on the
        // requested time.
        let target_time = match q.time {
            Some(TimeSel::At(t)) => Some(t),
            _ => None,
        };
        let hint = q.cost.or(self.catalog.cost_hint(def.id));
        let newest_first = hint == Some(crate::query::CostHint::Newest);
        // One shared ordering for pools and SETOF groups alike:
        // exact-instant mismatches last, then the (possibly reversed)
        // timestamp order — under `newest` the reversal also moves
        // timestamp-less objects to the back, exactly like the old
        // `cmp::Reverse` key did.
        let mismatch = |t: Option<AbsTime>| target_time.is_some() && t != target_time;
        let ts_order = |a: Option<AbsTime>, b: Option<AbsTime>| {
            let ord = mismatch(a).cmp(&mismatch(b));
            if newest_first {
                ord.then(b.cmp(&a))
            } else {
                ord.then(a.cmp(&b))
            }
        };
        // Candidate pools per argument.
        let mut pools: Vec<Vec<DataObject>> = Vec::with_capacity(def.args.len());
        for arg in &def.args {
            let class = self.catalog.class(arg.class)?.clone();
            let pred = match q.spatial {
                Some(bbox) if class.has_spatial => {
                    Predicate::BoxOverlaps(SPATIAL_ATTR.into(), bbox)
                }
                _ => Predicate::True,
            };
            let mut pool = Vec::new();
            let (pool_oids, _plan) = self.scan_class(&class, &pred)?;
            for oid in pool_oids {
                pool.push(self.object(ObjectId(oid))?);
            }
            pool.sort_by(|x, y| ts_order(x.timestamp(), y.timestamp()).then(x.id.cmp(&y.id)));
            pools.push(pool);
        }
        // Candidate selections per argument.
        let mut candidates: Vec<Vec<Vec<ObjectId>>> = Vec::with_capacity(def.args.len());
        for (arg, pool) in def.args.iter().zip(&pools) {
            let mut cands: Vec<Vec<ObjectId>> = Vec::new();
            if arg.setof {
                let mut groups: BTreeMap<Option<AbsTime>, Vec<ObjectId>> = BTreeMap::new();
                for o in pool {
                    groups.entry(o.timestamp()).or_default().push(o.id);
                }
                let mut grouped: Vec<(Option<AbsTime>, Vec<ObjectId>)> =
                    groups.into_iter().collect();
                // Exact-time groups lead; within the rest, the hinted (or
                // heuristic) timestamp order applies.
                grouped.sort_by(|(ta, _), (tb, _)| ts_order(*ta, *tb));
                for (_, group) in &grouped {
                    if group.len() as u64 >= arg.min_card {
                        cands.push(group[..arg.min_card as usize].to_vec());
                    }
                }
                if pool.len() as u64 >= arg.min_card {
                    let prefix: Vec<ObjectId> =
                        pool[..arg.min_card as usize].iter().map(|o| o.id).collect();
                    if !cands.contains(&prefix) {
                        cands.push(prefix);
                    }
                }
            } else {
                for o in pool {
                    cands.push(vec![o.id]);
                }
            }
            if cands.is_empty() {
                return Err(KernelError::DerivationImpossible(format!(
                    "process {}: no stored objects satisfy argument {:?} (need {} of class {})",
                    def.name,
                    arg.name,
                    arg.min_card,
                    self.catalog.class(arg.class)?.name
                )));
            }
            candidates.push(cands);
        }
        Ok(candidates)
    }

    /// Fire stage for a single process: walk the bounded candidate
    /// product, reusing identical prior tasks when [`Gaea::reuse_tasks`]
    /// allows, skipping derivations in `exclude` (already consumed by the
    /// current plan), and never silently duplicating a derivation.
    pub(crate) fn fire_with_chosen_bindings(
        &mut self,
        pid: ProcessId,
        q: &Query,
        exclude: &BTreeSet<String>,
    ) -> KernelResult<TaskRun> {
        match self.choose_or_fire(pid, q, exclude, false)? {
            ChosenFiring::Fired(run) => Ok(run),
            ChosenFiring::Bound(_) => unreachable!("fire mode never defers a binding"),
            ChosenFiring::Pending(job) => Err(KernelError::DerivationPending {
                process: self.catalog.process(pid)?.name.clone(),
                job,
            }),
        }
    }

    /// The bind/fire walker behind [`Gaea::fire_with_chosen_bindings`],
    /// the wave stage's choose phase and [`Gaea::submit_derivation`]'s
    /// binding step. All modes walk the same bounded candidate product
    /// with the same exclusion, degeneracy and prior-task classification
    /// rules; they differ only in what happens to an admissible fresh
    /// binding — fire mode executes it on the spot, bind-only mode
    /// checks the guards and hands the bindings back for a scheduled
    /// prepare/commit (or a background job).
    ///
    /// A binding identical to an *in-flight* background job is treated
    /// like an identical current prior task: with [`Gaea::reuse_tasks`]
    /// on it short-circuits to [`ChosenFiring::Pending`] (the caller
    /// attaches to — or refuses to duplicate — the job); with reuse off
    /// the binding is skipped and the walk continues.
    pub(crate) fn choose_or_fire(
        &mut self,
        pid: ProcessId,
        q: &Query,
        exclude: &BTreeSet<String>,
        bind_only: bool,
    ) -> KernelResult<ChosenFiring> {
        let def = self.catalog.process(pid)?.clone();
        // Derivations other sessions already launched: never double-fire.
        let in_flight = self.jobs_in_flight_keys();
        // Bind stage: admissible selections per argument.
        let candidates = {
            let _bind = gaea_obs::span("bind");
            self.binding_candidates(&def, q)?
        };
        // Keys of identical prior derivations (the per-process task
        // index iterates in task-id order, same as the old full scan).
        let used_keys: BTreeSet<String> = self
            .catalog
            .tasks_of_process(pid)
            .map(|t| t.dedup_key())
            .collect();
        // Walk the (bounded) cartesian product.
        let mut budget = self.binding_budget;
        let mut indices = vec![0usize; candidates.len()];
        let mut last_err: Option<KernelError> = None;
        'combos: loop {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let bindings: Vec<(String, Vec<ObjectId>)> = def
                .args
                .iter()
                .zip(&indices)
                .zip(&candidates)
                .map(|((arg, idx), cands)| (arg.name.clone(), cands[*idx].clone()))
                .collect();
            // Distinct scalar args of the same class should bind distinct
            // objects (earlier/later must differ).
            let mut scalar_seen: BTreeSet<ObjectId> = BTreeSet::new();
            let mut degenerate = false;
            for (arg, (_, objs)) in def.args.iter().zip(&bindings) {
                if !arg.setof && !scalar_seen.insert(objs[0]) {
                    degenerate = true;
                }
            }
            if !degenerate {
                let key = dedup_key_for(&def, &bindings);
                if exclude.contains(&key) {
                    // This derivation was already consumed by the current
                    // plan; a repetition must find different inputs.
                } else {
                    // Classify any identical prior task against the store's
                    // version counters: a *current* one can be reused (or at
                    // least must not be duplicated), a *stale* one is
                    // history only — re-firing it is not duplication, it is
                    // the refresh the mutated inputs call for.
                    let prior_current: Option<(TaskId, Vec<ObjectId>, bool)> = if used_keys
                        .contains(&key)
                    {
                        // Several records can share one key (a stale
                        // derivation and its re-fire bind identically
                        // when only input versions drifted): prefer a
                        // *current* match — reusable — over the first.
                        let mut memo = super::exec::StaleMemo::new();
                        let matches: Vec<&Task> = self
                            .catalog
                            .tasks_of_process(pid)
                            .filter(|t| t.dedup_key() == key)
                            .collect();
                        matches
                            .iter()
                            .find(|t| {
                                !super::exec::task_is_stale(&self.db, &self.catalog, t, &mut memo)
                            })
                            .map(|t| (t.id, t.outputs.clone(), true))
                            .or_else(|| matches.first().map(|t| (t.id, t.outputs.clone(), false)))
                    } else {
                        None
                    };
                    match prior_current {
                        Some((task, outputs, true)) => {
                            if self.reuse_tasks {
                                // Memoization: an identical current task
                                // exists; reuse it.
                                return Ok(ChosenFiring::Fired(TaskRun { task, outputs }));
                            }
                            // Reuse is off but the derivation exists and is
                            // current: avoid repeating it; next binding.
                        }
                        _ if in_flight.contains_key(&key) => {
                            if self.reuse_tasks {
                                // A background job is already deriving
                                // exactly this; attach instead of
                                // duplicating (the task record arrives
                                // when the job commits).
                                return Ok(ChosenFiring::Pending(in_flight[&key]));
                            }
                            // Reuse off: skip the in-flight derivation
                            // like a current prior; next binding.
                        }
                        _ if bind_only => {
                            // No prior task, or the prior is stale: the
                            // guards alone decide admissibility here; the
                            // mapping evaluation belongs to the workers.
                            match executor::check_guards(
                                &self.db,
                                &self.catalog,
                                &self.registry,
                                &def,
                                &bindings,
                            ) {
                                Ok(()) => return Ok(ChosenFiring::Bound(bindings)),
                                Err(e @ KernelError::AssertionFailed { .. }) => {
                                    last_err = Some(e); // guard rejected: next binding
                                }
                                Err(other) => return Err(other),
                            }
                        }
                        _ => {
                            // No prior task, or the prior is stale.
                            let owned: Vec<(String, Vec<ObjectId>)> = bindings;
                            let mark = self.wal_mark();
                            match executor::run_process(
                                &mut self.db,
                                &mut self.catalog,
                                &self.registry,
                                &self.externals,
                                pid,
                                &owned,
                                &self.user.clone(),
                            ) {
                                Ok(run) => {
                                    self.wal_commit_delta(mark)?;
                                    return Ok(ChosenFiring::Fired(run));
                                }
                                Err(e @ KernelError::AssertionFailed { .. }) => {
                                    last_err = Some(e); // guard rejected: next binding
                                }
                                Err(other) => return Err(other),
                            }
                        }
                    }
                }
            }
            // Advance the product.
            for i in (0..indices.len()).rev() {
                indices[i] += 1;
                if indices[i] < candidates[i].len() {
                    continue 'combos;
                }
                indices[i] = 0;
                if i == 0 {
                    break 'combos;
                }
            }
            if indices.iter().all(|i| *i == 0) {
                break;
            }
        }
        Err(last_err.unwrap_or_else(|| {
            KernelError::DerivationImpossible(format!(
                "process {}: no admissible input binding found",
                def.name
            ))
        }))
    }
}

/// The dedup key a fresh firing of `def` on `bindings` *would* record —
/// byte-compatible with `Task::dedup_key` (both delegate to
/// `task::dedup_key_parts`), including the parameters the executor
/// stamps on the task: an external firing records its `site`, so the
/// prospective key carries it too. Without that agreement, recorded
/// external derivations would never match the walker's keys and every
/// reuse/dedup layer (prior-task reuse, in-flight job dedup, refresh
/// duplicate guards) would silently re-fire them.
pub(crate) fn dedup_key_for(def: &ProcessDef, bindings: &[(String, Vec<ObjectId>)]) -> String {
    let inputs: BTreeMap<String, Vec<ObjectId>> = bindings.iter().cloned().collect();
    let mut params: BTreeMap<String, Value> = BTreeMap::new();
    if let ProcessKind::External { site } = &def.kind {
        params.insert("site".to_string(), Value::Text(site.clone()));
    }
    crate::task::dedup_key_parts(def.id, &inputs, &params)
}

// ----------------------------------------------------------------------
// Catalog/store-parameterized query primitives.
//
// Everything below is the read-only half of the query mechanism, factored
// free of `&Gaea` so it runs identically against the live store and
// against a pinned [`gaea_store::PinnedStore`] view
// ([`super::readonly::ReadView`]). The `Gaea` methods above delegate here.
// ----------------------------------------------------------------------

/// Resolve a query's target (class or concept) to concrete class names.
pub(crate) fn target_classes_in(
    catalog: &crate::catalog::Catalog,
    q: &Query,
) -> KernelResult<Vec<String>> {
    Ok(match &q.target {
        QueryTarget::Class(name) => {
            vec![catalog.class_by_name(name)?.name.clone()]
        }
        QueryTarget::Concept(name) => catalog
            .concept_member_classes(name)?
            .iter()
            .map(|c| c.name.clone())
            .collect(),
    })
}

/// Validate the declarative parts of a query against a catalog. See
/// [`Gaea::validate_query`] for the contract.
pub(crate) fn validate_query_in(
    catalog: &crate::catalog::Catalog,
    classes: &[String],
    q: &Query,
) -> KernelResult<()> {
    for name in classes {
        let def = catalog.class_by_name(name)?;
        for pred in &q.attr_preds {
            let Some(attr) = def.attr(&pred.attr) else {
                return Err(KernelError::Schema(format!(
                    "query predicate on unknown attribute {:?} of class {}",
                    pred.attr, def.name
                )));
            };
            if attr.tag != pred.value.type_tag() {
                return Err(KernelError::Schema(format!(
                    "query predicate compares attribute {:?} of class {} ({}) \
                     against a {} constant",
                    pred.attr,
                    def.name,
                    attr.tag,
                    pred.value.type_tag()
                )));
            }
        }
        for attr in &q.projection {
            if def.attr(attr).is_none() {
                return Err(KernelError::Schema(format!(
                    "query projects unknown attribute {attr:?} of class {}",
                    def.name
                )));
            }
        }
        if let Some(ob) = &q.order_by {
            if def.attr(&ob.attr).is_none() {
                return Err(KernelError::Schema(format!(
                    "query orders by unknown attribute {:?} of class {}",
                    ob.attr, def.name
                )));
            }
        }
    }
    if let Some(pname) = &q.using_process {
        let pdef = catalog.process_by_name(pname)?;
        let out = catalog.class(pdef.output)?;
        if !classes.contains(&out.name) {
            return Err(KernelError::Schema(format!(
                "USING process {pname} derives class {}, not the query target {classes:?}",
                out.name
            )));
        }
    }
    Ok(())
}

/// The step-1 retrieval predicate a query induces on one target class:
/// spatial overlap and temporal selection (when the class carries the
/// extents) joined with the declarative WHERE conjuncts.
pub(crate) fn retrieval_predicate_for(class: &ClassDef, q: &Query) -> Predicate {
    let mut pred = Predicate::True;
    if let (Some(bbox), true) = (q.spatial, class.has_spatial) {
        pred = pred.and(Predicate::BoxOverlaps(SPATIAL_ATTR.into(), bbox));
    }
    if class.has_temporal {
        match q.time {
            Some(TimeSel::At(t)) => {
                pred = pred.and(Predicate::Eq(TEMPORAL_ATTR.into(), Value::AbsTime(t)));
            }
            Some(TimeSel::In(r)) => {
                pred = pred.and(Predicate::TimeIn(TEMPORAL_ATTR.into(), r));
            }
            None => {}
        }
    }
    // Declarative WHERE predicates (validated against the class by
    // `validate_query_in`) filter step-1 retrieval and, through
    // `planning_marking`, keep the planner from counting goal objects
    // that cannot satisfy the query.
    for ap in &q.attr_preds {
        pred = pred.and(match ap.cmp {
            AttrCmp::Eq => Predicate::Eq(ap.attr.clone(), ap.value.clone()),
            AttrCmp::Lt => Predicate::Lt(ap.attr.clone(), ap.value.clone()),
            AttrCmp::Gt => Predicate::Gt(ap.attr.clone(), ap.value.clone()),
        });
    }
    pred
}

/// Step-1 retrieval through the optimizer: each class extent scans via
/// [`super::access::scan_class_in`] (cheapest index/grid path,
/// full-predicate residual re-check), returning the hits plus one
/// EXPLAIN record per scanned extent.
pub(crate) fn retrieve_in(
    db: &gaea_store::Database,
    catalog: &crate::catalog::Catalog,
    classes: &[String],
    q: &Query,
) -> KernelResult<(Vec<DataObject>, Vec<ScanPlan>)> {
    if let Some(short) = retrieve_ordered_limit_in(db, catalog, classes, q)? {
        return Ok(short);
    }
    let mut out = Vec::new();
    let mut plans = Vec::new();
    for name in classes {
        let def = catalog.class_by_name(name)?;
        let pred = retrieval_predicate_for(def, q);
        let (oids, plan) = super::access::scan_class_in(db, def, &pred)?;
        plans.push(plan);
        for oid in oids {
            out.push(executor::load_object(db, catalog, ObjectId(oid))?);
        }
    }
    Ok((out, plans))
}

/// `ORDER BY attr LIMIT n` over a single class whose order attribute
/// carries an index walks [`gaea_store::index::OrderedIndex::sorted_oids`]
/// in query order and stops as soon as `n` rows matched — plus every
/// remaining tie of the boundary key, so the exact (value, id)-ordered
/// top-N survives the final sort-and-truncate in [`order_limit_project`].
/// `FRESH` queries skip the short-circuit: the refusal loop must see the
/// full answer to classify it.
fn retrieve_ordered_limit_in(
    db: &gaea_store::Database,
    catalog: &crate::catalog::Catalog,
    classes: &[String],
    q: &Query,
) -> KernelResult<Option<(Vec<DataObject>, Vec<ScanPlan>)>> {
    let (Some(ob), Some(limit)) = (&q.order_by, q.limit) else {
        return Ok(None);
    };
    if classes.len() != 1 || q.fresh || limit == 0 {
        return Ok(None);
    }
    let def = catalog.class_by_name(&classes[0])?;
    let rel = db.relation(&def.relation_name())?;
    let Ok(pos) = rel.schema().position(&ob.attr) else {
        return Ok(None);
    };
    let Some(idx) = rel.index_for(pos) else {
        return Ok(None);
    };
    let pred = retrieval_predicate_for(def, q);
    let compiled = pred.compile(rel.schema())?;
    let mut oids: Vec<Oid> = Vec::new();
    // Key of the limit-th matched row: the walk continues through
    // its ties and stops at the first different key.
    let mut boundary: Option<Value> = None;
    for oid in idx.sorted_oids(ob.desc) {
        let Ok(tuple) = rel.get(oid) else { continue };
        if !compiled.matches(tuple) {
            continue;
        }
        if let Some(b) = &boundary {
            if tuple.get(pos) != b {
                break;
            }
            oids.push(oid);
        } else {
            oids.push(oid);
            if oids.len() as u64 >= limit {
                boundary = Some(tuple.get(pos).clone());
            }
        }
    }
    let objects = oids
        .into_iter()
        .map(|oid| executor::load_object(db, catalog, ObjectId(oid)))
        .collect::<KernelResult<Vec<_>>>()?;
    let plan = ScanPlan {
        class: def.name.clone(),
        path: AccessPath::IndexOrdered {
            attr: ob.attr.clone(),
        },
        estimated_rows: limit,
    };
    Ok(Some((objects, vec![plan])))
}

/// Classify retrieved objects against a store's version counters;
/// returns the stale subset. One staleness memo is shared across all
/// hits (their derivations typically share ancestors).
pub(crate) fn flag_stale_in(
    db: &gaea_store::Database,
    catalog: &crate::catalog::Catalog,
    hits: &[DataObject],
) -> Vec<ObjectId> {
    let mut memo = super::exec::StaleMemo::new();
    hits.iter()
        .filter(|o| super::exec::object_is_stale(db, catalog, o.id, &mut memo))
        .map(|o| o.id)
        .collect()
}

/// The answer-shaping tail every outcome passes through: ORDER BY in
/// canonical (value, id) order — `None` attributes sort first,
/// descending reverses the value order but ids still break ties
/// ascending — then the LIMIT cutoff (which prunes the staleness flags
/// to the surviving objects), then the projection.
pub(crate) fn order_limit_project(outcome: &mut QueryOutcome, q: &Query) {
    if let Some(ob) = &q.order_by {
        outcome.objects.sort_by(|a, b| {
            let ord = a.attr(&ob.attr).cmp(&b.attr(&ob.attr));
            let ord = if ob.desc { ord.reverse() } else { ord };
            ord.then(a.id.cmp(&b.id))
        });
    }
    if let Some(limit) = q.limit {
        outcome
            .objects
            .truncate(usize::try_from(limit).unwrap_or(usize::MAX));
        let kept: BTreeSet<ObjectId> = outcome.objects.iter().map(|o| o.id).collect();
        outcome.stale.retain(|id| kept.contains(id));
    }
    if !q.projection.is_empty() {
        for obj in &mut outcome.objects {
            obj.attrs.retain(|name, _| q.projection.contains(name));
        }
    }
}
