//! Lineage: browsing, comparing and deduplicating derivations (§4.2).
//!
//! "Derivation diagrams can be used to 1) browse data following their
//! derivation relationships, 2) compare derivation procedures and their
//! resulting data classes, and 3) derive data not stored in the database."
//!
//! This module covers (1) and (2) at the *object* level: each stored object
//! roots a derivation tree built from task records; trees canonicalize to
//! signatures that compare derivations structurally — the paper's §1
//! scenario (NDVI subtraction vs division) reduces to a signature
//! inequality.

use crate::catalog::Catalog;
use crate::error::KernelResult;
use crate::ids::{ObjectId, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One node of an object's derivation tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DerivationNode {
    /// The object at this node.
    pub object: ObjectId,
    /// Its class name.
    pub class_name: String,
    /// The producing task and process name; `None` for base data.
    pub via: Option<(TaskId, String)>,
    /// Derivation parameters recorded on the task.
    pub params: Vec<(String, String)>,
    /// Input subtrees, in argument order.
    pub inputs: Vec<DerivationNode>,
}

impl DerivationNode {
    /// Canonical signature: process names + class names, with object
    /// identities erased. Two objects with equal signatures were derived
    /// the same way from the same kinds of data.
    pub fn signature(&self) -> String {
        let mut s = String::new();
        self.write_signature(&mut s);
        s
    }

    fn write_signature(&self, s: &mut String) {
        match &self.via {
            None => {
                s.push_str("base:");
                s.push_str(&self.class_name);
            }
            Some((_, process)) => {
                s.push_str(process);
                if !self.params.is_empty() {
                    s.push('[');
                    for (i, (k, v)) in self.params.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(k);
                        s.push('=');
                        s.push_str(v);
                    }
                    s.push(']');
                }
                s.push('(');
                for (i, input) in self.inputs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    input.write_signature(s);
                }
                s.push(')');
            }
        }
    }

    /// Indented rendering for task logs and examples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{} : {}", self.object, self.class_name));
        match &self.via {
            None => out.push_str("  [base data]\n"),
            Some((task, process)) => {
                out.push_str(&format!("  <- {process} ({task})\n"));
                for input in &self.inputs {
                    input.render_into(out, depth + 1);
                }
            }
        }
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        1 + self.inputs.iter().map(DerivationNode::size).sum::<usize>()
    }

    /// Depth of the tree (a base object has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .inputs
            .iter()
            .map(DerivationNode::depth)
            .max()
            .unwrap_or(0)
    }
}

/// Build the derivation tree of an object by walking task records backward.
/// `max_depth` guards against pathological task graphs.
pub fn derivation_tree(
    catalog: &Catalog,
    obj: ObjectId,
    max_depth: usize,
) -> KernelResult<DerivationNode> {
    let class_id = catalog.class_of_object(obj)?;
    let class_name = catalog.class(class_id)?.name.clone();
    if max_depth == 0 {
        return Ok(DerivationNode {
            object: obj,
            class_name,
            via: None,
            params: vec![],
            inputs: vec![],
        });
    }
    match catalog.producing_task(obj) {
        None => Ok(DerivationNode {
            object: obj,
            class_name,
            via: None,
            params: vec![],
            inputs: vec![],
        }),
        Some(task) => {
            let mut inputs = Vec::new();
            for objs in task.inputs.values() {
                for o in objs {
                    inputs.push(derivation_tree(catalog, *o, max_depth - 1)?);
                }
            }
            Ok(DerivationNode {
                object: obj,
                class_name,
                via: Some((task.id, task.process_name.clone())),
                params: task
                    .params
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_string()))
                    .collect(),
                inputs,
            })
        }
    }
}

/// True if two objects share the same derivation *procedure* (signatures
/// equal). The §1 scenario: diff-derived and ratio-derived vegetation
/// change maps compare unequal even when built from identical inputs.
pub fn same_derivation(catalog: &Catalog, a: ObjectId, b: ObjectId) -> KernelResult<bool> {
    let ta = derivation_tree(catalog, a, 64)?;
    let tb = derivation_tree(catalog, b, 64)?;
    Ok(ta.signature() == tb.signature())
}

/// All transitive input objects (derivation ancestors).
pub fn ancestors(catalog: &Catalog, obj: ObjectId) -> KernelResult<Vec<ObjectId>> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut stack = vec![obj];
    while let Some(o) = stack.pop() {
        if let Some(task) = catalog.producing_task(o) {
            for input in task.all_inputs() {
                if seen.insert(input) {
                    out.push(input);
                    stack.push(input);
                }
            }
        }
    }
    Ok(out)
}

/// All objects transitively derived *from* `obj` (descendants) — the
/// impact set when a base object is corrected.
pub fn descendants(catalog: &Catalog, obj: ObjectId) -> Vec<ObjectId> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut stack = vec![obj];
    while let Some(o) = stack.pop() {
        for task in catalog.tasks.values() {
            if task.all_inputs().contains(&o) {
                for produced in &task.outputs {
                    if seen.insert(*produced) {
                        out.push(*produced);
                        stack.push(*produced);
                    }
                }
            }
        }
    }
    out
}

/// Groups of tasks that performed the identical derivation (same process,
/// inputs, parameters) — the duplicated work that experiment management is
/// meant to avoid. Only groups of ≥ 2 are returned.
pub fn duplicate_tasks(catalog: &Catalog) -> Vec<Vec<TaskId>> {
    let mut groups: BTreeMap<String, Vec<TaskId>> = BTreeMap::new();
    for task in catalog.tasks.values() {
        groups.entry(task.dedup_key()).or_default().push(task.id);
    }
    groups.into_values().filter(|g| g.len() >= 2).collect()
}

// Tests live in the kernel integration tests (tests require a full kernel
// to create objects and tasks); `kernel.rs` exercises every function here.
