//! Catalog browsing and reporting (§4.2: users can browse the hierarchy;
//! §2.1.5: users "select and query reproducible or precomputed instances
//! of experiments").
//!
//! * [`schema_ddl`] — the whole catalog rendered back as Gaea DDL (the
//!   shareable schema description).
//! * [`lineage_dot`] — an object's derivation tree as Graphviz.
//! * [`compare_experiments`] — structural diff of two experiments' task
//!   signatures (which derivations they share, where they diverge).
//! * [`experiments_using_process`] — find prior experiments that applied a
//!   process, the reuse query experiment management exists for.

use crate::catalog::Catalog;
use crate::error::KernelResult;
use crate::ids::{ExperimentId, ObjectId, ProcessId};
use crate::lineage::{derivation_tree, DerivationNode};
use std::fmt::Write as _;

/// Render every class, process and concept as DDL-style text, in catalog
/// order. Processes and classes use their faithful `Display` forms.
pub fn schema_ddl(catalog: &Catalog) -> String {
    let mut out = String::new();
    for class in catalog.classes.values() {
        writeln!(out, "{class}\n").expect("write to string");
    }
    for process in catalog.processes.values() {
        writeln!(out, "{process}\n").expect("write to string");
    }
    for concept in catalog.concepts.values() {
        writeln!(out, "{concept}\n").expect("write to string");
    }
    out
}

/// An object's derivation tree as a DOT digraph (objects as ellipses,
/// tasks as boxes). Objects in `stale` — derived objects whose recorded
/// inputs drifted since derivation — render filled khaki with a `(stale)`
/// label suffix, so version drift is visible right in the lineage
/// diagram. Pass an empty set for a plain structural rendering.
pub fn lineage_dot(
    catalog: &Catalog,
    obj: ObjectId,
    stale: &std::collections::BTreeSet<ObjectId>,
) -> KernelResult<String> {
    let tree = derivation_tree(catalog, obj, 64)?;
    let mut out = String::from("digraph lineage {\n  rankdir=BT;\n");
    fn walk(node: &DerivationNode, stale: &std::collections::BTreeSet<ObjectId>, out: &mut String) {
        let obj_id = node.object.raw();
        let fill = if stale.contains(&node.object) {
            ", style=filled, fillcolor=khaki"
        } else if node.via.is_none() {
            ", style=filled, fillcolor=lightgray"
        } else {
            ""
        };
        let suffix = if stale.contains(&node.object) {
            " (stale)"
        } else {
            ""
        };
        writeln!(
            out,
            "  o{obj_id} [label=\"{} : {}{suffix}\", shape=ellipse{fill}];",
            node.object, node.class_name
        )
        .expect("write to string");
        if let Some((task, process)) = &node.via {
            let task_id = task.raw();
            writeln!(out, "  k{task_id} [label=\"{process}\", shape=box];")
                .expect("write to string");
            writeln!(out, "  k{task_id} -> o{obj_id};").expect("write to string");
            for input in &node.inputs {
                writeln!(out, "  o{} -> k{task_id};", input.object.raw()).expect("write to string");
                walk(input, stale, out);
            }
        }
    }
    walk(&tree, stale, &mut out);
    out.push_str("}\n");
    Ok(out)
}

/// Result of comparing two experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentDiff {
    /// Task signatures present in both.
    pub shared: Vec<String>,
    /// Signatures only in the first.
    pub only_first: Vec<String>,
    /// Signatures only in the second.
    pub only_second: Vec<String>,
}

impl ExperimentDiff {
    /// True if the experiments performed exactly the same derivations.
    pub fn equivalent(&self) -> bool {
        self.only_first.is_empty() && self.only_second.is_empty()
    }
}

/// Compare two experiments by the derivation signatures of their tasks'
/// outputs — the §3.3 ambition ("compare derivation procedures and their
/// resulting data classes") lifted to whole experiments.
pub fn compare_experiments(
    catalog: &Catalog,
    a: ExperimentId,
    b: ExperimentId,
) -> KernelResult<ExperimentDiff> {
    let sigs = |id: ExperimentId| -> KernelResult<Vec<String>> {
        let exp = catalog
            .experiments
            .get(&id)
            .ok_or(crate::error::KernelError::NoSuchId {
                kind: "experiment",
                id: id.raw(),
            })?;
        let mut out = Vec::new();
        for task_id in &exp.tasks {
            let task = catalog.task(*task_id)?;
            for obj in &task.outputs {
                out.push(derivation_tree(catalog, *obj, 64)?.signature());
            }
        }
        out.sort();
        Ok(out)
    };
    let sa = sigs(a)?;
    let sb = sigs(b)?;
    let mut shared = Vec::new();
    let mut only_first = Vec::new();
    let mut only_second: Vec<String> = sb.clone();
    for s in sa {
        if let Some(pos) = only_second.iter().position(|t| *t == s) {
            only_second.remove(pos);
            shared.push(s);
        } else {
            only_first.push(s);
        }
    }
    Ok(ExperimentDiff {
        shared,
        only_first,
        only_second,
    })
}

/// Experiments containing at least one task of the given process — the
/// reuse lookup ("has anyone already classified this?").
pub fn experiments_using_process(catalog: &Catalog, process: ProcessId) -> Vec<ExperimentId> {
    catalog
        .experiments
        .values()
        .filter(|exp| {
            exp.tasks.iter().any(|t| {
                catalog
                    .task(*t)
                    .map(|task| task.process == process)
                    .unwrap_or(false)
            })
        })
        .map(|exp| exp.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ClassSpec, Gaea, ProcessSpec};
    use crate::template::{Expr, Mapping, Template};
    use gaea_adt::{Image, TypeTag, Value};

    fn kernel_with_history() -> (Gaea, ObjectId, ObjectId) {
        let mut g = Gaea::in_memory().with_user("report");
        g.define_class(
            ClassSpec::base("src")
                .attr("data", TypeTag::Image)
                .no_extents(),
        )
        .unwrap();
        g.define_class(
            ClassSpec::derived("dst")
                .attr("data", TypeTag::Image)
                .no_extents(),
        )
        .unwrap();
        for (name, op) in [("by_diff", "img_diff"), ("by_ratio", "img_ratio")] {
            g.define_process(
                ProcessSpec::new(name, "dst")
                    .arg("a", "src")
                    .arg("b", "src")
                    .template(Template {
                        assertions: vec![],
                        mappings: vec![Mapping {
                            attr: "data".into(),
                            expr: Expr::apply(
                                op,
                                vec![Expr::proj("a", "data"), Expr::proj("b", "data")],
                            ),
                        }],
                    }),
            )
            .unwrap();
        }
        let a = g
            .insert_object(
                "src",
                vec![(
                    "data",
                    Value::image(Image::from_f64(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap()),
                )],
            )
            .unwrap();
        let b = g
            .insert_object(
                "src",
                vec![(
                    "data",
                    Value::image(Image::from_f64(2, 2, vec![4.0, 3.0, 2.0, 1.0]).unwrap()),
                )],
            )
            .unwrap();
        (g, a, b)
    }

    #[test]
    fn schema_ddl_renders_everything() {
        let (g, ..) = kernel_with_history();
        let ddl = schema_ddl(g.catalog());
        assert!(ddl.contains("CLASS src"));
        assert!(ddl.contains("CLASS dst"));
        assert!(ddl.contains("DEFINE PROCESS by_diff"));
        assert!(ddl.contains("img_ratio(a.data, b.data)"));
    }

    #[test]
    fn lineage_dot_draws_tasks_and_objects() {
        let (mut g, a, b) = kernel_with_history();
        let run = g
            .run_process("by_diff", &[("a", vec![a]), ("b", vec![b])])
            .unwrap();
        let dot = lineage_dot(g.catalog(), run.outputs[0], &Default::default()).unwrap();
        assert!(dot.contains("digraph lineage"));
        assert!(dot.contains("by_diff"));
        assert!(dot.contains("lightgray"), "base objects shaded");
        assert!(!dot.contains("stale"), "nothing flagged without drift");
        // Two base objects feed the task node.
        assert_eq!(dot.matches("-> k").count(), 2);
    }

    #[test]
    fn lineage_dot_highlights_stale_objects() {
        let (mut g, a, b) = kernel_with_history();
        let run = g
            .run_process("by_diff", &[("a", vec![a]), ("b", vec![b])])
            .unwrap();
        let stale = [run.outputs[0]].into_iter().collect();
        let dot = lineage_dot(g.catalog(), run.outputs[0], &stale).unwrap();
        assert!(dot.contains("khaki"), "stale objects shaded khaki");
        assert!(dot.contains("(stale)"), "stale objects labelled");
    }

    #[test]
    fn experiment_comparison() {
        let (mut g, a, b) = kernel_with_history();
        let r1 = g
            .run_process("by_diff", &[("a", vec![a]), ("b", vec![b])])
            .unwrap();
        let r2 = g
            .run_process("by_ratio", &[("a", vec![a]), ("b", vec![b])])
            .unwrap();
        let e1 = g.record_experiment("e1", "diff", vec![r1.task]).unwrap();
        let e2 = g.record_experiment("e2", "ratio", vec![r2.task]).unwrap();
        let diff = compare_experiments(g.catalog(), e1, e2).unwrap();
        assert!(!diff.equivalent());
        assert_eq!(diff.shared.len(), 0);
        assert_eq!(diff.only_first.len(), 1);
        assert!(diff.only_first[0].contains("by_diff"));
        assert!(diff.only_second[0].contains("by_ratio"));
        // Self-comparison is equivalent.
        let self_diff = compare_experiments(g.catalog(), e1, e1).unwrap();
        assert!(self_diff.equivalent());
        assert_eq!(self_diff.shared.len(), 1);
    }

    #[test]
    fn process_reuse_lookup() {
        let (mut g, a, b) = kernel_with_history();
        let r1 = g
            .run_process("by_diff", &[("a", vec![a]), ("b", vec![b])])
            .unwrap();
        let e1 = g.record_experiment("e1", "diff", vec![r1.task]).unwrap();
        let diff_pid = g.catalog().process_by_name("by_diff").unwrap().id;
        let ratio_pid = g.catalog().process_by_name("by_ratio").unwrap().id;
        assert_eq!(experiments_using_process(g.catalog(), diff_pid), vec![e1]);
        assert!(experiments_using_process(g.catalog(), ratio_pid).is_empty());
    }
}
