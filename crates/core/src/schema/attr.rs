//! Attribute definitions for non-primitive classes.

use crate::ids::ClassId;
use gaea_adt::TypeTag;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One attribute of a non-primitive class (paper §2.1.2 `landcover`
/// listing: `area = char16; ref_system = char16; ... data = image`).
///
/// The paper's prototype only allowed primitive-class attributes
/// (§4.3 limitation 1); this implementation lifts that limitation with
/// *reference attributes*: an attribute whose type is [`TypeTag::ObjRef`]
/// and whose [`AttrDef::ref_class`] names the non-primitive class the
/// reference must point into. The kernel validates the target's class at
/// insert time and auto-defines the dereferencing retrieval function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Primitive class of the attribute, or [`TypeTag::ObjRef`] for a
    /// reference to another non-primitive class.
    pub tag: TypeTag,
    /// For `ObjRef` attributes: the class referenced objects must belong
    /// to. `None` for primitive attributes.
    #[serde(default)]
    pub ref_class: Option<ClassId>,
    /// Comment from the class definition.
    pub doc: String,
}

impl AttrDef {
    /// Shorthand constructor for a primitive attribute.
    pub fn new(name: &str, tag: TypeTag) -> AttrDef {
        AttrDef {
            name: name.into(),
            tag,
            ref_class: None,
            doc: String::new(),
        }
    }

    /// Constructor with a doc comment.
    pub fn with_doc(name: &str, tag: TypeTag, doc: &str) -> AttrDef {
        AttrDef {
            name: name.into(),
            tag,
            ref_class: None,
            doc: doc.into(),
        }
    }

    /// A reference attribute pointing into `class` (§4.3 extension).
    pub fn reference(name: &str, class: ClassId) -> AttrDef {
        AttrDef {
            name: name.into(),
            tag: TypeTag::ObjRef,
            ref_class: Some(class),
            doc: String::new(),
        }
    }

    /// True for reference attributes.
    pub fn is_reference(&self) -> bool {
        self.ref_class.is_some()
    }
}

impl fmt::Display for AttrDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ref_class {
            Some(c) => write!(f, "{} = ref {c}", self.name)?,
            None => write!(f, "{} = {}", self.name, self.tag)?,
        }
        if !self.doc.is_empty() {
            write!(f, "; // {}", self.doc)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_store::Oid;

    #[test]
    fn display_matches_paper_style() {
        let a = AttrDef::with_doc("area", TypeTag::Char16, "area name");
        assert_eq!(a.to_string(), "area = char16; // area name");
        assert_eq!(
            AttrDef::new("data", TypeTag::Image).to_string(),
            "data = image"
        );
    }

    #[test]
    fn reference_attrs() {
        let a = AttrDef::reference("source_scene", ClassId(Oid(7)));
        assert!(a.is_reference());
        assert_eq!(a.tag, TypeTag::ObjRef);
        assert_eq!(a.ref_class, Some(ClassId(Oid(7))));
        assert_eq!(a.to_string(), "source_scene = ref class:7");
        assert!(!AttrDef::new("x", TypeTag::Int4).is_reference());
    }

    #[test]
    fn serde_default_keeps_old_catalogs_loadable() {
        // A catalog serialized before the ref_class field existed must
        // still deserialize (ref_class defaults to None).
        let json = r#"{"name":"area","tag":"Char16","doc":""}"#;
        let a: AttrDef = serde_json::from_str(json).unwrap();
        assert_eq!(a.ref_class, None);
    }
}
