//! Schema constructs of the derivation and experiment layers.

pub mod attr;
pub mod class;
pub mod concept;
pub mod process;

pub use attr::AttrDef;
pub use class::{ClassDef, ClassKind};
pub use concept::Concept;
pub use process::{
    CompoundStep, InteractionPoint, ProcessArg, ProcessDef, ProcessKind, StepSource,
};
