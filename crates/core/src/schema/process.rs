//! Process definitions (paper §2.1.2, Figures 3 & 5).
//!
//! "A process defines a mapping between a set of input object classes and
//! an output object class. [...] One can specify a process to be primitive
//! or compound. A compound process is a network of intercommunicating
//! processes. A primitive process [...] is composed of a network of basic
//! operators."
//!
//! Two rules from the paper are enforced at the catalog level:
//!
//! * "A new process may be defined by editing an old process [...] In no
//!   case is the old process overwritten" — processes are immutable;
//!   re-definition under a new name/OID only.
//! * "The same derivation method with different parameters represents
//!   different processes" — parameters are part of the template, so
//!   templates differing only in a constant are different processes.
//!
//! Beyond the paper's primitive/compound split, this module implements the
//! extensions the paper explicitly defers:
//!
//! * **Interactive processes** (§4.3 limitation 2) — a primitive process
//!   may declare [`InteractionPoint`]s at which a task suspends and asks
//!   the scientist for a parameter (supervised classification's training
//!   signatures being the paper's example).
//! * **Non-local processes** (§5) — [`ProcessKind::External`]: the mapping
//!   runs at a named remote site; only the guard assertions are evaluated
//!   locally.
//! * **Non-applicative processes** (§5) — [`ProcessKind::NonApplicative`]:
//!   the mapping "is described by experimental procedures that do not
//!   follow a well known algorithm"; tasks are *recorded*, never computed.

use crate::ids::{ClassId, ProcessId};
use crate::query::CostHint;
use crate::template::Template;
use gaea_adt::TypeTag;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One declared argument (the ARGUMENT section of Figure 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessArg {
    /// Argument name as referenced in the template (`bands`).
    pub name: String,
    /// Input class.
    pub class: ClassId,
    /// True for `SETOF` arguments.
    pub setof: bool,
    /// Minimum number of objects required (the Petri-net threshold; 1 for
    /// scalar args, e.g. 3 for `card(bands) = 3`).
    pub min_card: u64,
}

impl ProcessArg {
    /// Scalar argument.
    pub fn one(name: &str, class: ClassId) -> ProcessArg {
        ProcessArg {
            name: name.into(),
            class,
            setof: false,
            min_card: 1,
        }
    }

    /// `SETOF` argument with a minimum cardinality.
    pub fn set(name: &str, class: ClassId, min_card: u64) -> ProcessArg {
        ProcessArg {
            name: name.into(),
            class,
            setof: true,
            min_card,
        }
    }
}

/// Where a compound step's argument comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepSource {
    /// The i-th argument of the compound process itself.
    OuterArg(usize),
    /// The output object(s) of an earlier step.
    StepOutput(usize),
}

/// One step in a compound process network (Figure 5: rectification feeds
/// classification feeds change detection).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompoundStep {
    /// The (primitive or compound) process to run.
    pub process: ProcessId,
    /// Bindings for that process's arguments, in declaration order.
    pub inputs: Vec<StepSource>,
}

/// How the process's mapping is realized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProcessKind {
    /// Operator-network process with a TEMPLATE.
    Primitive,
    /// "Merely an abstraction": expanded into its steps before execution
    /// (§2.1.4 point 2).
    Compound(Vec<CompoundStep>),
    /// §5 extension: the mapping executes at a named remote site ("the
    /// need to deal with processes that are not locally available").
    /// Assertions are still checked locally before dispatch.
    External {
        /// Site name, resolved against the kernel's executor registry.
        site: String,
    },
    /// §5 extension: "a process may consist of a mapping which is described
    /// by experimental procedures that do not follow a well known
    /// algorithm". Such a process can never be fired automatically; its
    /// tasks are recorded by the scientist with their observed outputs.
    NonApplicative {
        /// Free-text description of the experimental procedure.
        procedure: String,
    },
}

/// A point at which an interactive task suspends for scientist input
/// (§4.3 limitation 2 — "the specification or modification of input
/// parameters based on some temporary result visualized on the screen").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionPoint {
    /// Parameter name; the template refers to it as `PARAM name`.
    pub param: String,
    /// What the scientist is asked.
    pub prompt: String,
    /// Expression evaluated over the bound inputs (and parameters supplied
    /// so far) whose value is shown to the scientist — the "temporary
    /// result visualized on the screen".
    pub preview: Option<crate::template::Expr>,
    /// Type the supplied value must have.
    pub expected: TypeTag,
}

/// A process definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessDef {
    /// Catalog identifier.
    pub id: ProcessId,
    /// Process name (unique, immutable).
    pub name: String,
    /// The derived class ("a derived non-primitive class is defined
    /// uniquely by the outcome of a process").
    pub output: ClassId,
    /// Declared arguments.
    pub args: Vec<ProcessArg>,
    /// ASSERTIONS + MAPPINGS (empty for compound processes, which delegate
    /// to their steps; assertions-only for external processes, whose
    /// mappings run remotely).
    pub template: Template,
    /// Primitive / compound / external / non-applicative.
    pub kind: ProcessKind,
    /// Interaction points, in the order the scientist is consulted
    /// (non-empty only for interactive primitive processes).
    #[serde(default)]
    pub interactions: Vec<InteractionPoint>,
    /// Declared cost hint (`COST oldest` / `COST newest`): how the query
    /// mechanism's bind stage orders candidate input bindings when firing
    /// this process, unless the query itself declares `DERIVE COST …`.
    /// `None` leaves the bind stage on its built-in heuristic.
    #[serde(default)]
    pub cost: Option<CostHint>,
    /// Human description of the scientific procedure.
    pub doc: String,
}

impl ProcessDef {
    /// Argument by name.
    pub fn arg(&self, name: &str) -> Option<&ProcessArg> {
        self.args.iter().find(|a| a.name == name)
    }

    /// True for compound processes.
    pub fn is_compound(&self) -> bool {
        matches!(self.kind, ProcessKind::Compound(_))
    }

    /// True for processes with interaction points (§4.3 extension).
    pub fn is_interactive(&self) -> bool {
        !self.interactions.is_empty()
    }

    /// Remote site name, for external processes.
    pub fn site(&self) -> Option<&str> {
        match &self.kind {
            ProcessKind::External { site } => Some(site),
            _ => None,
        }
    }

    /// True for non-applicative processes (§5 extension).
    pub fn is_non_applicative(&self) -> bool {
        matches!(self.kind, ProcessKind::NonApplicative { .. })
    }

    /// Compound steps, if any.
    pub fn steps(&self) -> Option<&[CompoundStep]> {
        match &self.kind {
            ProcessKind::Compound(steps) => Some(steps),
            _ => None,
        }
    }

    /// Interaction point by parameter name.
    pub fn interaction(&self, param: &str) -> Option<&InteractionPoint> {
        self.interactions.iter().find(|i| i.param == param)
    }
}

impl fmt::Display for ProcessDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DEFINE PROCESS {} (", self.name)?;
        writeln!(f, "  OUTPUT {}", self.output)?;
        write!(f, "  ARGUMENT (")?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if a.setof {
                write!(f, "SETOF {} {}", a.name, a.class)?;
            } else {
                write!(f, "{} {}", a.name, a.class)?;
            }
        }
        writeln!(f, ")")?;
        if !self.interactions.is_empty() {
            writeln!(f, "  INTERACTIONS {{")?;
            for i in &self.interactions {
                write!(f, "    PARAM {} : {}", i.param, i.expected)?;
                if let Some(p) = &i.preview {
                    write!(f, " PREVIEW {p}")?;
                }
                writeln!(f, "; // {}", i.prompt)?;
            }
            writeln!(f, "  }}")?;
        }
        if let Some(hint) = &self.cost {
            writeln!(f, "  COST {}", hint.keyword())?;
        }
        match &self.kind {
            ProcessKind::Primitive | ProcessKind::External { .. } => {
                if let ProcessKind::External { site } = &self.kind {
                    writeln!(f, "  EXTERNAL AT {site:?}")?;
                }
                writeln!(f, "  TEMPLATE {{")?;
                if !self.template.assertions.is_empty() {
                    writeln!(f, "    ASSERTIONS:")?;
                    for a in &self.template.assertions {
                        writeln!(f, "      {a};")?;
                    }
                }
                if !self.template.mappings.is_empty() {
                    writeln!(f, "    MAPPINGS:")?;
                    for m in &self.template.mappings {
                        writeln!(f, "      out.{} = {};", m.attr, m.expr)?;
                    }
                }
                writeln!(f, "  }}")?;
            }
            ProcessKind::NonApplicative { procedure } => {
                writeln!(f, "  NONAPPLICATIVE {procedure:?}")?;
            }
            ProcessKind::Compound(steps) => {
                writeln!(f, "  COMPOUND {{")?;
                for (i, s) in steps.iter().enumerate() {
                    write!(f, "    step{i} = {}(", s.process)?;
                    for (j, src) in s.inputs.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        match src {
                            StepSource::OuterArg(k) => write!(f, "arg{k}")?,
                            StepSource::StepOutput(k) => write!(f, "step{k}")?,
                        }
                    }
                    writeln!(f, ")")?;
                }
                writeln!(f, "  }}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{Expr, Mapping};
    use gaea_store::Oid;

    fn p20() -> ProcessDef {
        ProcessDef {
            id: ProcessId(Oid(120)),
            name: "P20_unsupervised_classification".into(),
            output: ClassId(Oid(20)),
            args: vec![ProcessArg::set("bands", ClassId(Oid(1)), 3)],
            template: Template {
                assertions: vec![Expr::eq(
                    Expr::Card(Box::new(Expr::Arg("bands".into()))),
                    Expr::int(3),
                )],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::int(12),
                }],
            },
            kind: ProcessKind::Primitive,
            interactions: vec![],
            cost: None,
            doc: "grouping of remotely sensed data into land cover classes".into(),
        }
    }

    #[test]
    fn arg_lookup_and_kind() {
        let p = p20();
        assert_eq!(p.arg("bands").unwrap().min_card, 3);
        assert!(p.arg("bands").unwrap().setof);
        assert!(p.arg("x").is_none());
        assert!(!p.is_compound());
        assert!(p.steps().is_none());
    }

    #[test]
    fn display_mirrors_figure3() {
        let s = p20().to_string();
        assert!(s.contains("DEFINE PROCESS P20_unsupervised_classification"));
        assert!(s.contains("SETOF bands class:1"));
        assert!(s.contains("card(bands) = 3;"));
        assert!(s.contains("out.numclass = 12;"));
    }

    #[test]
    fn compound_display() {
        let c = ProcessDef {
            id: ProcessId(Oid(200)),
            name: "land_change_detection".into(),
            output: ClassId(Oid(30)),
            args: vec![
                ProcessArg::set("tm_t1", ClassId(Oid(1)), 3),
                ProcessArg::set("tm_t2", ClassId(Oid(1)), 3),
            ],
            template: Template::default(),
            kind: ProcessKind::Compound(vec![
                CompoundStep {
                    process: ProcessId(Oid(120)),
                    inputs: vec![StepSource::OuterArg(0)],
                },
                CompoundStep {
                    process: ProcessId(Oid(120)),
                    inputs: vec![StepSource::OuterArg(1)],
                },
                CompoundStep {
                    process: ProcessId(Oid(121)),
                    inputs: vec![StepSource::StepOutput(0), StepSource::StepOutput(1)],
                },
            ]),
            interactions: vec![],
            cost: None,
            doc: "Figure 5".into(),
        };
        assert!(c.is_compound());
        assert_eq!(c.steps().unwrap().len(), 3);
        let s = c.to_string();
        assert!(s.contains("COMPOUND"));
        assert!(s.contains("step2 = process:121(step0, step1)"));
    }

    #[test]
    fn extension_kind_predicates_and_display() {
        use crate::template::Expr;
        use gaea_adt::TypeTag;
        // External process: EXTERNAL AT + assertions-only template.
        let ext = ProcessDef {
            id: ProcessId(Oid(300)),
            name: "P_remote".into(),
            output: ClassId(Oid(30)),
            args: vec![ProcessArg::one("x", ClassId(Oid(1)))],
            template: Template::default(),
            kind: ProcessKind::External {
                site: "eros".into(),
            },
            interactions: vec![],
            cost: None,
            doc: String::new(),
        };
        assert_eq!(ext.site(), Some("eros"));
        assert!(!ext.is_compound() && !ext.is_non_applicative() && !ext.is_interactive());
        assert!(ext.steps().is_none());
        assert!(ext.to_string().contains("EXTERNAL AT \"eros\""));
        // Non-applicative process.
        let manual = ProcessDef {
            kind: ProcessKind::NonApplicative {
                procedure: "field survey".into(),
            },
            name: "P_survey".into(),
            ..ext.clone()
        };
        assert!(manual.is_non_applicative());
        assert_eq!(manual.site(), None);
        assert!(manual
            .to_string()
            .contains("NONAPPLICATIVE \"field survey\""));
        // Interactive process: points render with type, preview, prompt.
        let interactive = ProcessDef {
            kind: ProcessKind::Primitive,
            name: "P_super".into(),
            interactions: vec![InteractionPoint {
                param: "signatures".into(),
                prompt: "digitize sites".into(),
                preview: Some(Expr::Arg("x".into())),
                expected: TypeTag::Matrix,
            }],
            ..ext
        };
        assert!(interactive.is_interactive());
        assert!(interactive.interaction("signatures").is_some());
        assert!(interactive.interaction("nope").is_none());
        let s = interactive.to_string();
        assert!(
            s.contains("PARAM signatures : matrix PREVIEW x; // digitize sites"),
            "{s}"
        );
    }

    #[test]
    fn serde_default_keeps_old_process_records_loadable() {
        // Catalogs serialized before `interactions` existed still load.
        let json = r#"{
            "id": 120, "name": "P20", "output": 20,
            "args": [], "template": {"assertions": [], "mappings": []},
            "kind": "Primitive", "doc": ""
        }"#;
        let p: ProcessDef = serde_json::from_str(json).unwrap();
        assert!(p.interactions.is_empty());
        assert!(!p.is_interactive());
        assert!(p.cost.is_none(), "pre-cost-hint records default to None");
    }
}
