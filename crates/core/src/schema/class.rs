//! Non-primitive class definitions (paper §2.1.2).
//!
//! "Once a full concept structure is developed within the high level
//! semantic layer, the leaves of such a structure are mapped to a set of
//! non-primitive classes in the derivation semantics layer." A class is
//! either **base** ("obtained from well known sources outside the system")
//! or **derived**, in which case it "is defined uniquely by the outcome of
//! a process" recorded in its `DERIVED BY` clause.

use crate::ids::{ClassId, ProcessId};
use crate::object::{SPATIAL_ATTR, TEMPORAL_ATTR};
use crate::schema::attr::AttrDef;
use gaea_adt::TypeTag;
use gaea_store::{Field, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Base vs derived (paper §1: the two categories of scientific data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassKind {
    /// Well-understood external data; back propagation stops here.
    Base,
    /// Data defined by a derivation process.
    Derived,
}

/// A non-primitive class definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Catalog identifier.
    pub id: ClassId,
    /// Class name (unique).
    pub name: String,
    /// Base or derived.
    pub kind: ClassKind,
    /// Ordinary attributes (the ATTRIBUTES section), excluding extents.
    pub attrs: Vec<AttrDef>,
    /// True if the class carries a SPATIAL EXTENT attribute.
    pub has_spatial: bool,
    /// True if the class carries a TEMPORAL EXTENT attribute.
    pub has_temporal: bool,
    /// Processes that derive this class (the DERIVED BY clause; several
    /// alternatives may exist, e.g. PCA and SPCA both derive vegetation
    /// change).
    pub derived_by: Vec<ProcessId>,
    /// Documentation.
    pub doc: String,
}

impl ClassDef {
    /// Attribute definition by name (extents included).
    pub fn attr(&self, name: &str) -> Option<AttrDef> {
        if name == SPATIAL_ATTR && self.has_spatial {
            return Some(AttrDef::with_doc(
                SPATIAL_ATTR,
                TypeTag::GeoBox,
                "bounding box",
            ));
        }
        if name == TEMPORAL_ATTR && self.has_temporal {
            return Some(AttrDef::with_doc(
                TEMPORAL_ATTR,
                TypeTag::AbsTime,
                "absolute time",
            ));
        }
        self.attrs.iter().find(|a| a.name == name).cloned()
    }

    /// All attribute names in storage order (attrs, then extents).
    pub fn attr_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.attrs.iter().map(|a| a.name.clone()).collect();
        if self.has_spatial {
            names.push(SPATIAL_ATTR.into());
        }
        if self.has_temporal {
            names.push(TEMPORAL_ATTR.into());
        }
        names
    }

    /// The store schema for this class's extension. All columns nullable:
    /// scientific records are routinely partial, and process templates may
    /// map only a subset of attributes.
    pub fn storage_schema(&self) -> Schema {
        let mut fields: Vec<Field> = self
            .attrs
            .iter()
            .map(|a| Field::optional(&a.name, a.tag.clone()))
            .collect();
        if self.has_spatial {
            fields.push(Field::optional(SPATIAL_ATTR, TypeTag::GeoBox));
        }
        if self.has_temporal {
            fields.push(Field::optional(TEMPORAL_ATTR, TypeTag::AbsTime));
        }
        Schema::new(fields).expect("class attr names are unique by construction")
    }

    /// The store relation holding this class's objects.
    pub fn relation_name(&self) -> String {
        format!("cls_{}", self.id.raw())
    }

    /// True if this class is derived (has or may have producing processes).
    pub fn is_derived(&self) -> bool {
        self.kind == ClassKind::Derived
    }
}

impl fmt::Display for ClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CLASS {} ( // {}", self.name, self.doc)?;
        writeln!(f, "  ATTRIBUTES:")?;
        for a in &self.attrs {
            writeln!(f, "    {a};")?;
        }
        if self.has_spatial {
            writeln!(f, "  SPATIAL EXTENT:\n    {SPATIAL_ATTR} = box;")?;
        }
        if self.has_temporal {
            writeln!(f, "  TEMPORAL EXTENT:\n    {TEMPORAL_ATTR} = abstime;")?;
        }
        if !self.derived_by.is_empty() {
            writeln!(
                f,
                "  DERIVED BY: {}",
                self.derived_by
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_store::Oid;

    /// The paper's `landcover` class.
    fn landcover() -> ClassDef {
        ClassDef {
            id: ClassId(Oid(20)),
            name: "landcover".into(),
            kind: ClassKind::Derived,
            attrs: vec![
                AttrDef::with_doc("area", TypeTag::Char16, "area name"),
                AttrDef::with_doc("ref_system", TypeTag::Char16, "long/lat, UTM ..."),
                AttrDef::with_doc("ref_unit", TypeTag::Char16, "meter, degree ..."),
                AttrDef::new("cell_x", TypeTag::Float4),
                AttrDef::new("cell_y", TypeTag::Float4),
                AttrDef::new("resolution", TypeTag::Float4),
                AttrDef::with_doc("data", TypeTag::Image, "image data type"),
                AttrDef::new("numclass", TypeTag::Int4),
            ],
            has_spatial: true,
            has_temporal: true,
            derived_by: vec![ProcessId(Oid(120))],
            doc: "Land cover".into(),
        }
    }

    #[test]
    fn attr_lookup_includes_extents() {
        let c = landcover();
        assert_eq!(c.attr("area").unwrap().tag, TypeTag::Char16);
        assert_eq!(c.attr(SPATIAL_ATTR).unwrap().tag, TypeTag::GeoBox);
        assert_eq!(c.attr(TEMPORAL_ATTR).unwrap().tag, TypeTag::AbsTime);
        assert!(c.attr("missing").is_none());
    }

    #[test]
    fn storage_schema_shape() {
        let c = landcover();
        let s = c.storage_schema();
        assert_eq!(s.arity(), 10); // 8 attrs + 2 extents
        assert!(s.position(SPATIAL_ATTR).is_ok());
        assert_eq!(c.attr_names().len(), 10);
        assert_eq!(c.relation_name(), "cls_20");
    }

    #[test]
    fn extent_free_class() {
        let mut c = landcover();
        c.has_spatial = false;
        c.has_temporal = false;
        assert!(c.attr(SPATIAL_ATTR).is_none());
        assert_eq!(c.storage_schema().arity(), 8);
    }

    #[test]
    fn display_is_ddl_like() {
        let s = landcover().to_string();
        assert!(s.contains("CLASS landcover"));
        assert!(s.contains("area = char16; // area name"));
        assert!(s.contains("SPATIAL EXTENT"));
        assert!(s.contains("DERIVED BY: process:120"));
    }
}
