//! Concepts: the experiment-layer construct (paper §2.1.1).
//!
//! "A general definition of a concept is a representation of a
//! spatio-temporal entity set, extended with an imprecise definition. [...]
//! each type of base data and each process for deriving data defines a
//! unique class; a concept is simply a set of classes."
//!
//! Concepts form a specialization hierarchy (Figure 2's desert ISA DAG:
//! hot trade-wind desert ISA desert, ice/snow desert ISA desert). The DAG
//! is kept acyclic by construction: a concept's parents must already exist.

use crate::ids::{ClassId, ConceptId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A concept definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Concept {
    /// Catalog identifier.
    pub id: ConceptId,
    /// Concept name (unique).
    pub name: String,
    /// Member classes — the concept's alternative realizations
    /// (Figure 2: "hot trade-wind desert" ↦ {C2, C3, C4, C5}).
    pub members: BTreeSet<ClassId>,
    /// ISA parents (generalizations).
    pub parents: Vec<ConceptId>,
    /// The imprecise, human definition.
    pub doc: String,
}

impl Concept {
    /// True if `class` realizes this concept directly.
    pub fn has_member(&self, class: ClassId) -> bool {
        self.members.contains(&class)
    }
}

impl fmt::Display for Concept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CONCEPT {} (", self.name)?;
        write!(
            f,
            " MEMBERS: {}",
            self.members
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        if !self.parents.is_empty() {
            write!(
                f,
                "; ISA: {}",
                self.parents
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        write!(f, " )")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_store::Oid;

    #[test]
    fn membership() {
        let c = Concept {
            id: ConceptId(Oid(1)),
            name: "hot_trade_wind_desert".into(),
            members: [ClassId(Oid(2)), ClassId(Oid(3))].into_iter().collect(),
            parents: vec![ConceptId(Oid(9))],
            doc: "areas of high pressure with rainfall < 250mm/year".into(),
        };
        assert!(c.has_member(ClassId(Oid(2))));
        assert!(!c.has_member(ClassId(Oid(4))));
        let s = c.to_string();
        assert!(s.contains("CONCEPT hot_trade_wind_desert"));
        assert!(s.contains("ISA: concept:9"));
    }
}
