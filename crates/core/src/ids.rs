//! Typed identifiers for kernel entities.
//!
//! All identifiers draw from the store's single OID space, but carry
//! distinct types so a task id cannot be passed where a process id is
//! expected.

use gaea_store::Oid;
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! kernel_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub Oid);

        impl $name {
            /// Raw OID value.
            pub fn raw(self) -> u64 {
                self.0 .0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, ":{}"), self.0 .0)
            }
        }
    };
}

kernel_id!(
    /// A non-primitive class (derivation-layer entity).
    ClassId,
    "class"
);
kernel_id!(
    /// A concept (experiment-layer entity; a set of classes).
    ConceptId,
    "concept"
);
kernel_id!(
    /// A process (class-level derivation template).
    ProcessId,
    "process"
);
kernel_id!(
    /// A task (object-level derivation record).
    TaskId,
    "task"
);
kernel_id!(
    /// A stored data object (instance of a non-primitive class).
    ObjectId,
    "object"
);
kernel_id!(
    /// A recorded experiment.
    ExperimentId,
    "experiment"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_tags_distinguish_kinds() {
        assert_eq!(ClassId(Oid(3)).to_string(), "class:3");
        assert_eq!(TaskId(Oid(9)).to_string(), "task:9");
        assert_eq!(ObjectId(Oid(1)).raw(), 1);
    }

    #[test]
    fn ordering_follows_oid() {
        assert!(ProcessId(Oid(1)) < ProcessId(Oid(2)));
    }
}
