//! Queries and the three-step retrieval mechanism (paper §2.1.5).
//!
//! "The execution of a database query which involves the retrieval of a
//! derived spatio-temporal concept is performed according to the following
//! sequence: 1. Direct data retrieval [...] 2. Data interpolation (temporal
//! or spatial) [...] 3. Data are computed, based on a derivation
//! relationship. Steps 2 and 3 are prioritized according to the user's
//! needs."

use crate::ids::{ObjectId, TaskId};
use crate::object::DataObject;
use gaea_adt::{AbsTime, GeoBox, TimeRange, Value};
use gaea_sched::JobId;
use serde::{Deserialize, Serialize};

/// What the query targets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryTarget {
    /// One non-primitive class by name.
    Class(String),
    /// A concept by name — fans out over its member classes (§2.1.5 item 1:
    /// "queries on concepts [...] are handled through the high level
    /// semantics layer").
    Concept(String),
}

impl QueryTarget {
    /// The targeted class or concept name (trace labels, diagnostics).
    pub fn name(&self) -> &str {
        match self {
            QueryTarget::Class(n) | QueryTarget::Concept(n) => n,
        }
    }
}

/// Temporal selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeSel {
    /// Exact instant — interpolation may synthesize it (step 2).
    At(AbsTime),
    /// A window — satisfied by any stored timestamp inside it.
    In(TimeRange),
}

/// Comparison operator of a declarative attribute predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrCmp {
    /// `attr = value`
    Eq,
    /// `attr < value`
    Lt,
    /// `attr > value`
    Gt,
}

/// One attribute predicate of a `WHERE` clause (`numclass = 12`): the
/// step-1 retrieval filter beyond the spatio-temporal extents. Predicates
/// are conjunctive — every one must hold for an object to qualify.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrPred {
    /// Attribute name (extents included under their reserved names).
    pub attr: String,
    /// Comparison operator.
    pub cmp: AttrCmp,
    /// Constant the attribute is compared against.
    pub value: Value,
}

impl AttrPred {
    /// Build a predicate.
    pub fn new(attr: &str, cmp: AttrCmp, value: Value) -> AttrPred {
        AttrPred {
            attr: attr.into(),
            cmp,
            value,
        }
    }
}

/// A declared cost hint: how the bind stage orders candidate input
/// bindings for a step-3 derivation. The surface syntax is
/// `DERIVE COST <hint>` on a query (overriding) or `COST <hint>` on a
/// `DEFINE PROCESS` (the process's declared default); with neither, the
/// kernel falls back to its built-in heuristic (exact query-instant
/// matches first, then oldest timestamps, then object id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostHint {
    /// Prefer bindings over the earliest-timestamped objects — the
    /// heuristic's own tie-break order, made explicit and pinnable.
    Oldest,
    /// Prefer bindings over the latest-timestamped objects (most recent
    /// acquisitions are the cheapest to justify re-deriving from).
    Newest,
}

impl CostHint {
    /// Parse the surface keyword (`oldest` / `newest`).
    pub fn parse(s: &str) -> Option<CostHint> {
        match s {
            "oldest" => Some(CostHint::Oldest),
            "newest" => Some(CostHint::Newest),
            _ => None,
        }
    }

    /// The surface keyword this hint prints as.
    pub fn keyword(&self) -> &'static str {
        match self {
            CostHint::Oldest => "oldest",
            CostHint::Newest => "newest",
        }
    }
}

/// Result ordering (`ORDER BY attr [ASC|DESC]`): sort returned objects
/// by one attribute's value order before projection and `LIMIT`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderBy {
    /// Attribute to sort by (extents included under their reserved names).
    pub attr: String,
    /// Descending instead of the default ascending.
    pub desc: bool,
}

/// Step ordering (the paper's "prioritized according to the user's needs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueryStrategy {
    /// Retrieval only; fail rather than compute.
    RetrieveOnly,
    /// Retrieval → interpolation → derivation (the paper's default order).
    #[default]
    PreferInterpolation,
    /// Retrieval → derivation → interpolation.
    PreferDerivation,
}

/// A spatio-temporal query against a class or concept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Target class or concept.
    pub target: QueryTarget,
    /// Spatial window (objects must overlap it).
    pub spatial: Option<GeoBox>,
    /// Temporal selection.
    pub time: Option<TimeSel>,
    /// Step ordering.
    pub strategy: QueryStrategy,
    /// Conjunctive attribute predicates fed into the step-1 retrieval
    /// filter (and into the planner's goal marking, so stored objects that
    /// fail them cannot satisfy the goal).
    #[serde(default)]
    pub attr_preds: Vec<AttrPred>,
    /// Attribute names to keep on returned objects; empty keeps all
    /// (the `RETRIEVE *` projection).
    #[serde(default)]
    pub projection: Vec<String>,
    /// Pin step-3 derivation of the target class to this process
    /// (`DERIVE USING p`): other producers of the goal class are removed
    /// from the plannable net. Intermediate derivations stay open.
    #[serde(default)]
    pub using_process: Option<String>,
    /// Cost hint for the bind stage, overriding any hint declared on the
    /// fired process (`DERIVE COST <hint>`).
    #[serde(default)]
    pub cost: Option<CostHint>,
    /// Refuse stale step-1 answers (`FRESH`): stale hits are re-fired via
    /// the refresh machinery and the fresh outputs served in their place,
    /// instead of being served as history with a staleness flag.
    #[serde(default)]
    pub fresh: bool,
    /// Submit the step-3 derivation as a background job instead of
    /// firing it synchronously (`DERIVE ASYNC`). When retrieval finds no
    /// stored answer, the query returns [`QueryMethod::Submitted`] with
    /// the [`JobId`] in [`QueryOutcome::pending`] — the §5 contract for
    /// external processes that take minutes: the task record is written
    /// when the result arrives, and the session stays responsive
    /// meanwhile.
    #[serde(default)]
    pub async_submit: bool,
    /// Sort returned objects by an attribute (`ORDER BY attr [ASC|DESC]`),
    /// applied to step-1 answers before projection and `LIMIT`. Ties
    /// break by object id ascending, matching index iteration order.
    #[serde(default)]
    pub order_by: Option<OrderBy>,
    /// Keep at most this many objects (`LIMIT n`), applied after
    /// ordering. Index-ordered scans short-circuit once the limit is
    /// reached.
    #[serde(default)]
    pub limit: Option<u64>,
}

impl Query {
    /// Query a class by name, unconstrained.
    pub fn class(name: &str) -> Query {
        Query {
            target: QueryTarget::Class(name.into()),
            spatial: None,
            time: None,
            strategy: QueryStrategy::default(),
            attr_preds: vec![],
            projection: vec![],
            using_process: None,
            cost: None,
            fresh: false,
            async_submit: false,
            order_by: None,
            limit: None,
        }
    }

    /// Query a concept by name, unconstrained.
    pub fn concept(name: &str) -> Query {
        Query {
            target: QueryTarget::Concept(name.into()),
            ..Query::class(name)
        }
    }

    /// Constrain to a spatial window.
    pub fn over(mut self, bbox: GeoBox) -> Query {
        self.spatial = Some(bbox);
        self
    }

    /// Constrain to an instant.
    pub fn at(mut self, t: AbsTime) -> Query {
        self.time = Some(TimeSel::At(t));
        self
    }

    /// Constrain to a window.
    pub fn during(mut self, r: TimeRange) -> Query {
        self.time = Some(TimeSel::In(r));
        self
    }

    /// Choose the step ordering.
    pub fn with_strategy(mut self, s: QueryStrategy) -> Query {
        self.strategy = s;
        self
    }

    /// Add a conjunctive attribute predicate (`WHERE attr cmp value`).
    pub fn filter(mut self, attr: &str, cmp: AttrCmp, value: Value) -> Query {
        self.attr_preds.push(AttrPred::new(attr, cmp, value));
        self
    }

    /// Keep only the named attributes on returned objects.
    pub fn project(mut self, attrs: &[&str]) -> Query {
        self.projection = attrs.iter().map(|a| a.to_string()).collect();
        self
    }

    /// Pin step-3 derivation of the target class to one process.
    pub fn using(mut self, process: &str) -> Query {
        self.using_process = Some(process.into());
        self
    }

    /// Declare the bind-stage cost hint.
    pub fn with_cost(mut self, hint: CostHint) -> Query {
        self.cost = Some(hint);
        self
    }

    /// Refuse stale answers: re-fire stale step-1 hits instead of serving
    /// them as flagged history.
    pub fn fresh(mut self) -> Query {
        self.fresh = true;
        self
    }

    /// Submit the derivation as a background job (`DERIVE ASYNC`)
    /// instead of blocking on it; see [`Query::async_submit`].
    pub fn submit_async(mut self) -> Query {
        self.async_submit = true;
        self
    }

    /// Sort returned objects by an attribute (`ORDER BY`).
    pub fn order_by(mut self, attr: &str, desc: bool) -> Query {
        self.order_by = Some(OrderBy {
            attr: attr.into(),
            desc,
        });
        self
    }

    /// Keep at most `n` objects (`LIMIT n`).
    pub fn limit(mut self, n: u64) -> Query {
        self.limit = Some(n);
        self
    }
}

/// Which of the three steps ultimately answered the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMethod {
    /// Step 1: the data were stored.
    Retrieved,
    /// Step 2: synthesized by interpolation.
    Interpolated,
    /// Step 3: computed through a derivation plan.
    Derived,
    /// Step 3, deferred: the derivation was submitted as a background
    /// job (`DERIVE ASYNC`) whose id is in [`QueryOutcome::pending`];
    /// nothing was computed yet. Await the job and re-issue the query to
    /// read the answer.
    Submitted,
}

/// The access path the optimizer chose for one class scan — the
/// EXPLAIN-visible half of the cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessPath {
    /// Walk the whole heap, evaluating the compiled predicate per tuple.
    FullScan,
    /// Drive from an ordered-index point lookup on `attr`.
    IndexEq { attr: String },
    /// Drive from an ordered-index range scan on `attr` (Lt/Gt/BETWEEN).
    IndexRange { attr: String },
    /// Drive from a spatial-grid probe on `attr` (`WITHIN`).
    GridProbe { attr: String },
    /// Walk an index in key order for `ORDER BY`, short-circuiting at
    /// `LIMIT`.
    IndexOrdered { attr: String },
}

impl std::fmt::Display for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPath::FullScan => write!(f, "full scan"),
            AccessPath::IndexEq { attr } => write!(f, "index eq({attr})"),
            AccessPath::IndexRange { attr } => write!(f, "index range({attr})"),
            AccessPath::GridProbe { attr } => write!(f, "grid probe({attr})"),
            AccessPath::IndexOrdered { attr } => write!(f, "index ordered({attr})"),
        }
    }
}

/// One class scan the optimizer planned while answering a query: the
/// chosen driving path and the cost estimate that won it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanPlan {
    /// The scanned class.
    pub class: String,
    /// Chosen driving access path (residual predicates always re-filter).
    pub path: AccessPath,
    /// Estimated rows the driving path yields (the cost used to pick it).
    pub estimated_rows: u64,
}

impl std::fmt::Display for ScanPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} via {} (~{} rows)",
            self.class, self.path, self.estimated_rows
        )
    }
}

/// Wall time of one pipeline stage inside a statement (EXPLAIN ANALYZE
/// row). Stage names are the span names the kernel opens: `plan`,
/// `retrieve`, `interpolate`, `derive`, `project` at the top level,
/// with nested spans (`bind`, `fire`, …) at `depth > 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage (span) name.
    pub stage: String,
    /// Nesting depth: 1 = direct stage of the statement, deeper values
    /// are sub-stages of the stage preceding them.
    pub depth: u16,
    /// Wall time spent inside the stage, microseconds.
    pub wall_us: u64,
    /// Annotations attached while the stage ran (e.g. the chosen access
    /// path, wave widths).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub notes: Vec<(String, String)>,
}

/// Per-statement execution profile: the `EXPLAIN ANALYZE` surface.
///
/// Built from the statement's observability trace: `total_us` is the
/// end-to-end wall time and the depth-1 entries of `stages` are
/// contiguous laps over the statement body, so their sum tracks
/// `total_us` closely (the acceptance bound is ±10%).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryProfile {
    /// End-to-end statement wall time, microseconds.
    pub total_us: u64,
    /// Per-stage timings in completion order (see [`StageTiming`]).
    pub stages: Vec<StageTiming>,
}

impl QueryProfile {
    /// Flatten a finished observability trace into the wire-facing
    /// profile.
    pub fn from_trace(trace: &gaea_obs::Trace) -> QueryProfile {
        QueryProfile {
            total_us: trace.total_us,
            stages: trace
                .spans
                .iter()
                .map(|s| StageTiming {
                    stage: s.name.to_string(),
                    depth: s.depth,
                    wall_us: s.wall_us,
                    notes: s
                        .notes
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Sum of the top-level (depth-1) stage wall times — the number the
    /// ±10% acceptance bound compares against [`QueryProfile::total_us`].
    pub fn stage_sum_us(&self) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.depth == 1)
            .map(|s| s.wall_us)
            .sum()
    }
}

/// Query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matching (possibly freshly created) objects.
    pub objects: Vec<DataObject>,
    /// The step that produced them.
    pub method: QueryMethod,
    /// Tasks recorded while answering (empty for plain retrieval, unless
    /// a `FRESH` query re-fired stale hits).
    pub tasks: Vec<TaskId>,
    /// The subset of `objects` that are *stale* derivations: their
    /// recorded inputs were mutated after derivation (MVCC fingerprint
    /// drift), so they describe history rather than the store's present
    /// state. They are served — the paper's step-1 contract — but flagged,
    /// so callers can decide to [`crate::kernel::Gaea::refresh_object`]
    /// them. Always empty for freshly computed answers.
    pub stale: Vec<ObjectId>,
    /// Background derivation jobs relevant to this answer: every
    /// in-flight job whose output class is among the query's targets —
    /// derivations another session already launched, visible here
    /// instead of being silently double-fired — and, for a
    /// [`QueryMethod::Submitted`] outcome, the job this query itself
    /// submitted. Poll or await them via `Gaea::job_status` /
    /// `Gaea::await_job`.
    pub pending: Vec<JobId>,
    /// The access paths the optimizer chose for the step-1 class scans
    /// (EXPLAIN output): one entry per scanned class extent. Empty when
    /// the answer never scanned a class (e.g. a submitted job).
    pub plans: Vec<ScanPlan>,
    /// Per-stage wall times of this statement (`EXPLAIN ANALYZE`
    /// output), filled by the kernel entry points. `None` only for
    /// outcomes assembled outside a traced statement.
    pub profile: Option<QueryProfile>,
}

/// Fold a finished statement trace into an outcome: feed the per-stage
/// latency histograms of the process-wide registry and attach the
/// wire-facing [`QueryProfile`]. Shared by the live-kernel and
/// pinned-snapshot query entry points.
pub(crate) fn apply_trace(outcome: &mut QueryOutcome, trace: &gaea_obs::Trace) {
    let m = gaea_obs::metrics();
    for s in &trace.spans {
        let h = match (s.name, s.depth) {
            ("plan", 1) => Some(&m.stage_plan_us),
            ("retrieve", 1) => Some(&m.stage_retrieve_us),
            ("interpolate", 1) => Some(&m.stage_interpolate_us),
            ("derive", 1) => Some(&m.stage_derive_us),
            ("project", 1) => Some(&m.stage_project_us),
            ("bind", _) => Some(&m.stage_bind_us),
            ("fire", d) if d > 1 => Some(&m.stage_fire_us),
            _ => None,
        };
        if let Some(h) = h {
            h.record(s.wall_us);
        }
    }
    outcome.profile = Some(QueryProfile::from_trace(trace));
}

impl QueryOutcome {
    /// Did the query return any stale derived object?
    pub fn any_stale(&self) -> bool {
        !self.stale.is_empty()
    }

    /// Is a specific returned object flagged stale?
    pub fn is_stale(&self, obj: ObjectId) -> bool {
        self.stale.contains(&obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let q = Query::class("landcover")
            .over(GeoBox::new(-20.0, -35.0, 55.0, 38.0))
            .at(AbsTime::from_ymd(1986, 1, 15).unwrap())
            .with_strategy(QueryStrategy::PreferDerivation);
        assert_eq!(q.target, QueryTarget::Class("landcover".into()));
        assert!(q.spatial.is_some());
        assert!(matches!(q.time, Some(TimeSel::At(_))));
        assert_eq!(q.strategy, QueryStrategy::PreferDerivation);
    }

    #[test]
    fn default_strategy_is_papers_order() {
        assert_eq!(
            Query::concept("ndvi").strategy,
            QueryStrategy::PreferInterpolation
        );
    }

    #[test]
    fn declarative_builders_compose() {
        let q = Query::class("landcover")
            .filter("numclass", AttrCmp::Eq, Value::Int4(12))
            .filter("area", AttrCmp::Gt, Value::Char16("a".into()))
            .project(&["data", "numclass"])
            .using("P20")
            .with_cost(CostHint::Newest)
            .fresh();
        assert_eq!(q.attr_preds.len(), 2);
        assert_eq!(q.attr_preds[0].attr, "numclass");
        assert_eq!(q.attr_preds[0].cmp, AttrCmp::Eq);
        assert_eq!(q.projection, vec!["data".to_string(), "numclass".into()]);
        assert_eq!(q.using_process.as_deref(), Some("P20"));
        assert_eq!(q.cost, Some(CostHint::Newest));
        assert!(q.fresh);
    }

    #[test]
    fn cost_hint_keywords_round_trip() {
        for h in [CostHint::Oldest, CostHint::Newest] {
            assert_eq!(CostHint::parse(h.keyword()), Some(h));
        }
        assert_eq!(CostHint::parse("cheapest"), None);
    }

    #[test]
    fn old_serialized_queries_still_load() {
        // Queries serialized before the declarative surface existed lack
        // the new fields; serde defaults must fill them in.
        let json = r#"{"target":{"Class":"ndvi"},"spatial":null,"time":null,
                       "strategy":"RetrieveOnly"}"#;
        let q: Query = serde_json::from_str(json).unwrap();
        assert!(q.attr_preds.is_empty() && q.projection.is_empty());
        assert!(q.using_process.is_none() && q.cost.is_none() && !q.fresh);
        assert!(!q.async_submit, "pre-async queries fire synchronously");
        assert!(q.order_by.is_none() && q.limit.is_none());
    }

    #[test]
    fn order_and_limit_builders_compose() {
        let q = Query::class("landcover")
            .order_by("numclass", true)
            .limit(5);
        assert_eq!(
            q.order_by,
            Some(OrderBy {
                attr: "numclass".into(),
                desc: true
            })
        );
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn plans_display_for_explain() {
        let plan = ScanPlan {
            class: "landcover".into(),
            path: AccessPath::IndexEq {
                attr: "numclass".into(),
            },
            estimated_rows: 3,
        };
        assert_eq!(
            plan.to_string(),
            "landcover via index eq(numclass) (~3 rows)"
        );
        assert_eq!(AccessPath::FullScan.to_string(), "full scan");
    }

    #[test]
    fn async_builder_composes() {
        let q = Query::class("remote_out").submit_async();
        assert!(q.async_submit);
        assert!(!Query::class("remote_out").async_submit);
    }
}
