//! Queries and the three-step retrieval mechanism (paper §2.1.5).
//!
//! "The execution of a database query which involves the retrieval of a
//! derived spatio-temporal concept is performed according to the following
//! sequence: 1. Direct data retrieval [...] 2. Data interpolation (temporal
//! or spatial) [...] 3. Data are computed, based on a derivation
//! relationship. Steps 2 and 3 are prioritized according to the user's
//! needs."

use crate::ids::{ObjectId, TaskId};
use crate::object::DataObject;
use gaea_adt::{AbsTime, GeoBox, TimeRange};
use serde::{Deserialize, Serialize};

/// What the query targets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryTarget {
    /// One non-primitive class by name.
    Class(String),
    /// A concept by name — fans out over its member classes (§2.1.5 item 1:
    /// "queries on concepts [...] are handled through the high level
    /// semantics layer").
    Concept(String),
}

/// Temporal selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeSel {
    /// Exact instant — interpolation may synthesize it (step 2).
    At(AbsTime),
    /// A window — satisfied by any stored timestamp inside it.
    In(TimeRange),
}

/// Step ordering (the paper's "prioritized according to the user's needs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueryStrategy {
    /// Retrieval only; fail rather than compute.
    RetrieveOnly,
    /// Retrieval → interpolation → derivation (the paper's default order).
    #[default]
    PreferInterpolation,
    /// Retrieval → derivation → interpolation.
    PreferDerivation,
}

/// A spatio-temporal query against a class or concept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Target class or concept.
    pub target: QueryTarget,
    /// Spatial window (objects must overlap it).
    pub spatial: Option<GeoBox>,
    /// Temporal selection.
    pub time: Option<TimeSel>,
    /// Step ordering.
    pub strategy: QueryStrategy,
}

impl Query {
    /// Query a class by name, unconstrained.
    pub fn class(name: &str) -> Query {
        Query {
            target: QueryTarget::Class(name.into()),
            spatial: None,
            time: None,
            strategy: QueryStrategy::default(),
        }
    }

    /// Query a concept by name, unconstrained.
    pub fn concept(name: &str) -> Query {
        Query {
            target: QueryTarget::Concept(name.into()),
            spatial: None,
            time: None,
            strategy: QueryStrategy::default(),
        }
    }

    /// Constrain to a spatial window.
    pub fn over(mut self, bbox: GeoBox) -> Query {
        self.spatial = Some(bbox);
        self
    }

    /// Constrain to an instant.
    pub fn at(mut self, t: AbsTime) -> Query {
        self.time = Some(TimeSel::At(t));
        self
    }

    /// Constrain to a window.
    pub fn during(mut self, r: TimeRange) -> Query {
        self.time = Some(TimeSel::In(r));
        self
    }

    /// Choose the step ordering.
    pub fn with_strategy(mut self, s: QueryStrategy) -> Query {
        self.strategy = s;
        self
    }
}

/// Which of the three steps ultimately answered the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMethod {
    /// Step 1: the data were stored.
    Retrieved,
    /// Step 2: synthesized by interpolation.
    Interpolated,
    /// Step 3: computed through a derivation plan.
    Derived,
}

/// Query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matching (possibly freshly created) objects.
    pub objects: Vec<DataObject>,
    /// The step that produced them.
    pub method: QueryMethod,
    /// Tasks recorded while answering (empty for plain retrieval).
    pub tasks: Vec<TaskId>,
    /// The subset of `objects` that are *stale* derivations: their
    /// recorded inputs were mutated after derivation (MVCC fingerprint
    /// drift), so they describe history rather than the store's present
    /// state. They are served — the paper's step-1 contract — but flagged,
    /// so callers can decide to [`crate::kernel::Gaea::refresh_object`]
    /// them. Always empty for freshly computed answers.
    pub stale: Vec<ObjectId>,
}

impl QueryOutcome {
    /// Did the query return any stale derived object?
    pub fn any_stale(&self) -> bool {
        !self.stale.is_empty()
    }

    /// Is a specific returned object flagged stale?
    pub fn is_stale(&self, obj: ObjectId) -> bool {
        self.stale.contains(&obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let q = Query::class("landcover")
            .over(GeoBox::new(-20.0, -35.0, 55.0, 38.0))
            .at(AbsTime::from_ymd(1986, 1, 15).unwrap())
            .with_strategy(QueryStrategy::PreferDerivation);
        assert_eq!(q.target, QueryTarget::Class("landcover".into()));
        assert!(q.spatial.is_some());
        assert!(matches!(q.time, Some(TimeSel::At(_))));
        assert_eq!(q.strategy, QueryStrategy::PreferDerivation);
    }

    #[test]
    fn default_strategy_is_papers_order() {
        assert_eq!(
            Query::concept("ndvi").strategy,
            QueryStrategy::PreferInterpolation
        );
    }
}
