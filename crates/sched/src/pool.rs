//! The worker pool: a deterministic parallel `map` over scoped threads.
//!
//! [`Scheduler::map`] is the only execution primitive the kernel needs:
//! one wave of independent work items goes in, results come out **in
//! input order**. Workers are `std::thread::scope` threads, so the
//! mapped closure may borrow from the caller's stack — the kernel
//! shares `&Database` / `&Catalog` / `&OperatorRegistry` without any
//! `Arc` plumbing. Work is handed out through a shared cursor, so a
//! slow item never blocks the distribution of the rest.
//!
//! With `workers <= 1` (the default) `map` is a plain sequential loop
//! over the items in order — no threads, no locks — which is what makes
//! the kernel's single-threaded mode bit-for-bit identical to an
//! unscheduled executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Read a worker count from environment variable `var`, falling back to
/// `fallback` when unset — and, *loudly*, when malformed: the parse
/// error is reported on stderr (naming `what` is being configured) so a
/// typo'd deployment does not silently run at the default, but
/// misconfiguration never changes behaviour. Shared by
/// [`Scheduler::from_env`] and `JobPool::from_env`.
pub(crate) fn env_workers(var: &str, fallback: usize, what: &str) -> usize {
    match std::env::var(var) {
        Ok(v) => match parse_workers(&v) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("gaea-sched: ignoring {var}={v:?}: {e}; defaulting to {fallback} {what}");
                fallback
            }
        },
        Err(_) => fallback,
    }
}

/// Parse a worker-count specification (the value of `GAEA_SCHED_WORKERS`
/// or `GAEA_JOB_WORKERS`): a positive integer, surrounding whitespace
/// allowed. Zero, negatives and non-numbers are errors — worker counts
/// opt *into* parallelism, so there is no meaningful zero.
pub fn parse_workers(spec: &str) -> Result<usize, String> {
    let trimmed = spec.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err("worker count must be a positive integer, got 0".into()),
        Ok(n) => Ok(n),
        Err(e) => Err(format!(
            "worker count must be a positive integer, got {trimmed:?} ({e})"
        )),
    }
}

/// A fixed-size worker pool. Cheap to construct (threads are scoped per
/// [`Scheduler::map`] call, not kept alive), cheap to copy around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduler {
    workers: usize,
}

impl Default for Scheduler {
    /// The deterministic single-threaded scheduler.
    fn default() -> Scheduler {
        Scheduler::sequential()
    }
}

impl Scheduler {
    /// A scheduler with `workers` threads per wave (clamped to ≥ 1).
    pub fn new(workers: usize) -> Scheduler {
        Scheduler {
            workers: workers.max(1),
        }
    }

    /// The single-threaded scheduler: every `map` is an in-order loop.
    pub fn sequential() -> Scheduler {
        Scheduler { workers: 1 }
    }

    /// Worker count from the `GAEA_SCHED_WORKERS` environment variable,
    /// defaulting to the sequential scheduler when unset — and when the
    /// value is malformed: misconfiguration must never change behaviour,
    /// only a valid positive count opts into parallelism. A malformed
    /// value is no longer swallowed silently, though — the parse error is
    /// reported on stderr so a typo'd deployment does not quietly run
    /// single-threaded forever.
    pub fn from_env() -> Scheduler {
        Scheduler::new(env_workers(crate::WORKERS_ENV, 1, "wave worker"))
    }

    /// Number of workers a `map` call may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True when `map` runs inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.workers == 1
    }

    /// Apply `f` to every item, returning results in input order.
    ///
    /// `f` receives the item's input index alongside the item, so
    /// callers can correlate results with external per-item state
    /// without smuggling it through the item type. With more than one
    /// worker the items execute concurrently on scoped threads (at most
    /// `min(workers, items.len())` of them); panics in `f` propagate to
    /// the caller. Items must be mutually independent — `map` gives no
    /// ordering guarantee *during* execution, only for the returned
    /// vector.
    pub fn map<I, R, F>(&self, items: Vec<I>, f: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(usize, I) -> R + Sync,
    {
        let m = gaea_obs::metrics();
        m.sched_workers.set(self.workers as u64);
        if self.workers <= 1 || items.len() <= 1 {
            m.sched_serial_maps.inc();
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }
        let n = items.len();
        let threads = self.workers.min(n);
        m.sched_parallel_maps.inc();
        m.sched_wave_width.record(n as u64);
        // Hand items out through a cursor over pre-parked slots: workers
        // claim the next index, take the item, and deposit the result in
        // the slot of the same index — input order survives any finish
        // order.
        let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                handles.push(s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("each slot is claimed exactly once");
                    let r = f(i, item);
                    *results[i].lock().expect("result slot poisoned") = Some(r);
                }));
            }
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every slot was filled")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_map_preserves_order() {
        let s = Scheduler::sequential();
        let out = s.map(vec![1, 2, 3], |i, x| (i, x * 10));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let s = Scheduler::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = s.map(items, |i, x| {
            // Stagger finish order: later items finish earlier.
            std::thread::sleep(std::time::Duration::from_micros((100 - x as u64) * 5));
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let items: Vec<u64> = (0..64).collect();
        let f = |_: usize, x: u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let seq = Scheduler::sequential().map(items.clone(), f);
        let par = Scheduler::new(8).map(items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn map_borrows_from_the_callers_stack() {
        // Scoped threads: the closure reads a stack-local slice.
        let base: Vec<u64> = (0..32).map(|i| i * i).collect();
        let s = Scheduler::new(3);
        let out = s.map((0..32).collect::<Vec<usize>>(), |_, i| base[i] + 1);
        assert_eq!(out[5], 26);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn worker_count_is_clamped_and_reported() {
        assert_eq!(Scheduler::new(0).workers(), 1);
        assert!(Scheduler::new(0).is_sequential());
        assert_eq!(Scheduler::new(8).workers(), 8);
        assert!(!Scheduler::new(2).is_sequential());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let s = Scheduler::new(4);
        assert_eq!(s.map(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(s.map(vec![7u8], |i, x| x + i as u8), vec![7]);
    }

    #[test]
    fn worker_specs_parse_or_explain() {
        assert_eq!(parse_workers("4"), Ok(4));
        assert_eq!(parse_workers(" 2 "), Ok(2), "whitespace tolerated");
        // The satellite cases: every malformed spec yields a diagnostic
        // instead of a silent fallback (from_env still falls back — but
        // loudly).
        for bad in ["0", "-1", "abc", "", "1.5"] {
            let err = parse_workers(bad).unwrap_err();
            assert!(
                err.contains("positive integer"),
                "spec {bad:?} must explain itself, got {err:?}"
            );
        }
        assert!(parse_workers("-1").unwrap_err().contains("-1"));
        assert!(parse_workers("abc").unwrap_err().contains("abc"));
    }

    #[test]
    fn many_more_items_than_workers() {
        let s = Scheduler::new(2);
        let out = s.map((0..1000).collect::<Vec<u32>>(), |_, x| x + 1);
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 1000);
    }
}
