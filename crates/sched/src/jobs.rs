//! The background job pool: long-lived workers for firings that take
//! minutes, not microseconds.
//!
//! [`Scheduler::map`](crate::Scheduler::map) is a *wave* primitive: the
//! caller blocks until every item of the wave is done, which is exactly
//! right for CPU-bound template evaluation and exactly wrong for the
//! paper's §5 external processes — remote sites that "write the task
//! record when the result arrives", minutes later. A [`JobPool`] is the
//! complement: work is *submitted* and the caller returns immediately
//! with a [`JobId`]; detached worker threads (spawned lazily, up to a
//! configurable cap) run the job bodies; callers poll
//! ([`JobPool::phase`] / [`JobPool::status`]), block with a deadline
//! ([`JobPool::wait_terminal`]), or abandon ([`JobPool::cancel`]).
//!
//! The state machine every job walks:
//!
//! ```text
//! Queued ──▶ Running ──▶ Done(T) | Failed(err)
//!    │          │
//!    └──────────┴──────▶ Cancelled
//! ```
//!
//! Cancellation is cooperative: a queued job is unscheduled outright; a
//! running job cannot be interrupted mid-flight (the worker may be deep
//! in a remote round-trip), so its eventual result is *discarded* and
//! the status stays `Cancelled`. Cancelling a job that already reached a
//! terminal state is a clean no-op. A worker panic is caught and
//! recorded as `Failed`, never poisoning the pool.
//!
//! The pool knows nothing about databases: `T` is whatever the caller
//! wants back from a completed body (the kernel uses its prepared-firing
//! type, committing it on the caller's thread — the pool never writes).
//! Job ids are *caller-assigned* so the caller can keep richer records
//! keyed by the same id, including entries that never reach the pool
//! (e.g. a submission answered by an already-recorded derivation).

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment variable consulted by [`JobPool::from_env`]: the maximum
/// number of background job workers (default
/// [`DEFAULT_JOB_WORKERS`]).
pub const JOB_WORKERS_ENV: &str = "GAEA_JOB_WORKERS";

/// Default worker cap of [`JobPool::from_env`] when the environment does
/// not say otherwise. Job workers spend their lives blocked on remote
/// round-trips, so (unlike the CPU-bound wave pool) more workers than
/// cores is harmless; four covers the common "a handful of slow sites"
/// case without turning every kernel into a thread farm.
pub const DEFAULT_JOB_WORKERS: usize = 4;

/// Identifier of a background job. Assigned by the *caller* of
/// [`JobPool::submit`] (dense from 1 in the kernel), so one id namespace
/// can also cover submissions that resolve without ever entering the
/// pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Status of a background job, payload included. `T` is the job body's
/// success value (cloned out on [`JobPool::status`]; use
/// [`JobPool::phase`] when the payload is not needed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus<T> {
    /// Submitted, not yet picked up by a worker.
    Queued,
    /// A worker is executing the body.
    Running,
    /// The body returned a value. Terminal.
    Done(T),
    /// The body returned an error or panicked. Terminal.
    Failed(String),
    /// Cancelled before a result was kept (a queued job never ran; a
    /// running job's eventual result was discarded). Terminal.
    Cancelled,
}

impl<T> JobStatus<T> {
    /// Has the job reached a state it can never leave?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done(_) | JobStatus::Failed(_) | JobStatus::Cancelled
        )
    }

    /// The payload-free view of this status.
    pub fn phase(&self) -> JobPhase {
        match self {
            JobStatus::Queued => JobPhase::Queued,
            JobStatus::Running => JobPhase::Running,
            JobStatus::Done(_) => JobPhase::Done,
            JobStatus::Failed(_) => JobPhase::Failed,
            JobStatus::Cancelled => JobPhase::Cancelled,
        }
    }
}

/// [`JobStatus`] without the payload: cheap to copy, cheap to query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// See [`JobStatus::Queued`].
    Queued,
    /// See [`JobStatus::Running`].
    Running,
    /// See [`JobStatus::Done`].
    Done,
    /// See [`JobStatus::Failed`].
    Failed,
    /// See [`JobStatus::Cancelled`].
    Cancelled,
}

impl JobPhase {
    /// Has the job reached a state it can never leave?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobPhase::Done | JobPhase::Failed | JobPhase::Cancelled
        )
    }
}

/// A job body: runs on a worker thread, owns everything it needs.
type Work<T> = Box<dyn FnOnce() -> Result<T, String> + Send + 'static>;

struct PoolState<T> {
    /// Ids awaiting a worker, submission order.
    queue: VecDeque<JobId>,
    /// Bodies of queued jobs (removed when picked up or cancelled).
    bodies: BTreeMap<JobId, Work<T>>,
    /// Status of every job ever submitted.
    status: BTreeMap<JobId, JobStatus<T>>,
    /// Worker threads currently alive.
    live_workers: usize,
    /// Worker threads currently blocked waiting for work.
    idle_workers: usize,
    /// Cap on `live_workers`; see [`JobPool::set_max_workers`].
    max_workers: usize,
    /// Set by [`JobPool`]'s `Drop`: workers exit instead of waiting.
    shutdown: bool,
}

struct PoolShared<T> {
    state: Mutex<PoolState<T>>,
    cv: Condvar,
}

/// A pool of long-lived background workers executing submitted job
/// bodies. See the module docs for the state machine and semantics.
///
/// Workers are spawned lazily on submission (never more than the cap)
/// and *detached*: dropping the pool cancels every still-queued job and
/// signals shutdown, but does not join workers — a worker stuck in a
/// remote call must not hang the owner's teardown. Detached workers
/// only hold the shared state alive, nothing of the owner's.
pub struct JobPool<T: Send + 'static> {
    shared: Arc<PoolShared<T>>,
}

impl<T: Send + 'static> JobPool<T> {
    /// A pool allowing up to `max_workers` concurrent jobs (clamped to
    /// ≥ 1). No threads are spawned until the first submission.
    pub fn new(max_workers: usize) -> JobPool<T> {
        JobPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    queue: VecDeque::new(),
                    bodies: BTreeMap::new(),
                    status: BTreeMap::new(),
                    live_workers: 0,
                    idle_workers: 0,
                    max_workers: max_workers.max(1),
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Worker cap from the `GAEA_JOB_WORKERS` environment variable,
    /// defaulting to [`DEFAULT_JOB_WORKERS`]. Like
    /// [`Scheduler::from_env`](crate::Scheduler::from_env), a malformed
    /// value never changes behaviour — it is reported on stderr and the
    /// default used.
    pub fn from_env() -> JobPool<T> {
        JobPool::new(crate::pool::env_workers(
            JOB_WORKERS_ENV,
            DEFAULT_JOB_WORKERS,
            "job worker(s)",
        ))
    }

    /// The current worker cap.
    pub fn max_workers(&self) -> usize {
        self.lock().max_workers
    }

    /// Adjust the worker cap (clamped to ≥ 1). Takes effect on future
    /// submissions; already-spawned workers above a lowered cap finish
    /// their current jobs and stay available.
    pub fn set_max_workers(&self, max_workers: usize) {
        self.lock().max_workers = max_workers.max(1);
    }

    /// Worker threads currently alive (spawned so far, ≤ cap).
    pub fn live_workers(&self) -> usize {
        self.lock().live_workers
    }

    /// Submit a job body under a caller-assigned id. The body runs on a
    /// background worker; the submission returns immediately.
    ///
    /// # Panics
    /// If `id` was already submitted — ids identify jobs for their whole
    /// lifetime, so reuse would corrupt the status map.
    pub fn submit(&self, id: JobId, work: impl FnOnce() -> Result<T, String> + Send + 'static) {
        let spawn = {
            let mut state = self.lock();
            assert!(
                !state.status.contains_key(&id),
                "job id {id} submitted twice"
            );
            state.status.insert(id, JobStatus::Queued);
            state.bodies.insert(id, Box::new(work));
            state.queue.push_back(id);
            gaea_obs::metrics().jobs_submitted.inc();
            gaea_obs::metrics().jobs_queue_depth.add(1);
            // Spawn a worker unless an idle one will pick this up (or the
            // cap is reached). Workers outlive their first job; the pool
            // converges on min(cap, peak concurrent jobs) threads.
            let spawn = state.idle_workers == 0 && state.live_workers < state.max_workers;
            if spawn {
                state.live_workers += 1;
            }
            spawn
        };
        if spawn {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || worker_loop(shared));
        }
        self.shared.cv.notify_all();
    }

    /// The job's payload-free phase (`None` for an id never submitted).
    pub fn phase(&self, id: JobId) -> Option<JobPhase> {
        self.lock().status.get(&id).map(JobStatus::phase)
    }

    /// The job's status, payload cloned out (`None` for an id never
    /// submitted).
    pub fn status(&self, id: JobId) -> Option<JobStatus<T>>
    where
        T: Clone,
    {
        self.lock().status.get(&id).cloned()
    }

    /// Consume a `Done` job: its payload is moved out and the pool
    /// forgets the entry entirely, so completed results do not
    /// accumulate for the pool's lifetime — the owner keeps its own
    /// record of what the result became. Ids that are unknown or not
    /// `Done` are left untouched and return `None`.
    pub fn take_done(&self, id: JobId) -> Option<T> {
        let mut state = self.lock();
        if !matches!(state.status.get(&id), Some(JobStatus::Done(_))) {
            return None;
        }
        match state.status.remove(&id) {
            Some(JobStatus::Done(value)) => Some(value),
            _ => unreachable!("checked Done under the same lock"),
        }
    }

    /// Cancel a job: a queued body is dropped unrun; a running body's
    /// eventual result is discarded. Returns `true` when this call moved
    /// the job to `Cancelled`, `false` when the job was already terminal
    /// (cancel-after-done is a clean no-op) or the id is unknown.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.lock();
        let cancelled = match state.status.get(&id) {
            Some(JobStatus::Queued) => {
                state.queue.retain(|q| *q != id);
                state.bodies.remove(&id);
                state.status.insert(id, JobStatus::Cancelled);
                gaea_obs::metrics().jobs_queue_depth.sub(1);
                gaea_obs::metrics().jobs_cancelled.inc();
                true
            }
            Some(JobStatus::Running) => {
                state.status.insert(id, JobStatus::Cancelled);
                gaea_obs::metrics().jobs_cancelled.inc();
                true
            }
            _ => false,
        };
        drop(state);
        if cancelled {
            self.shared.cv.notify_all();
        }
        cancelled
    }

    /// Block until the job reaches a terminal state or `timeout`
    /// elapses, returning the status as of the return (which is
    /// therefore *not* necessarily terminal). `None` for an id never
    /// submitted.
    pub fn wait_terminal(&self, id: JobId, timeout: Duration) -> Option<JobStatus<T>>
    where
        T: Clone,
    {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            match state.status.get(&id) {
                None => return None,
                Some(s) if s.is_terminal() => return Some(s.clone()),
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return state.status.get(&id).cloned();
            }
            let (next, _) = self
                .shared
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState<T>> {
        lock_state(&self.shared)
    }
}

impl<T: Send + 'static> Drop for JobPool<T> {
    fn drop(&mut self) {
        let mut state = self.lock();
        state.shutdown = true;
        // Queued bodies will never run: resolve them so no job is left in
        // a non-terminal state forever.
        while let Some(id) = state.queue.pop_front() {
            state.bodies.remove(&id);
            state.status.insert(id, JobStatus::Cancelled);
            gaea_obs::metrics().jobs_queue_depth.sub(1);
            gaea_obs::metrics().jobs_cancelled.inc();
        }
        drop(state);
        self.shared.cv.notify_all();
        // Workers are detached on purpose: one blocked in a remote call
        // must not hang the owner's teardown. They exit at the next
        // shutdown check and only keep the shared state alive.
    }
}

/// Lock the pool state, absorbing poisoning: every mutation of the state
/// is a handful of map/queue operations that cannot leave it half-done,
/// and job bodies run *outside* the lock, so a panicking thread (a
/// worker body, or an asserting caller) never leaves the maps
/// inconsistent — recovering the guard is sound and keeps one bad job
/// from wedging the pool (and its owner's `Drop`).
fn lock_state<T>(shared: &PoolShared<T>) -> std::sync::MutexGuard<'_, PoolState<T>> {
    match shared.state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn worker_loop<T: Send + 'static>(shared: Arc<PoolShared<T>>) {
    loop {
        let (id, work) = {
            let mut state = lock_state(&shared);
            loop {
                if state.shutdown {
                    state.live_workers -= 1;
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    let work = state
                        .bodies
                        .remove(&id)
                        .expect("queued job carries its body");
                    state.status.insert(id, JobStatus::Running);
                    gaea_obs::metrics().jobs_queue_depth.sub(1);
                    break (id, work);
                }
                state.idle_workers += 1;
                let (next, _) = shared
                    .cv
                    .wait_timeout(state, Duration::from_millis(200))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                state = next;
                state.idle_workers -= 1;
            }
        };
        // Run the body outside the lock; a panic becomes Failed, never a
        // poisoned pool.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work))
            .unwrap_or_else(|panic| Err(format!("job body panicked: {}", panic_text(&*panic))));
        let mut state = lock_state(&shared);
        match state.status.get(&id) {
            // Cancelled while running: the result is discarded.
            Some(JobStatus::Cancelled) => {}
            _ => {
                let status = match result {
                    Ok(v) => {
                        gaea_obs::metrics().jobs_completed.inc();
                        JobStatus::Done(v)
                    }
                    Err(e) => {
                        gaea_obs::metrics().jobs_failed.inc();
                        JobStatus::Failed(e)
                    }
                };
                state.status.insert(id, status);
            }
        }
        drop(state);
        shared.cv.notify_all();
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A job body that blocks until the returned sender releases it —
    /// the deterministic stand-in for a slow remote site.
    fn gated_job(
        value: u64,
    ) -> (
        impl FnOnce() -> Result<u64, String> + Send,
        mpsc::Sender<()>,
    ) {
        let (tx, rx) = mpsc::channel::<()>();
        (
            move || {
                let _ = rx.recv();
                Ok(value)
            },
            tx,
        )
    }

    #[test]
    fn submit_runs_to_done() {
        let pool: JobPool<u64> = JobPool::new(2);
        pool.submit(JobId(1), || Ok(42));
        let status = pool.wait_terminal(JobId(1), Duration::from_secs(5));
        assert_eq!(status, Some(JobStatus::Done(42)));
        assert_eq!(pool.phase(JobId(1)), Some(JobPhase::Done));
    }

    #[test]
    fn error_body_fails() {
        let pool: JobPool<u64> = JobPool::new(1);
        pool.submit(JobId(1), || Err("site melted".into()));
        let status = pool.wait_terminal(JobId(1), Duration::from_secs(5));
        assert_eq!(status, Some(JobStatus::Failed("site melted".into())));
    }

    #[test]
    fn panic_becomes_failed_and_pool_survives() {
        let pool: JobPool<u64> = JobPool::new(1);
        pool.submit(JobId(1), || panic!("boom"));
        let status = pool.wait_terminal(JobId(1), Duration::from_secs(5));
        match status {
            Some(JobStatus::Failed(msg)) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        // The worker that caught the panic still serves new jobs.
        pool.submit(JobId(2), || Ok(7));
        assert_eq!(
            pool.wait_terminal(JobId(2), Duration::from_secs(5)),
            Some(JobStatus::Done(7))
        );
    }

    #[test]
    fn cancel_queued_never_runs() {
        let pool: JobPool<u64> = JobPool::new(1);
        let (gate_body, gate) = gated_job(1);
        pool.submit(JobId(1), gate_body);
        // One worker is busy; the second job must be Queued.
        while pool.phase(JobId(1)) == Some(JobPhase::Queued) {
            std::thread::yield_now();
        }
        let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ran2 = Arc::clone(&ran);
        pool.submit(JobId(2), move || {
            ran2.store(true, std::sync::atomic::Ordering::SeqCst);
            Ok(2)
        });
        assert_eq!(pool.phase(JobId(2)), Some(JobPhase::Queued));
        assert!(pool.cancel(JobId(2)));
        assert_eq!(pool.phase(JobId(2)), Some(JobPhase::Cancelled));
        gate.send(()).unwrap();
        assert_eq!(
            pool.wait_terminal(JobId(1), Duration::from_secs(5)),
            Some(JobStatus::Done(1))
        );
        assert!(!ran.load(std::sync::atomic::Ordering::SeqCst));
        assert_eq!(pool.phase(JobId(2)), Some(JobPhase::Cancelled));
    }

    #[test]
    fn cancel_running_discards_the_result() {
        let pool: JobPool<u64> = JobPool::new(1);
        let (body, gate) = gated_job(9);
        pool.submit(JobId(1), body);
        while pool.phase(JobId(1)) != Some(JobPhase::Running) {
            std::thread::yield_now();
        }
        assert!(pool.cancel(JobId(1)));
        gate.send(()).unwrap();
        // The worker finishes the body but must not overwrite Cancelled.
        pool.submit(JobId(2), || Ok(2));
        pool.wait_terminal(JobId(2), Duration::from_secs(5));
        assert_eq!(pool.status(JobId(1)), Some(JobStatus::Cancelled));
    }

    #[test]
    fn cancel_after_terminal_is_a_noop() {
        let pool: JobPool<u64> = JobPool::new(1);
        pool.submit(JobId(1), || Ok(5));
        pool.wait_terminal(JobId(1), Duration::from_secs(5));
        assert!(!pool.cancel(JobId(1)));
        assert_eq!(pool.status(JobId(1)), Some(JobStatus::Done(5)));
        assert!(!pool.cancel(JobId(99)), "unknown ids cancel to false");
    }

    #[test]
    fn wait_timeout_returns_current_nonterminal_status() {
        let pool: JobPool<u64> = JobPool::new(1);
        let (body, gate) = gated_job(3);
        pool.submit(JobId(1), body);
        let status = pool.wait_terminal(JobId(1), Duration::from_millis(30));
        assert!(matches!(
            status,
            Some(JobStatus::Queued) | Some(JobStatus::Running)
        ));
        gate.send(()).unwrap();
        assert_eq!(
            pool.wait_terminal(JobId(1), Duration::from_secs(5)),
            Some(JobStatus::Done(3))
        );
    }

    #[test]
    fn workers_spawn_lazily_up_to_the_cap() {
        let pool: JobPool<u64> = JobPool::new(2);
        assert_eq!(pool.live_workers(), 0, "no threads before first submit");
        let (b1, g1) = gated_job(1);
        let (b2, g2) = gated_job(2);
        let (b3, g3) = gated_job(3);
        pool.submit(JobId(1), b1);
        pool.submit(JobId(2), b2);
        pool.submit(JobId(3), b3);
        assert!(pool.live_workers() <= 2, "cap respected");
        for g in [g1, g2, g3] {
            g.send(()).unwrap();
        }
        for id in [1, 2, 3] {
            assert!(matches!(
                pool.wait_terminal(JobId(id), Duration::from_secs(5)),
                Some(JobStatus::Done(_))
            ));
        }
    }

    #[test]
    fn take_done_moves_the_payload_and_forgets_the_job() {
        let pool: JobPool<u64> = JobPool::new(1);
        pool.submit(JobId(1), || Ok(11));
        pool.wait_terminal(JobId(1), Duration::from_secs(5));
        assert_eq!(pool.take_done(JobId(1)), Some(11));
        // Consumed: the pool no longer tracks the job at all.
        assert_eq!(pool.phase(JobId(1)), None);
        assert_eq!(pool.take_done(JobId(1)), None);
        // Non-Done jobs are left untouched.
        pool.submit(JobId(2), || Err("x".into()));
        pool.wait_terminal(JobId(2), Duration::from_secs(5));
        assert_eq!(pool.take_done(JobId(2)), None);
        assert_eq!(pool.phase(JobId(2)), Some(JobPhase::Failed));
        let (body, _gate) = gated_job(3);
        pool.submit(JobId(3), body);
        assert_eq!(pool.take_done(JobId(3)), None, "in-flight jobs stay");
        assert!(pool.phase(JobId(3)).is_some());
    }

    #[test]
    fn duplicate_id_panics() {
        let pool: JobPool<u64> = JobPool::new(1);
        pool.submit(JobId(7), || Ok(1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.submit(JobId(7), || Ok(2));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn drop_cancels_queued_jobs_without_hanging() {
        let pool: JobPool<u64> = JobPool::new(1);
        let (body, _gate) = gated_job(1); // never released
        pool.submit(JobId(1), body);
        while pool.phase(JobId(1)) != Some(JobPhase::Running) {
            std::thread::yield_now();
        }
        pool.submit(JobId(2), || Ok(2));
        // Dropping must return promptly even though job 1 is stuck in its
        // "remote call" forever; job 2 is resolved as Cancelled first.
        drop(pool);
    }

    #[test]
    fn unknown_ids_answer_none() {
        let pool: JobPool<u64> = JobPool::new(1);
        assert_eq!(pool.phase(JobId(1)), None);
        assert_eq!(pool.status(JobId(1)), None);
        assert_eq!(pool.wait_terminal(JobId(1), Duration::from_millis(1)), None);
    }

    #[test]
    fn max_workers_is_clamped_and_adjustable() {
        let pool: JobPool<u64> = JobPool::new(0);
        assert_eq!(pool.max_workers(), 1);
        pool.set_max_workers(8);
        assert_eq!(pool.max_workers(), 8);
        pool.set_max_workers(0);
        assert_eq!(pool.max_workers(), 1);
    }
}
