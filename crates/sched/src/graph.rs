//! The dependency DAG: payload-carrying nodes, edges, topological waves.
//!
//! A [`DepGraph`] is deliberately minimal: nodes are appended (never
//! removed), edges point from a prerequisite to its dependent, and the
//! single query that matters is [`DepGraph::waves`] — Kahn levelling
//! into antichains. Determinism is structural: node ids are insertion
//! order, every wave lists its nodes in ascending id order, and the
//! wave decomposition is a pure function of the edge set.

use std::collections::BTreeSet;
use std::fmt;

/// Index of a node in a [`DepGraph`] (insertion order, dense from 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The graph contains a dependency cycle: no wave decomposition exists.
/// Derivation nets are acyclic by construction, so hitting this means
/// the caller fed the scheduler corrupted metadata — the offending
/// nodes are listed so the caller can report *which* firings are stuck.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Nodes left with unsatisfied prerequisites after levelling.
    pub stuck: Vec<NodeId>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependency cycle: {} node(s) can never become ready ({})",
            self.stuck.len(),
            self.stuck
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for CycleError {}

/// A dependency DAG over payloads of type `P`.
#[derive(Debug, Clone)]
pub struct DepGraph<P> {
    payloads: Vec<P>,
    /// `dependents[i]` — nodes that must wait for node `i`.
    dependents: Vec<BTreeSet<usize>>,
    /// `prerequisites[i]` — nodes node `i` waits for.
    prerequisites: Vec<BTreeSet<usize>>,
}

impl<P> Default for DepGraph<P> {
    fn default() -> DepGraph<P> {
        DepGraph::new()
    }
}

impl<P> DepGraph<P> {
    /// An empty graph.
    pub fn new() -> DepGraph<P> {
        DepGraph {
            payloads: Vec::new(),
            dependents: Vec::new(),
            prerequisites: Vec::new(),
        }
    }

    /// Append a node; its id is the number of nodes added before it.
    pub fn add_node(&mut self, payload: P) -> NodeId {
        self.payloads.push(payload);
        self.dependents.push(BTreeSet::new());
        self.prerequisites.push(BTreeSet::new());
        NodeId(self.payloads.len() - 1)
    }

    /// Declare that `dependent` must run after `prerequisite`.
    /// Self-edges are rejected (a firing cannot feed itself); duplicate
    /// edges are idempotent.
    pub fn add_edge(&mut self, prerequisite: NodeId, dependent: NodeId) -> Result<(), CycleError> {
        if prerequisite == dependent {
            return Err(CycleError {
                stuck: vec![dependent],
            });
        }
        assert!(
            prerequisite.0 < self.payloads.len() && dependent.0 < self.payloads.len(),
            "edge references unknown node"
        );
        self.dependents[prerequisite.0].insert(dependent.0);
        self.prerequisites[dependent.0].insert(prerequisite.0);
        Ok(())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Payload of a node.
    pub fn payload(&self, id: NodeId) -> &P {
        &self.payloads[id.0]
    }

    /// Nodes that must run before `id`, in id order.
    pub fn prerequisites_of(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.prerequisites[id.0].iter().map(|i| NodeId(*i))
    }

    /// Nodes that wait for `id`, in id order.
    pub fn dependents_of(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.dependents[id.0].iter().map(|i| NodeId(*i))
    }

    /// Kahn levelling into waves: wave 0 holds every node without
    /// prerequisites; wave *k+1* holds every node whose last unfinished
    /// prerequisite sits in wave *k*. Nodes within a wave are mutually
    /// independent (no edge connects them) and listed in ascending id
    /// order, so executing waves front to back — and a wave's nodes in
    /// the returned order — is a deterministic topological execution.
    pub fn waves(&self) -> Result<Vec<Vec<NodeId>>, CycleError> {
        let n = self.payloads.len();
        let mut remaining: Vec<usize> = self.prerequisites.iter().map(|p| p.len()).collect();
        let mut done = 0usize;
        let mut waves: Vec<Vec<NodeId>> = Vec::new();
        let mut frontier: Vec<usize> = (0..n).filter(|i| remaining[*i] == 0).collect();
        while !frontier.is_empty() {
            done += frontier.len();
            let mut next: Vec<usize> = Vec::new();
            for i in &frontier {
                for dep in &self.dependents[*i] {
                    remaining[*dep] -= 1;
                    if remaining[*dep] == 0 {
                        next.push(*dep);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            waves.push(frontier.into_iter().map(NodeId).collect());
            frontier = next;
        }
        if done != n {
            return Err(CycleError {
                stuck: (0..n).filter(|i| remaining[*i] > 0).map(NodeId).collect(),
            });
        }
        Ok(waves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> DepGraph<usize> {
        let mut g = DepGraph::new();
        for i in 0..n {
            g.add_node(i);
        }
        for (a, b) in edges {
            g.add_edge(NodeId(*a), NodeId(*b)).unwrap();
        }
        g
    }

    fn ids(waves: &[Vec<NodeId>]) -> Vec<Vec<usize>> {
        waves
            .iter()
            .map(|w| w.iter().map(|n| n.0).collect())
            .collect()
    }

    #[test]
    fn empty_graph_has_no_waves() {
        let g: DepGraph<()> = DepGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.waves().unwrap(), Vec::<Vec<NodeId>>::new());
    }

    #[test]
    fn independent_nodes_form_one_wave() {
        let g = graph(4, &[]);
        assert_eq!(ids(&g.waves().unwrap()), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn diamond_levels_into_three_waves() {
        // 0 -> {1, 2} -> 3: the diamond must put 1 and 2 side by side.
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(ids(&g.waves().unwrap()), vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn chain_is_one_node_per_wave() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        assert_eq!(ids(&g.waves().unwrap()), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let g = graph(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(ids(&g.waves().unwrap()), vec![vec![0], vec![1]]);
    }

    #[test]
    fn self_edge_is_rejected() {
        let mut g = graph(1, &[]);
        assert!(g.add_edge(NodeId(0), NodeId(0)).is_err());
    }

    #[test]
    fn cycle_reports_the_stuck_nodes() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 1), (0, 3)]);
        let err = g.waves().unwrap_err();
        assert_eq!(err.stuck, vec![NodeId(1), NodeId(2)]);
        assert!(err.to_string().contains("n1"));
    }

    #[test]
    fn waves_are_deterministic_regardless_of_edge_insertion_order() {
        let a = graph(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]);
        let b = graph(5, &[(2, 4), (2, 3), (1, 2), (0, 2)]);
        assert_eq!(ids(&a.waves().unwrap()), ids(&b.waves().unwrap()));
        assert_eq!(
            ids(&a.waves().unwrap()),
            vec![vec![0, 1], vec![2], vec![3, 4]]
        );
    }
}
