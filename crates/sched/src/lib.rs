//! # gaea-sched — the derivation scheduler
//!
//! Gaea's §5 derivation plans are DAGs whose independent firings the
//! paper executes one at a time. This crate owns the two pieces the
//! kernel needs to execute them concurrently without knowing anything
//! about databases or templates:
//!
//! * [`DepGraph`] — an explicit dependency DAG over arbitrary payloads
//!   (in the kernel: one node per `(process, binding)` firing, one edge
//!   per output-feeds-input relationship), levelled into **waves** by
//!   [`DepGraph::waves`]: every node in wave *k* depends only on nodes
//!   in waves `< k`, so the nodes of one wave are mutually independent
//!   and may run in any order — or at the same time.
//! * [`Scheduler`] — a configurable `std::thread`-scoped worker pool
//!   whose only primitive is the deterministic [`Scheduler::map`]:
//!   results always come back in input order, whatever order the
//!   workers finished in. With one worker (the default, and what
//!   [`Scheduler::from_env`] yields unless `GAEA_SCHED_WORKERS` says
//!   otherwise) `map` degenerates to a plain in-order loop, so
//!   single-threaded mode is behaviourally identical to not having a
//!   scheduler at all.
//!
//! * [`JobPool`] — the asynchronous complement to the wave pool:
//!   long-lived background workers for firings that take minutes
//!   (§5 external sites), driven through a submit / poll / await /
//!   cancel surface with the `Queued → Running → Done | Failed |
//!   Cancelled` state machine. The kernel's `Gaea::submit_derivation`
//!   rides on it; the pool itself never touches the store — workers
//!   compute results, the owner commits them.
//!
//! The kernel drives the wave pieces together in a *prepare / commit* split:
//! for each wave it `map`s a read-only prepare step over the wave's
//! firings (workers share `&Database` / `&Catalog` snapshots) and then
//! commits the results serially, in node order, before the next wave's
//! bindings are resolved. Expensive template evaluation parallelizes;
//! only the cheap store/catalog writes serialize.

pub mod graph;
pub mod jobs;
pub mod pool;

pub use graph::{CycleError, DepGraph, NodeId};
pub use jobs::{JobId, JobPhase, JobPool, JobStatus, DEFAULT_JOB_WORKERS, JOB_WORKERS_ENV};
pub use pool::{parse_workers, Scheduler};

/// Environment variable consulted by [`Scheduler::from_env`]: the number
/// of workers the kernel's scheduler starts with (default 1, i.e. the
/// deterministic single-threaded mode).
pub const WORKERS_ENV: &str = "GAEA_SCHED_WORKERS";
