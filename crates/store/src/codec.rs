//! Binary encoding primitives for the WAL record codec.
//!
//! The kernel's event log moved from per-record `serde_json` envelopes
//! to a compact binary format (see `gaea-core`'s `wal_codec`); this
//! module is the byte-level substrate both sides share: LEB128 varints,
//! zigzag signed integers, fixed-width little-endian floats,
//! length-prefixed strings — plus full codecs for the store types that
//! dominate log payloads, [`Tuple`] and [`Value`] (raster buffers and
//! matrices encode as raw little-endian runs instead of JSON digit
//! arrays, which is where the bulk of the replay win comes from).
//!
//! Decoding is defensive throughout: every read is bounds-checked,
//! varints are capped at 10 bytes, and declared lengths are validated
//! against the remaining input before any allocation — a corrupt (but
//! CRC-valid, e.g. truncated-then-extended) record must fail with a
//! [`StoreError::Codec`], never a panic or an absurd allocation.

use crate::error::{StoreError, StoreResult};
use crate::tuple::Tuple;
use gaea_adt::{AbsTime, GeoBox, Image, Matrix, PixType, PixelBuffer, Value, VectorD};

fn err(msg: impl Into<String>) -> StoreError {
    StoreError::Codec(msg.into())
}

// ----------------------------------------------------------------------
// Encoder
// ----------------------------------------------------------------------

/// Append-only binary encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh encoder with a capacity hint.
    pub fn with_capacity(cap: usize) -> Enc {
        Enc {
            buf: Vec::with_capacity(cap),
        }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One raw byte (format/tag bytes).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// LEB128 unsigned varint: ≤ 1 byte for values < 128, which covers
    /// most sequence deltas, arities and tags in practice.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-mapped signed varint (small magnitudes of either sign
    /// stay short).
    pub fn svarint(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Fixed 4-byte little-endian float.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Fixed 8-byte little-endian float.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

// ----------------------------------------------------------------------
// Decoder
// ----------------------------------------------------------------------

/// Bounds-checked binary decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Every byte consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> StoreResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(err(format!(
                "binary record truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// LEB128 unsigned varint (rejects encodings past 10 bytes, and a
    /// 10th byte carrying bits beyond bit 63 — an overflowing value
    /// must fail loudly, not silently drop its high bits).
    pub fn varint(&mut self) -> StoreResult<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte & 0x7E != 0) {
                return Err(err("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Zigzag-mapped signed varint.
    pub fn svarint(&mut self) -> StoreResult<i64> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// A declared element count, validated against the bytes actually
    /// left (`min_bytes` = smallest possible encoding per element) so a
    /// corrupt length can never drive a huge allocation.
    pub fn len(&mut self, min_bytes: usize) -> StoreResult<usize> {
        let n = self.varint()?;
        let need = (n as u128) * (min_bytes.max(1) as u128);
        if need > self.remaining() as u128 {
            return Err(err(format!(
                "declared length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Fixed 4-byte little-endian float.
    pub fn f32(&mut self) -> StoreResult<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Fixed 8-byte little-endian float.
    pub fn f64(&mut self) -> StoreResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> StoreResult<&'a [u8]> {
        let n = self.len(1)?;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> StoreResult<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|e| err(format!("invalid UTF-8 in record: {e}")))
    }
}

// ----------------------------------------------------------------------
// Value / Tuple codec
// ----------------------------------------------------------------------

const V_NULL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT2: u8 = 2;
const V_INT4: u8 = 3;
const V_FLOAT4: u8 = 4;
const V_FLOAT8: u8 = 5;
const V_CHAR16: u8 = 6;
const V_TEXT: u8 = 7;
const V_ABSTIME: u8 = 8;
const V_GEOBOX: u8 = 9;
const V_IMAGE: u8 = 10;
const V_MATRIX: u8 = 11;
const V_VECTOR: u8 = 12;
const V_OBJREF: u8 = 13;
const V_SET: u8 = 14;

fn pixtype_tag(pt: PixType) -> u8 {
    match pt {
        PixType::Char => 0,
        PixType::Int2 => 1,
        PixType::Int4 => 2,
        PixType::Float4 => 3,
        PixType::Float8 => 4,
    }
}

fn pixtype_from_tag(tag: u8) -> StoreResult<PixType> {
    Ok(match tag {
        0 => PixType::Char,
        1 => PixType::Int2,
        2 => PixType::Int4,
        3 => PixType::Float4,
        4 => PixType::Float8,
        other => return Err(err(format!("unknown pixel-type tag {other}"))),
    })
}

/// Encode one [`Value`]: a variant tag byte followed by the payload.
/// Bulk numeric payloads (image buffers, matrices, vectors) are raw
/// little-endian runs — the binary codec's main advantage over JSON's
/// per-digit rendering.
pub fn encode_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(V_NULL),
        Value::Bool(b) => {
            e.u8(V_BOOL);
            e.u8(u8::from(*b));
        }
        Value::Int2(n) => {
            e.u8(V_INT2);
            e.svarint(i64::from(*n));
        }
        Value::Int4(n) => {
            e.u8(V_INT4);
            e.svarint(i64::from(*n));
        }
        Value::Float4(f) => {
            e.u8(V_FLOAT4);
            e.f32(*f);
        }
        Value::Float8(f) => {
            e.u8(V_FLOAT8);
            e.f64(*f);
        }
        Value::Char16(s) => {
            e.u8(V_CHAR16);
            e.str(s);
        }
        Value::Text(s) => {
            e.u8(V_TEXT);
            e.str(s);
        }
        Value::AbsTime(t) => {
            e.u8(V_ABSTIME);
            e.svarint(t.0);
        }
        Value::GeoBox(b) => {
            e.u8(V_GEOBOX);
            e.f64(b.xmin);
            e.f64(b.ymin);
            e.f64(b.xmax);
            e.f64(b.ymax);
        }
        Value::Image(img) => {
            e.u8(V_IMAGE);
            e.varint(u64::from(img.nrow()));
            e.varint(u64::from(img.ncol()));
            e.u8(pixtype_tag(img.pixtype()));
            match img.buffer() {
                PixelBuffer::U8(d) => e.buf.extend_from_slice(d),
                PixelBuffer::I16(d) => d
                    .iter()
                    .for_each(|x| e.buf.extend_from_slice(&x.to_le_bytes())),
                PixelBuffer::I32(d) => d
                    .iter()
                    .for_each(|x| e.buf.extend_from_slice(&x.to_le_bytes())),
                PixelBuffer::F32(d) => d
                    .iter()
                    .for_each(|x| e.buf.extend_from_slice(&x.to_le_bytes())),
                PixelBuffer::F64(d) => d
                    .iter()
                    .for_each(|x| e.buf.extend_from_slice(&x.to_le_bytes())),
            }
        }
        Value::Matrix(m) => {
            e.u8(V_MATRIX);
            e.varint(m.rows() as u64);
            e.varint(m.cols() as u64);
            m.data().iter().for_each(|x| e.f64(*x));
        }
        Value::Vector(v) => {
            e.u8(V_VECTOR);
            e.varint(v.data().len() as u64);
            v.data().iter().for_each(|x| e.f64(*x));
        }
        Value::ObjRef(oid) => {
            e.u8(V_OBJREF);
            e.varint(*oid);
        }
        Value::Set(items) => {
            e.u8(V_SET);
            e.varint(items.len() as u64);
            for item in items {
                encode_value(e, item);
            }
        }
    }
}

/// Decode one [`Value`] written by [`encode_value`].
pub fn decode_value(d: &mut Dec<'_>) -> StoreResult<Value> {
    Ok(match d.u8()? {
        V_NULL => Value::Null,
        V_BOOL => Value::Bool(d.u8()? != 0),
        V_INT2 => {
            Value::Int2(i16::try_from(d.svarint()?).map_err(|_| err("int2 value out of range"))?)
        }
        V_INT4 => {
            Value::Int4(i32::try_from(d.svarint()?).map_err(|_| err("int4 value out of range"))?)
        }
        V_FLOAT4 => Value::Float4(d.f32()?),
        V_FLOAT8 => Value::Float8(d.f64()?),
        V_CHAR16 => Value::Char16(d.str()?),
        V_TEXT => Value::Text(d.str()?),
        V_ABSTIME => Value::AbsTime(AbsTime(d.svarint()?)),
        V_GEOBOX => Value::GeoBox(GeoBox {
            xmin: d.f64()?,
            ymin: d.f64()?,
            xmax: d.f64()?,
            ymax: d.f64()?,
        }),
        V_IMAGE => {
            let nrow = u32::try_from(d.varint()?).map_err(|_| err("image nrow out of range"))?;
            let ncol = u32::try_from(d.varint()?).map_err(|_| err("image ncol out of range"))?;
            let pt = pixtype_from_tag(d.u8()?)?;
            let n = (nrow as usize)
                .checked_mul(ncol as usize)
                .ok_or_else(|| err("image shape overflows"))?;
            let width = match pt {
                PixType::Char => 1,
                PixType::Int2 => 2,
                PixType::Int4 | PixType::Float4 => 4,
                PixType::Float8 => 8,
            };
            // The byte size needs its own checked multiply: a pixel
            // count that survives `nrow * ncol` can still overflow
            // `n * width`, which must read as corruption — not a
            // wrapped-to-small value that passes the remaining check.
            if n.checked_mul(width).is_none_or(|b| b > d.remaining()) {
                return Err(err("image payload truncated"));
            }
            let buf = match pt {
                PixType::Char => PixelBuffer::U8(d.take(n)?.to_vec()),
                PixType::Int2 => PixelBuffer::I16(
                    d.take(n * 2)?
                        .chunks_exact(2)
                        .map(|c| i16::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                ),
                PixType::Int4 => PixelBuffer::I32(
                    d.take(n * 4)?
                        .chunks_exact(4)
                        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                ),
                PixType::Float4 => PixelBuffer::F32(
                    d.take(n * 4)?
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                ),
                PixType::Float8 => PixelBuffer::F64(
                    d.take(n * 8)?
                        .chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                ),
            };
            Value::image(Image::new(nrow, ncol, buf).map_err(|e| err(e.to_string()))?)
        }
        V_MATRIX => {
            let rows = d.varint()? as usize;
            let cols = d.varint()? as usize;
            let n = rows
                .checked_mul(cols)
                .filter(|n| n.checked_mul(8).is_some_and(|b| b <= d.remaining()))
                .ok_or_else(|| err("matrix payload truncated"))?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(d.f64()?);
            }
            Value::matrix(Matrix::from_rows(rows, cols, data).map_err(|e| err(e.to_string()))?)
        }
        V_VECTOR => {
            let n = d.len(8)?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(d.f64()?);
            }
            Value::vector(VectorD::new(data))
        }
        V_OBJREF => Value::ObjRef(d.varint()?),
        V_SET => {
            let n = d.len(1)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(d)?);
            }
            Value::Set(items)
        }
        other => return Err(err(format!("unknown value tag {other}"))),
    })
}

/// Encode a [`Tuple`] as arity + values.
pub fn encode_tuple(e: &mut Enc, t: &Tuple) {
    e.varint(t.arity() as u64);
    for v in t.values() {
        encode_value(e, v);
    }
}

/// Decode a [`Tuple`] written by [`encode_tuple`].
pub fn decode_tuple(d: &mut Dec<'_>) -> StoreResult<Tuple> {
    let n = d.len(1)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_value(d)?);
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let mut e = Enc::default();
        encode_value(&mut e, &v);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(decode_value(&mut d).unwrap(), v);
        assert!(d.is_empty(), "decoder must consume exactly what it wrote");
    }

    #[test]
    fn every_value_variant_round_trips() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Int2(-1234));
        round_trip(Value::Int4(i32::MIN));
        round_trip(Value::Float4(3.25));
        round_trip(Value::Float8(-0.0));
        round_trip(Value::Char16("L7-scene".into()));
        round_trip(Value::Text("αβγ — utf8 survives".into()));
        round_trip(Value::AbsTime(AbsTime(-86_400)));
        round_trip(Value::GeoBox(GeoBox::new(-20.0, -35.0, 55.0, 38.0)));
        round_trip(Value::image(Image::from_f64(2, 3, vec![0.5; 6]).unwrap()));
        round_trip(Value::image(
            Image::new(1, 4, PixelBuffer::I16(vec![-5, 0, 7, 32_000])).unwrap(),
        ));
        round_trip(Value::matrix(
            Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
        ));
        round_trip(Value::vector(VectorD::new(vec![0.25, -9.5])));
        round_trip(Value::ObjRef(u64::MAX));
        round_trip(Value::Set(vec![
            Value::Int4(1),
            Value::Set(vec![Value::Text("nested".into())]),
        ]));
    }

    #[test]
    fn tuples_round_trip_and_varints_cover_the_range() {
        let t = Tuple::new(vec![Value::Int4(7), Value::Text("x".into()), Value::Null]);
        let mut e = Enc::default();
        encode_tuple(&mut e, &t);
        let bytes = e.into_bytes();
        assert_eq!(decode_tuple(&mut Dec::new(&bytes)).unwrap(), t);

        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut e = Enc::default();
            e.varint(v);
            let bytes = e.into_bytes();
            assert_eq!(Dec::new(&bytes).varint().unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            let mut e = Enc::default();
            e.svarint(v);
            let bytes = e.into_bytes();
            assert_eq!(Dec::new(&bytes).svarint().unwrap(), v);
        }
    }

    #[test]
    fn corrupt_input_errors_instead_of_panicking() {
        // Truncated payloads, absurd lengths, unknown tags.
        assert!(decode_value(&mut Dec::new(&[])).is_err());
        assert!(decode_value(&mut Dec::new(&[99])).is_err());
        assert!(decode_value(&mut Dec::new(&[V_FLOAT8, 1, 2])).is_err());
        // Declared string length far past the buffer.
        assert!(decode_value(&mut Dec::new(&[V_TEXT, 0xFF, 0xFF, 0xFF, 0x7F, b'a'])).is_err());
        // A varint that never terminates within 10 bytes.
        let unterminated = [0x80u8; 11];
        assert!(Dec::new(&unterminated).varint().is_err());
    }

    #[test]
    fn overflowing_varint_is_rejected_not_wrapped() {
        // u64::MAX is the largest legal 10-byte encoding: nine 0xFF
        // continuation bytes plus a final 0x01.
        let max = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert_eq!(Dec::new(&max).varint().unwrap(), u64::MAX);
        // Any other bit in the 10th byte lands past bit 63 — decoding
        // must error, not silently discard the overflow.
        for last in [0x02u8, 0x03, 0x7E, 0x7F] {
            let over = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, last];
            assert!(
                Dec::new(&over).varint().is_err(),
                "10th byte {last:#04x} overflows u64 and must be rejected"
            );
        }
    }

    #[test]
    fn huge_declared_shapes_error_instead_of_overflowing_the_byte_size() {
        // Matrix: rows * cols fits usize but n * 8 wraps past u64 —
        // must be a codec error, never a panic or absurd allocation.
        let mut e = Enc::default();
        e.u8(V_MATRIX);
        e.varint(1u64 << 61);
        e.varint(1);
        assert!(decode_value(&mut Dec::new(&e.into_bytes())).is_err());
        // Image: u32::MAX² pixels survives the count multiply, but the
        // 8-byte-per-pixel Float8 byte size wraps.
        let mut e = Enc::default();
        e.u8(V_IMAGE);
        e.varint(u64::from(u32::MAX));
        e.varint(u64::from(u32::MAX));
        e.u8(4); // Float8
        assert!(decode_value(&mut Dec::new(&e.into_bytes())).is_err());
    }
}
