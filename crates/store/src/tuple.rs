//! Tuples: ordered value lists stored in heaps.

use gaea_adt::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered list of values; validated against a
/// [`crate::schema::Schema`] on insert/update.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Wrap values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field by position (panics out of range, like slice indexing).
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Field by position, checked.
    pub fn try_get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Replace field `i`, returning the old value.
    pub fn replace(&mut self, i: usize, v: Value) -> Value {
        std::mem::replace(&mut self.values[i], v)
    }

    /// Consume into values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Tuple {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_and_replace() {
        let mut t = Tuple::new(vec![Value::Int4(1), Value::Text("x".into())]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), &Value::Int4(1));
        assert_eq!(t.try_get(5), None);
        let old = t.replace(0, Value::Int4(9));
        assert_eq!(old, Value::Int4(1));
        assert_eq!(t.get(0), &Value::Int4(9));
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::Int4(1), Value::Bool(true)]);
        assert_eq!(t.to_string(), "(1, true)");
    }
}
