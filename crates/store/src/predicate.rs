//! Scan predicates.
//!
//! The retrieval step of the query mechanism (§2.1.5 step 1, "direct data
//! retrieval from the non-primitive classes") filters class extensions on
//! attribute values and on spatio-temporal overlap — "retrieval of the
//! proper Landsat TM spatio-temporal objects" means an extent-overlap scan.

use crate::error::StoreResult;
use crate::schema::Schema;
use crate::tuple::Tuple;
use gaea_adt::{GeoBox, TimeRange, Value};
use serde::{Deserialize, Serialize};

/// A predicate over tuples of one relation, resolved against its schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (full scan).
    True,
    /// Column equals a constant (value identity).
    Eq(String, Value),
    /// Column is not null.
    NotNull(String),
    /// Numeric/orderable comparison: column < constant.
    Lt(String, Value),
    /// Numeric/orderable comparison: column > constant.
    Gt(String, Value),
    /// Spatial column (box) intersects the given box.
    BoxOverlaps(String, GeoBox),
    /// Temporal column (abstime) falls inside the given range.
    TimeIn(String, TimeRange),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate against a tuple. Column resolution errors surface as
    /// `Err`, never as silent false.
    pub fn matches(&self, schema: &Schema, tuple: &Tuple) -> StoreResult<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(col, v) => tuple.get(schema.position(col)?) == v,
            Predicate::NotNull(col) => !tuple.get(schema.position(col)?).is_null(),
            Predicate::Lt(col, v) => {
                let field = tuple.get(schema.position(col)?);
                !field.is_null() && field < v
            }
            Predicate::Gt(col, v) => {
                let field = tuple.get(schema.position(col)?);
                !field.is_null() && field > v
            }
            Predicate::BoxOverlaps(col, query) => {
                match tuple.get(schema.position(col)?).as_geobox() {
                    Some(b) => b.intersects(query),
                    None => false,
                }
            }
            Predicate::TimeIn(col, range) => match tuple.get(schema.position(col)?).as_abstime() {
                Some(t) => range.contains(t),
                None => false,
            },
            Predicate::And(a, b) => a.matches(schema, tuple)? && b.matches(schema, tuple)?,
            Predicate::Or(a, b) => a.matches(schema, tuple)? || b.matches(schema, tuple)?,
            Predicate::Not(p) => !p.matches(schema, tuple)?,
        })
    }

    /// Resolve every column name against `schema` once, producing a
    /// position-bound form whose evaluation is infallible and does no
    /// string lookups. Scans compile a predicate once and evaluate the
    /// compiled form per tuple.
    pub fn compile(&self, schema: &Schema) -> StoreResult<CompiledPredicate> {
        Ok(match self {
            Predicate::True => CompiledPredicate::True,
            Predicate::Eq(col, v) => CompiledPredicate::Eq(schema.position(col)?, v.clone()),
            Predicate::NotNull(col) => CompiledPredicate::NotNull(schema.position(col)?),
            Predicate::Lt(col, v) => CompiledPredicate::Lt(schema.position(col)?, v.clone()),
            Predicate::Gt(col, v) => CompiledPredicate::Gt(schema.position(col)?, v.clone()),
            Predicate::BoxOverlaps(col, b) => {
                CompiledPredicate::BoxOverlaps(schema.position(col)?, *b)
            }
            Predicate::TimeIn(col, r) => CompiledPredicate::TimeIn(schema.position(col)?, *r),
            Predicate::And(a, b) => {
                CompiledPredicate::And(Box::new(a.compile(schema)?), Box::new(b.compile(schema)?))
            }
            Predicate::Or(a, b) => {
                CompiledPredicate::Or(Box::new(a.compile(schema)?), Box::new(b.compile(schema)?))
            }
            Predicate::Not(p) => CompiledPredicate::Not(Box::new(p.compile(schema)?)),
        })
    }

    /// Flatten the top-level conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a Predicate, out: &mut Vec<&'a Predicate>) {
            match p {
                Predicate::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Predicate::True => {}
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }
}

/// A [`Predicate`] with every column name pre-resolved to its schema
/// position. Evaluation is infallible (column resolution errors were
/// surfaced at compile time) and touches no strings.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledPredicate {
    /// Always true (full scan).
    True,
    /// Column position equals a constant.
    Eq(usize, Value),
    /// Column position is not null.
    NotNull(usize),
    /// Column position < constant (nulls never match).
    Lt(usize, Value),
    /// Column position > constant (nulls never match).
    Gt(usize, Value),
    /// Box column intersects the given box.
    BoxOverlaps(usize, GeoBox),
    /// Abstime column falls inside the range.
    TimeIn(usize, TimeRange),
    /// Conjunction.
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Disjunction.
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Negation.
    Not(Box<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Evaluate against a tuple of the schema this was compiled for.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        match self {
            CompiledPredicate::True => true,
            CompiledPredicate::Eq(pos, v) => tuple.get(*pos) == v,
            CompiledPredicate::NotNull(pos) => !tuple.get(*pos).is_null(),
            CompiledPredicate::Lt(pos, v) => {
                let field = tuple.get(*pos);
                !field.is_null() && field < v
            }
            CompiledPredicate::Gt(pos, v) => {
                let field = tuple.get(*pos);
                !field.is_null() && field > v
            }
            CompiledPredicate::BoxOverlaps(pos, query) => match tuple.get(*pos).as_geobox() {
                Some(b) => b.intersects(query),
                None => false,
            },
            CompiledPredicate::TimeIn(pos, range) => match tuple.get(*pos).as_abstime() {
                Some(t) => range.contains(t),
                None => false,
            },
            CompiledPredicate::And(a, b) => a.matches(tuple) && b.matches(tuple),
            CompiledPredicate::Or(a, b) => a.matches(tuple) || b.matches(tuple),
            CompiledPredicate::Not(p) => !p.matches(tuple),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use gaea_adt::{AbsTime, TypeTag};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("area", TypeTag::Char16),
            Field::required("spatialextent", TypeTag::GeoBox),
            Field::required("timestamp", TypeTag::AbsTime),
            Field::optional("numclass", TypeTag::Int4),
        ])
        .unwrap()
    }

    fn tuple() -> Tuple {
        Tuple::new(vec![
            Value::Char16("africa".into()),
            Value::GeoBox(GeoBox::new(-20.0, -35.0, 55.0, 38.0)),
            Value::AbsTime(AbsTime::from_ymd(1986, 1, 15).unwrap()),
            Value::Null,
        ])
    }

    #[test]
    fn eq_and_notnull() {
        let s = schema();
        let t = tuple();
        assert!(Predicate::Eq("area".into(), Value::Char16("africa".into()))
            .matches(&s, &t)
            .unwrap());
        assert!(!Predicate::Eq("area".into(), Value::Char16("asia".into()))
            .matches(&s, &t)
            .unwrap());
        assert!(!Predicate::NotNull("numclass".into())
            .matches(&s, &t)
            .unwrap());
        assert!(Predicate::NotNull("area".into()).matches(&s, &t).unwrap());
    }

    #[test]
    fn spatial_overlap() {
        let s = schema();
        let t = tuple();
        // Sahara window overlaps Africa.
        let sahara = GeoBox::new(-15.0, 15.0, 35.0, 32.0);
        assert!(Predicate::BoxOverlaps("spatialextent".into(), sahara)
            .matches(&s, &t)
            .unwrap());
        let amazon = GeoBox::new(-75.0, -15.0, -50.0, 5.0);
        assert!(!Predicate::BoxOverlaps("spatialextent".into(), amazon)
            .matches(&s, &t)
            .unwrap());
        // Non-box column never overlaps.
        assert!(!Predicate::BoxOverlaps("area".into(), sahara)
            .matches(&s, &t)
            .unwrap());
    }

    #[test]
    fn temporal_window() {
        let s = schema();
        let t = tuple();
        let jan86 = TimeRange::new(
            AbsTime::from_ymd(1986, 1, 1).unwrap(),
            AbsTime::from_ymd(1986, 1, 31).unwrap(),
        );
        assert!(Predicate::TimeIn("timestamp".into(), jan86)
            .matches(&s, &t)
            .unwrap());
        let y1987 = TimeRange::new(
            AbsTime::from_ymd(1987, 1, 1).unwrap(),
            AbsTime::from_ymd(1987, 12, 31).unwrap(),
        );
        assert!(!Predicate::TimeIn("timestamp".into(), y1987)
            .matches(&s, &t)
            .unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let t = tuple();
        let p = Predicate::Eq("area".into(), Value::Char16("africa".into()))
            .and(Predicate::NotNull("numclass".into()));
        assert!(!p.matches(&s, &t).unwrap());
        let q = Predicate::Eq("area".into(), Value::Char16("africa".into()))
            .or(Predicate::NotNull("numclass".into()));
        assert!(q.matches(&s, &t).unwrap());
        assert!(!q.clone().negate().matches(&s, &t).unwrap());
    }

    #[test]
    fn lt_gt_ignore_null() {
        let s = schema();
        let mut t = tuple();
        assert!(!Predicate::Lt("numclass".into(), Value::Int4(100))
            .matches(&s, &t)
            .unwrap());
        t.replace(3, Value::Int4(12));
        assert!(Predicate::Lt("numclass".into(), Value::Int4(100))
            .matches(&s, &t)
            .unwrap());
        assert!(Predicate::Gt("numclass".into(), Value::Int4(5))
            .matches(&s, &t)
            .unwrap());
    }

    #[test]
    fn missing_column_is_error() {
        let s = schema();
        let t = tuple();
        assert!(Predicate::Eq("no_such".into(), Value::Int4(0))
            .matches(&s, &t)
            .is_err());
    }

    #[test]
    fn compiled_agrees_with_interpreted() {
        let s = schema();
        let t = tuple();
        let sahara = GeoBox::new(-15.0, 15.0, 35.0, 32.0);
        let jan86 = TimeRange::new(
            AbsTime::from_ymd(1986, 1, 1).unwrap(),
            AbsTime::from_ymd(1986, 1, 31).unwrap(),
        );
        let preds = vec![
            Predicate::True,
            Predicate::Eq("area".into(), Value::Char16("africa".into())),
            Predicate::Eq("area".into(), Value::Char16("asia".into())),
            Predicate::NotNull("numclass".into()),
            Predicate::Lt("numclass".into(), Value::Int4(100)),
            Predicate::Gt("numclass".into(), Value::Int4(5)),
            Predicate::BoxOverlaps("spatialextent".into(), sahara),
            Predicate::BoxOverlaps("area".into(), sahara),
            Predicate::TimeIn("timestamp".into(), jan86),
            Predicate::Eq("area".into(), Value::Char16("africa".into()))
                .and(Predicate::NotNull("numclass".into())),
            Predicate::Eq("area".into(), Value::Char16("africa".into()))
                .or(Predicate::NotNull("numclass".into())),
            Predicate::NotNull("numclass".into()).negate(),
        ];
        for p in preds {
            let compiled = p.compile(&s).unwrap();
            assert_eq!(
                compiled.matches(&t),
                p.matches(&s, &t).unwrap(),
                "compiled and interpreted forms disagree on {p:?}"
            );
        }
    }

    #[test]
    fn compile_surfaces_missing_columns() {
        let s = schema();
        assert!(Predicate::Eq("no_such".into(), Value::Int4(0))
            .compile(&s)
            .is_err());
        assert!(Predicate::True
            .and(Predicate::NotNull("no_such".into()))
            .compile(&s)
            .is_err());
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let p = Predicate::Eq("a".into(), Value::Int4(1))
            .and(Predicate::NotNull("b".into()).and(Predicate::True));
        let cs = p.conjuncts();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], &Predicate::Eq("a".into(), Value::Int4(1)));
        assert_eq!(cs[1], &Predicate::NotNull("b".into()));
        // Or is opaque: kept whole.
        let q = Predicate::True.or(Predicate::NotNull("b".into()));
        assert_eq!(q.conjuncts().len(), 1);
    }
}
