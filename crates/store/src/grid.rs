//! Uniform-grid spatial index.
//!
//! Partitions the plane into square cells of a fixed size and registers
//! each tuple's GeoBox extent in every cell it overlaps, so a
//! `WITHIN(a,b,c,d)` window probes a handful of cells instead of testing
//! every extent in the relation. Boxes spanning more than
//! [`OVERSIZE_CELLS`] cells (continental mosaics in a grid tuned for
//! scenes) go on an oversize list that every probe includes — this keeps
//! insert cost bounded while staying exact, because probes are always
//! re-filtered by the real intersection predicate.
//!
//! Like [`crate::index::OrderedIndex`], the cell map is skip-serialized
//! (JSON keys must be strings) and rebuilt from the heap on snapshot
//! load; only the indexed column and cell size persist.

use crate::oid::Oid;
use gaea_adt::GeoBox;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Boxes overlapping more than this many cells go on the oversize list.
pub const OVERSIZE_CELLS: usize = 64;

/// Uniform spatial grid: cell coordinate → OIDs of extents overlapping it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridIndex {
    /// Indexed (GeoBox) column position in the relation schema.
    pub column: usize,
    /// Cell edge length in the coordinate units of the indexed extents.
    pub cell: f64,
    #[serde(skip)]
    cells: BTreeMap<(i64, i64), Vec<Oid>>,
    #[serde(skip)]
    oversize: Vec<Oid>,
}

impl GridIndex {
    /// Empty grid over a column with the given cell size (clamped to a
    /// small positive minimum to keep cell math finite).
    pub fn new(column: usize, cell: f64) -> GridIndex {
        GridIndex {
            column,
            cell: if cell.is_finite() && cell > 1e-9 {
                cell
            } else {
                1.0
            },
            cells: BTreeMap::new(),
            oversize: Vec::new(),
        }
    }

    fn cell_span(&self, b: &GeoBox) -> ((i64, i64), (i64, i64)) {
        let lo = (
            (b.xmin / self.cell).floor() as i64,
            (b.ymin / self.cell).floor() as i64,
        );
        let hi = (
            (b.xmax / self.cell).floor() as i64,
            (b.ymax / self.cell).floor() as i64,
        );
        (lo, hi)
    }

    fn span_cells(lo: (i64, i64), hi: (i64, i64)) -> usize {
        let dx = hi.0.saturating_sub(lo.0).saturating_add(1).max(0) as u128;
        let dy = hi.1.saturating_sub(lo.1).saturating_add(1).max(0) as u128;
        dx.saturating_mul(dy).min(usize::MAX as u128) as usize
    }

    /// Register an extent.
    pub fn insert(&mut self, b: &GeoBox, oid: Oid) {
        let (lo, hi) = self.cell_span(b);
        if Self::span_cells(lo, hi) > OVERSIZE_CELLS {
            self.oversize.push(oid);
            return;
        }
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                self.cells.entry((cx, cy)).or_default().push(oid);
            }
        }
    }

    /// Unregister an extent (must match the box it was inserted under).
    pub fn remove(&mut self, b: &GeoBox, oid: Oid) {
        let (lo, hi) = self.cell_span(b);
        if Self::span_cells(lo, hi) > OVERSIZE_CELLS {
            self.oversize.retain(|o| *o != oid);
            return;
        }
        for cx in lo.0..=hi.0 {
            for cy in lo.1..=hi.1 {
                if let Some(oids) = self.cells.get_mut(&(cx, cy)) {
                    oids.retain(|o| *o != oid);
                    if oids.is_empty() {
                        self.cells.remove(&(cx, cy));
                    }
                }
            }
        }
    }

    /// Candidate OIDs whose extents may intersect `window`: every OID in
    /// an overlapped cell plus the whole oversize list, sorted and
    /// deduplicated. Callers must re-check the real intersection — a
    /// candidate may only share a cell, not actually overlap.
    pub fn probe(&self, window: &GeoBox) -> Vec<Oid> {
        let (lo, hi) = self.cell_span(window);
        let mut out: Vec<Oid> = Vec::new();
        if Self::span_cells(lo, hi) > self.cells.len().max(1) {
            // Window covers more cells than are occupied: walk the map.
            for (&(cx, cy), oids) in &self.cells {
                if cx >= lo.0 && cx <= hi.0 && cy >= lo.1 && cy <= hi.1 {
                    out.extend_from_slice(oids);
                }
            }
        } else {
            for cx in lo.0..=hi.0 {
                for cy in lo.1..=hi.1 {
                    if let Some(oids) = self.cells.get(&(cx, cy)) {
                        out.extend_from_slice(oids);
                    }
                }
            }
        }
        out.extend_from_slice(&self.oversize);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Cheap upper bound on `probe(window).len()` for costing (counts
    /// duplicates across cells rather than deduplicating).
    pub fn probe_estimate(&self, window: &GeoBox) -> usize {
        let (lo, hi) = self.cell_span(window);
        let mut n = self.oversize.len();
        if Self::span_cells(lo, hi) > self.cells.len().max(1) {
            for (&(cx, cy), oids) in &self.cells {
                if cx >= lo.0 && cx <= hi.0 && cy >= lo.1 && cy <= hi.1 {
                    n += oids.len();
                }
            }
        } else {
            for cx in lo.0..=hi.0 {
                for cy in lo.1..=hi.1 {
                    n += self.cells.get(&(cx, cy)).map_or(0, Vec::len);
                }
            }
        }
        n
    }

    /// Number of registered extents currently on the oversize list.
    pub fn oversize_len(&self) -> usize {
        self.oversize.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty() && self.oversize.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> GeoBox {
        GeoBox::new(xmin, ymin, xmax, ymax)
    }

    #[test]
    fn probe_finds_overlapping_and_misses_distant() {
        let mut g = GridIndex::new(0, 10.0);
        g.insert(&b(0.0, 0.0, 5.0, 5.0), Oid(1));
        g.insert(&b(100.0, 100.0, 105.0, 105.0), Oid(2));
        assert_eq!(g.probe(&b(1.0, 1.0, 2.0, 2.0)), vec![Oid(1)]);
        assert_eq!(g.probe(&b(101.0, 101.0, 102.0, 102.0)), vec![Oid(2)]);
        assert!(g.probe(&b(50.0, 50.0, 51.0, 51.0)).is_empty());
    }

    #[test]
    fn multi_cell_boxes_dedup() {
        let mut g = GridIndex::new(0, 10.0);
        // Spans 4 cells.
        g.insert(&b(5.0, 5.0, 15.0, 15.0), Oid(1));
        let hits = g.probe(&b(0.0, 0.0, 20.0, 20.0));
        assert_eq!(hits, vec![Oid(1)]);
    }

    #[test]
    fn oversize_boxes_always_candidates() {
        let mut g = GridIndex::new(0, 1.0);
        // 1000×1000 cells: far over the limit.
        g.insert(&b(0.0, 0.0, 1000.0, 1000.0), Oid(1));
        assert_eq!(g.oversize_len(), 1);
        assert_eq!(g.probe(&b(5000.0, 5000.0, 5001.0, 5001.0)), vec![Oid(1)]);
        g.remove(&b(0.0, 0.0, 1000.0, 1000.0), Oid(1));
        assert!(g.is_empty());
    }

    #[test]
    fn remove_clears_all_cells() {
        let mut g = GridIndex::new(0, 10.0);
        g.insert(&b(5.0, 5.0, 15.0, 15.0), Oid(1));
        g.remove(&b(5.0, 5.0, 15.0, 15.0), Oid(1));
        assert!(g.is_empty());
        assert!(g.probe(&b(0.0, 0.0, 20.0, 20.0)).is_empty());
    }

    #[test]
    fn huge_windows_walk_occupied_cells() {
        let mut g = GridIndex::new(0, 1.0);
        g.insert(&b(3.5, 3.5, 3.6, 3.6), Oid(7));
        // Window spans billions of cells; probe must not iterate them.
        let hits = g.probe(&b(-1.0e9, -1.0e9, 1.0e9, 1.0e9));
        assert_eq!(hits, vec![Oid(7)]);
        assert!(g.probe_estimate(&b(-1.0e9, -1.0e9, 1.0e9, 1.0e9)) >= 1);
    }

    #[test]
    fn degenerate_cell_size_clamped() {
        let g = GridIndex::new(0, 0.0);
        assert_eq!(g.cell, 1.0);
        let g = GridIndex::new(0, f64::NAN);
        assert_eq!(g.cell, 1.0);
    }
}
