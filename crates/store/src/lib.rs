//! # gaea-store — the storage substrate under the Gaea kernel
//!
//! The 1993 prototype sat on the Postgres 3rd-generation DBMS, using it for
//! two things only: the ADT facility (covered here by `gaea-adt`) and
//! catalog/heap relations for classes, processes, tasks and data objects.
//! This crate is the substitution: an embedded, typed-relation store with
//!
//! * OID-identified tuples over declared [`schema::Schema`]s,
//! * slotted [`heap::Heap`] pages with free-list reuse,
//! * predicate scans ([`predicate::Predicate`]) including spatial/temporal
//!   overlap — the retrieval primitives §2.1.5 step 1 needs,
//! * ordered secondary [`index::OrderedIndex`]es plus uniform-grid
//!   spatial [`grid::GridIndex`]es and per-relation optimizer
//!   [`stats::TableStats`] maintained on every mutation,
//! * undo-log [`txn::Txn`] transactions (rollback restores exactly the
//!   pre-transaction state),
//! * whole-database [`snapshot`] persistence (JSON manifest; image payloads
//!   ride along through serde),
//! * an append-only, checksummed [`wal`] (length-prefixed records, group
//!   commit with fsync batching, torn-tail-tolerant scan) — the durable
//!   substrate under the kernel's event log, and
//! * MVCC [`version`] counters: every mutation stamps the touched object
//!   and relation with a fresh logical-clock value, so consumers can
//!   validate memoized derived results in O(1) per input instead of
//!   walking history ([`version::StoreSnapshot`]).
//!
//! See DESIGN.md §1 for why this substitution preserves the paper's
//! behaviour: the kernel only ever touches the store through these
//! interfaces.

pub mod codec;
pub mod db;
pub mod error;
pub mod grid;
pub mod heap;
pub mod index;
pub mod oid;
pub mod predicate;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod tuple;
pub mod txn;
pub mod version;
pub mod view;
pub mod wal;

pub use db::{Database, Relation};
pub use error::{StoreError, StoreResult};
pub use grid::GridIndex;
pub use oid::Oid;
pub use predicate::{CompiledPredicate, Predicate};
pub use schema::{Field, Schema};
pub use stats::{ColumnStats, TableStats};
pub use tuple::Tuple;
pub use txn::Txn;
pub use version::StoreSnapshot;
pub use view::PinnedStore;
pub use wal::{read_wal, CrashPoint, CrashSwitch, WalScan, WalWriter};
