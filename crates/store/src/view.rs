//! Snapshot-pinned read views: the data half of MVCC snapshots.
//!
//! [`crate::version::StoreSnapshot`] freezes the version *counters* —
//! enough to validate memoized results, not enough to answer a query.
//! A [`PinnedStore`] freezes the data too: an immutable copy of every
//! relation (heaps, indexes, grids, statistics) plus the counter
//! snapshot taken at the same instant, so a reader holding the view
//! answers retrievals against exactly one committed state no matter how
//! many commits land after the pin.
//!
//! The copy is taken under the owner's exclusive borrow
//! ([`crate::db::Database::pin`]), so a view can never observe a
//! half-applied mutation. Views are plain values: wrap one in an `Arc`
//! and every concurrent reader shares the same frozen state for free.
//! Cost is one deep copy per pin — callers amortize by caching the view
//! per clock value and re-pinning only after the clock moves.

use crate::db::Database;
use crate::version::StoreSnapshot;

/// An immutable, self-contained copy of the store at one commit point:
/// the data a reader scans plus the version counters it validates
/// staleness against. Dereferences to [`Database`], so every read-only
/// accessor (`relation`, `get`, `scan`, `object_version`, …) works
/// unchanged; there is no way to reach a `&mut Database` through a view.
#[derive(Debug)]
pub struct PinnedStore {
    db: Database,
    snapshot: StoreSnapshot,
}

impl PinnedStore {
    pub(crate) fn new(db: Database, snapshot: StoreSnapshot) -> PinnedStore {
        PinnedStore { db, snapshot }
    }

    /// The logical-clock value this view was pinned at.
    pub fn clock(&self) -> u64 {
        self.snapshot.clock
    }

    /// The version counters frozen with the data.
    pub fn snapshot(&self) -> &StoreSnapshot {
        &self.snapshot
    }

    /// The frozen data, as a read-only database.
    pub fn db(&self) -> &Database {
        &self.db
    }
}

impl std::ops::Deref for PinnedStore {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::{Field, Schema};
    use crate::tuple::Tuple;
    use gaea_adt::{TypeTag, Value};

    fn db_with_rows(n: u64) -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![Field::required("v", TypeTag::Int4)]).unwrap();
        db.create_relation("r", schema).unwrap();
        for i in 0..n {
            db.insert("r", Tuple::new(vec![Value::Int4(i as i32)]))
                .unwrap();
        }
        db
    }

    #[test]
    fn pin_freezes_data_and_counters() {
        let mut db = db_with_rows(3);
        let view = db.pin();
        let clock_at_pin = db.version_clock();
        db.insert("r", Tuple::new(vec![Value::Int4(99)])).unwrap();

        assert_eq!(view.clock(), clock_at_pin);
        assert_eq!(view.relation("r").unwrap().len(), 3);
        assert_eq!(db.relation("r").unwrap().len(), 4);
        // Counters frozen too: the view's clock lags the live clock.
        assert!(view.version_clock() < db.version_clock());
        assert_eq!(view.snapshot().clock, view.clock());
    }

    #[test]
    fn pinned_scans_match_the_state_at_pin_time() {
        let mut db = db_with_rows(5);
        let view = db.pin();
        let before: Vec<_> = db
            .relation("r")
            .unwrap()
            .scan_oids(&Predicate::True)
            .unwrap();
        for oid in &before {
            db.delete("r", *oid).unwrap();
        }
        assert!(db.relation("r").unwrap().is_empty());
        let seen = view
            .relation("r")
            .unwrap()
            .scan_oids(&Predicate::True)
            .unwrap();
        assert_eq!(seen, before);
    }

    #[test]
    fn pinned_indexes_survive_the_copy() {
        let mut db = db_with_rows(4);
        db.relation_mut("r").unwrap().create_index("v").unwrap();
        let view = db.pin();
        let hits = view
            .relation("r")
            .unwrap()
            .index_lookup("v", &Value::Int4(2))
            .unwrap();
        assert_eq!(hits.len(), 1);
    }
}
