//! Undo-log transactions.
//!
//! Derivation execution must be atomic: a task that fires a process writes
//! the derived object *and* the task record *and* any catalog updates, or
//! nothing (a failing assertion mid-plan must not leave half-derived
//! state). [`Txn`] records inverse operations and applies them in reverse
//! on rollback; uncommitted transactions roll back automatically on drop.
//!
//! Every logged operation and every inverse applied on rollback goes
//! through the [`Database`] write path, so MVCC version counters advance
//! for both. A rolled-back object therefore carries a *newer* version
//! than before the transaction even though its content is restored —
//! conservative for validators (needless re-derivation at worst, never a
//! stale result).

use crate::db::Database;
use crate::error::StoreResult;
use crate::oid::Oid;
use crate::predicate::Predicate;
use crate::tuple::Tuple;

#[derive(Debug)]
enum UndoOp {
    /// Inverse of insert.
    Remove { rel: String, oid: Oid },
    /// Inverse of delete.
    Reinsert { rel: String, oid: Oid, tuple: Tuple },
    /// Inverse of update.
    Restore { rel: String, oid: Oid, old: Tuple },
}

/// An open transaction over a [`Database`].
#[derive(Debug)]
pub struct Txn<'a> {
    db: &'a mut Database,
    log: Vec<UndoOp>,
    committed: bool,
}

impl<'a> Txn<'a> {
    pub(crate) fn new(db: &'a mut Database) -> Txn<'a> {
        Txn {
            db,
            log: Vec::new(),
            committed: false,
        }
    }

    /// Logged insert.
    pub fn insert(&mut self, rel: &str, tuple: Tuple) -> StoreResult<Oid> {
        let oid = self.db.insert(rel, tuple)?;
        self.log.push(UndoOp::Remove {
            rel: rel.into(),
            oid,
        });
        Ok(oid)
    }

    /// Logged insert under a pre-allocated OID.
    pub fn insert_with_oid(&mut self, rel: &str, oid: Oid, tuple: Tuple) -> StoreResult<()> {
        self.db.insert_with_oid(rel, oid, tuple)?;
        self.log.push(UndoOp::Remove {
            rel: rel.into(),
            oid,
        });
        Ok(())
    }

    /// Logged delete.
    pub fn delete(&mut self, rel: &str, oid: Oid) -> StoreResult<Tuple> {
        let tuple = self.db.delete(rel, oid)?;
        self.log.push(UndoOp::Reinsert {
            rel: rel.into(),
            oid,
            tuple: tuple.clone(),
        });
        Ok(tuple)
    }

    /// Logged update.
    pub fn update(&mut self, rel: &str, oid: Oid, tuple: Tuple) -> StoreResult<Tuple> {
        let old = self.db.update(rel, oid, tuple)?;
        self.log.push(UndoOp::Restore {
            rel: rel.into(),
            oid,
            old: old.clone(),
        });
        Ok(old)
    }

    /// Read-through point lookup (sees this transaction's own writes).
    pub fn get(&self, rel: &str, oid: Oid) -> StoreResult<Tuple> {
        self.db.get(rel, oid).cloned()
    }

    /// Read-through scan.
    pub fn scan(&self, rel: &str, pred: &Predicate) -> StoreResult<Vec<(Oid, Tuple)>> {
        self.db.scan(rel, pred)
    }

    /// Allocate an OID within the shared space.
    pub fn allocate_oid(&self) -> Oid {
        self.db.allocate_oid()
    }

    /// Number of logged operations.
    pub fn ops_logged(&self) -> usize {
        self.log.len()
    }

    /// Make all writes durable in-memory; the log is discarded.
    pub fn commit(mut self) {
        self.committed = true;
        self.log.clear();
    }

    /// Undo everything this transaction did, in reverse order.
    pub fn rollback(mut self) {
        self.apply_undo();
    }

    fn apply_undo(&mut self) {
        while let Some(op) = self.log.pop() {
            // Undo of a successfully logged op cannot fail unless the store
            // was mutated behind the transaction's back; that is a logic
            // error, loudly surfaced.
            match op {
                UndoOp::Remove { rel, oid } => {
                    self.db
                        .delete(&rel, oid)
                        .expect("undo: remove of logged insert");
                }
                UndoOp::Reinsert { rel, oid, tuple } => {
                    self.db
                        .insert_with_oid(&rel, oid, tuple)
                        .expect("undo: reinsert of logged delete");
                }
                UndoOp::Restore { rel, oid, old } => {
                    self.db
                        .update(&rel, oid, old)
                        .expect("undo: restore of logged update");
                }
            }
        }
        self.committed = true; // nothing left to undo on drop
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.committed {
            self.apply_undo();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use gaea_adt::{TypeTag, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "objects",
            Schema::new(vec![Field::required("v", TypeTag::Int4)]).unwrap(),
        )
        .unwrap();
        db
    }

    fn t(v: i32) -> Tuple {
        Tuple::new(vec![Value::Int4(v)])
    }

    #[test]
    fn commit_preserves_writes() {
        let mut db = db();
        let oid;
        {
            let mut txn = db.begin();
            oid = txn.insert("objects", t(5)).unwrap();
            txn.commit();
        }
        assert_eq!(db.get("objects", oid).unwrap().get(0), &Value::Int4(5));
    }

    #[test]
    fn rollback_undoes_insert_update_delete() {
        let mut db = db();
        let keep = db.insert("objects", t(1)).unwrap();
        {
            let mut txn = db.begin();
            let tmp = txn.insert("objects", t(2)).unwrap();
            txn.update("objects", keep, t(99)).unwrap();
            txn.delete("objects", keep).unwrap();
            assert!(txn.get("objects", tmp).is_ok());
            txn.rollback();
        }
        // keep is back with its original value; tmp is gone.
        assert_eq!(db.get("objects", keep).unwrap().get(0), &Value::Int4(1));
        assert_eq!(db.relation("objects").unwrap().len(), 1);
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let mut db = db();
        {
            let mut txn = db.begin();
            txn.insert("objects", t(7)).unwrap();
            // dropped here without commit
        }
        assert!(db.relation("objects").unwrap().is_empty());
    }

    #[test]
    fn failed_op_mid_txn_can_roll_back_cleanly() {
        let mut db = db();
        let mut txn = db.begin();
        txn.insert("objects", t(1)).unwrap();
        // This violates the schema and fails; nothing extra is logged.
        let bad = Tuple::new(vec![Value::Text("x".into())]);
        assert!(txn.insert("objects", bad).is_err());
        assert_eq!(txn.ops_logged(), 1);
        txn.rollback();
        assert!(db.relation("objects").unwrap().is_empty());
    }

    #[test]
    fn interleaved_ops_restore_exact_state() {
        let mut db = db();
        let a = db.insert("objects", t(10)).unwrap();
        let b = db.insert("objects", t(20)).unwrap();
        {
            let mut txn = db.begin();
            txn.update("objects", a, t(11)).unwrap();
            txn.update("objects", a, t(12)).unwrap();
            txn.delete("objects", b).unwrap();
            let c = txn.insert("objects", t(30)).unwrap();
            txn.update("objects", c, t(31)).unwrap();
        } // rollback on drop
        assert_eq!(db.get("objects", a).unwrap().get(0), &Value::Int4(10));
        assert_eq!(db.get("objects", b).unwrap().get(0), &Value::Int4(20));
        assert_eq!(db.relation("objects").unwrap().len(), 2);
    }

    #[test]
    fn committed_writes_bump_versions_once() {
        let mut db = db();
        let oid;
        {
            let mut txn = db.begin();
            oid = txn.insert("objects", t(5)).unwrap();
            txn.update("objects", oid, t(6)).unwrap();
            txn.commit();
        }
        assert_eq!(db.object_version(oid), 2);
        assert_eq!(db.relation_version("objects"), 2);
    }

    #[test]
    fn rollback_advances_versions_despite_restoring_content() {
        let mut db = db();
        let keep = db.insert("objects", t(1)).unwrap();
        let v_before = db.object_version(keep);
        {
            let mut txn = db.begin();
            txn.update("objects", keep, t(99)).unwrap();
            txn.rollback();
        }
        // Content is back, but the version only moved forward: a consumer
        // that observed the mid-transaction value can never revalidate.
        assert_eq!(db.get("objects", keep).unwrap().get(0), &Value::Int4(1));
        assert!(db.object_version(keep) > v_before);
    }

    #[test]
    fn txn_scan_sees_own_writes() {
        let mut db = db();
        let mut txn = db.begin();
        txn.insert("objects", t(1)).unwrap();
        txn.insert("objects", t(2)).unwrap();
        let seen = txn.scan("objects", &Predicate::True).unwrap();
        assert_eq!(seen.len(), 2);
        txn.commit();
    }
}
