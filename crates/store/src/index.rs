//! Ordered secondary indexes.
//!
//! A B-tree-backed index over one column. Because [`gaea_adt::Value`] is
//! totally ordered (value identity), any column type can be indexed,
//! including extents. Indexes are maintained eagerly by
//! [`crate::db::Relation`] on insert/update/delete.

use crate::oid::Oid;
use gaea_adt::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Ordered index: column value → OIDs of tuples carrying it.
///
/// The map itself is not serialized (JSON requires string keys); snapshots
/// persist only the indexed column and rebuild the map from the heap on
/// load — cheaper than a custom key codec and guaranteed consistent.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OrderedIndex {
    /// Indexed column position in the relation schema.
    pub column: usize,
    #[serde(skip)]
    map: BTreeMap<Value, Vec<Oid>>,
}

impl OrderedIndex {
    /// Empty index on a column position.
    pub fn new(column: usize) -> OrderedIndex {
        OrderedIndex {
            column,
            map: BTreeMap::new(),
        }
    }

    /// Register a tuple's column value.
    pub fn insert(&mut self, key: Value, oid: Oid) {
        self.map.entry(key).or_default().push(oid);
    }

    /// Unregister.
    pub fn remove(&mut self, key: &Value, oid: Oid) {
        if let Some(oids) = self.map.get_mut(key) {
            oids.retain(|o| *o != oid);
            if oids.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Exact-match lookup.
    pub fn lookup(&self, key: &Value) -> &[Oid] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Range lookup over the value order (inclusive bounds).
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<Oid> {
        let lower = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let upper = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        self.map
            .range((lower, upper))
            .flat_map(|(_, oids)| oids.iter().copied())
            .collect()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Smallest indexed key, if any.
    pub fn min_key(&self) -> Option<&Value> {
        self.map.keys().next()
    }

    /// Largest indexed key, if any.
    pub fn max_key(&self) -> Option<&Value> {
        self.map.keys().next_back()
    }

    /// All OIDs in key order (ascending or descending). Within one key,
    /// OIDs come out in insertion order either way — ties are resolved by
    /// the caller, so reversing the key walk must not reverse ties.
    pub fn sorted_oids(&self, desc: bool) -> Vec<Oid> {
        let mut out = Vec::with_capacity(self.len());
        if desc {
            for oids in self.map.values().rev() {
                out.extend_from_slice(oids);
            }
        } else {
            for oids in self.map.values() {
                out.extend_from_slice(oids);
            }
        }
        out
    }

    /// Total registered entries.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut idx = OrderedIndex::new(0);
        idx.insert(Value::Int4(5), Oid(1));
        idx.insert(Value::Int4(5), Oid(2));
        idx.insert(Value::Int4(7), Oid(3));
        assert_eq!(idx.lookup(&Value::Int4(5)), &[Oid(1), Oid(2)]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        idx.remove(&Value::Int4(5), Oid(1));
        assert_eq!(idx.lookup(&Value::Int4(5)), &[Oid(2)]);
        idx.remove(&Value::Int4(5), Oid(2));
        assert!(idx.lookup(&Value::Int4(5)).is_empty());
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn range_scan_inclusive() {
        let mut idx = OrderedIndex::new(0);
        for i in 0..10 {
            idx.insert(Value::Int4(i), Oid(100 + i as u64));
        }
        let mid = idx.range(Some(&Value::Int4(3)), Some(&Value::Int4(5)));
        assert_eq!(mid, vec![Oid(103), Oid(104), Oid(105)]);
        let tail = idx.range(Some(&Value::Int4(8)), None);
        assert_eq!(tail, vec![Oid(108), Oid(109)]);
        let all = idx.range(None, None);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn string_keys_order() {
        let mut idx = OrderedIndex::new(1);
        idx.insert(Value::Text("b".into()), Oid(2));
        idx.insert(Value::Text("a".into()), Oid(1));
        idx.insert(Value::Text("c".into()), Oid(3));
        let r = idx.range(
            Some(&Value::Text("a".into())),
            Some(&Value::Text("b".into())),
        );
        assert_eq!(r, vec![Oid(1), Oid(2)]);
    }

    #[test]
    fn removing_unknown_key_is_noop() {
        let mut idx = OrderedIndex::new(0);
        idx.remove(&Value::Int4(1), Oid(1));
        assert!(idx.is_empty());
    }

    #[test]
    fn min_max_and_sorted_walks() {
        let mut idx = OrderedIndex::new(0);
        assert!(idx.min_key().is_none());
        assert!(idx.max_key().is_none());
        idx.insert(Value::Int4(5), Oid(2));
        idx.insert(Value::Int4(1), Oid(3));
        idx.insert(Value::Int4(5), Oid(4));
        idx.insert(Value::Int4(9), Oid(1));
        assert_eq!(idx.min_key(), Some(&Value::Int4(1)));
        assert_eq!(idx.max_key(), Some(&Value::Int4(9)));
        assert_eq!(idx.sorted_oids(false), vec![Oid(3), Oid(2), Oid(4), Oid(1)]);
        // Descending reverses keys but keeps within-key insertion order.
        assert_eq!(idx.sorted_oids(true), vec![Oid(1), Oid(2), Oid(4), Oid(3)]);
    }
}
