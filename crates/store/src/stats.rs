//! Per-relation statistics for cost-based access-path selection.
//!
//! The optimizer needs three things to price a scan: the relation's
//! cardinality, and per-indexed-column distinct counts and min/max
//! bounds for selectivity interpolation. Stats are refreshed eagerly on
//! every mutation (cheap: each figure falls out of the already-maintained
//! [`crate::index::OrderedIndex`] B-trees) and persist in the snapshot
//! manifest alongside the relation.

use gaea_adt::Value;
use serde::{Deserialize, Serialize};

/// Summary statistics for one indexed column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Column position in the relation schema.
    pub column: usize,
    /// Number of distinct indexed keys.
    pub distinct: u64,
    /// Smallest indexed key.
    pub min: Option<Value>,
    /// Largest indexed key.
    pub max: Option<Value>,
}

/// Per-relation statistics: cardinality plus one [`ColumnStats`] entry
/// per ordered index.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Live tuple count.
    pub rows: u64,
    /// Stats per indexed column, in index-creation order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats for a column position, if that column is indexed.
    pub fn column(&self, pos: usize) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.column == pos)
    }

    /// Estimated rows matching `column = key`: rows / distinct, the
    /// uniform-frequency assumption. Falls back to `rows` when the
    /// column is unindexed or empty.
    pub fn eq_estimate(&self, pos: usize) -> u64 {
        match self.column(pos) {
            Some(c) if c.distinct > 0 => self.rows.div_ceil(c.distinct),
            _ => self.rows,
        }
    }

    /// Estimated fraction of the key domain covered by `[lo, hi]`,
    /// interpolated against the column's min/max. `None` bounds are
    /// open. Falls back to 1.0 (no information) when the column is
    /// unindexed, empty, or not numerically interpolable.
    pub fn range_fraction(&self, pos: usize, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
        let Some(c) = self.column(pos) else {
            return 1.0;
        };
        let (Some(min), Some(max)) = (
            c.min.as_ref().and_then(value_as_f64),
            c.max.as_ref().and_then(value_as_f64),
        ) else {
            return 1.0;
        };
        let width = max - min;
        if width <= 0.0 {
            return 1.0;
        }
        let lo = lo.and_then(value_as_f64).unwrap_or(min).max(min);
        let hi = hi.and_then(value_as_f64).unwrap_or(max).min(max);
        ((hi - lo) / width).clamp(0.0, 1.0)
    }

    /// Estimated rows matching a range predicate on `pos`.
    pub fn range_estimate(&self, pos: usize, lo: Option<&Value>, hi: Option<&Value>) -> u64 {
        let frac = self.range_fraction(pos, lo, hi);
        ((self.rows as f64) * frac).ceil() as u64
    }
}

/// Numeric view of a value for selectivity interpolation.
fn value_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int4(i) => Some(*i as f64),
        Value::Float8(f) => Some(*f),
        other => other.as_abstime().map(|t| t.0 as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> TableStats {
        TableStats {
            rows: 100,
            columns: vec![ColumnStats {
                column: 1,
                distinct: 10,
                min: Some(Value::Int4(0)),
                max: Some(Value::Int4(100)),
            }],
        }
    }

    #[test]
    fn eq_estimate_divides_by_distinct() {
        let s = stats();
        assert_eq!(s.eq_estimate(1), 10);
        // Unindexed column: no information, assume full scan.
        assert_eq!(s.eq_estimate(0), 100);
    }

    #[test]
    fn range_estimate_interpolates() {
        let s = stats();
        assert_eq!(
            s.range_estimate(1, Some(&Value::Int4(0)), Some(&Value::Int4(50))),
            50
        );
        assert_eq!(s.range_estimate(1, Some(&Value::Int4(90)), None), 10);
        // Out-of-domain ranges clamp to zero.
        assert_eq!(
            s.range_estimate(1, Some(&Value::Int4(200)), Some(&Value::Int4(300))),
            0
        );
        // Unindexed: full scan.
        assert_eq!(s.range_estimate(0, None, None), 100);
    }

    #[test]
    fn degenerate_domains_fall_back() {
        let s = TableStats {
            rows: 7,
            columns: vec![ColumnStats {
                column: 0,
                distinct: 1,
                min: Some(Value::Int4(5)),
                max: Some(Value::Int4(5)),
            }],
        };
        assert_eq!(s.range_estimate(0, Some(&Value::Int4(0)), None), 7);
        assert_eq!(s.eq_estimate(0), 7);
    }
}
