//! Whole-database snapshots.
//!
//! Persistence format: a single `manifest.json` holding relation schemas,
//! heaps (tuples inline, including image payloads through serde) and index
//! declarations, plus the OID high-water mark. Indexes and heap OID maps
//! are rebuilt on load rather than persisted (see `index.rs`).
//!
//! The paper's `image` external representation stores payloads behind file
//! paths; this snapshot keeps payloads inline for atomicity. The
//! IDRISI-style file-per-raster layout lives in `gaea-baseline`, where its
//! weaknesses are the point.

use crate::db::{Database, Relation};
use crate::error::{StoreError, StoreResult};
use crate::version::VersionMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Serialized snapshot body.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    /// Format version for forward compatibility.
    version: u32,
    /// Next OID to allocate.
    next_oid: u64,
    /// All relations.
    relations: BTreeMap<String, Relation>,
    /// MVCC version counters (format v2; a v1 manifest loads with fresh
    /// counters — conservative, since nothing recorded against them yet).
    #[serde(default)]
    versions: VersionMap,
    /// WAL truncation watermark (format v4): sequence number of the last
    /// logged event this snapshot already contains. On recovery, replay
    /// skips log events at or below it — which makes a crash *during*
    /// log truncation harmless, since re-replaying the untruncated log
    /// is then a no-op. 0 for snapshots taken outside a WAL session
    /// (and for v1–v3 manifests).
    #[serde(default)]
    wal_seq: u64,
}

/// Current format: 4 (v3 + the WAL truncation watermark). v1–v3
/// manifests still load: missing counters start fresh, missing
/// stats/grids default empty and are recomputed by the post-load
/// rebuild, and a missing watermark is 0 (replay everything).
const SNAPSHOT_VERSION: u32 = 4;

/// Database state cloned out for a deferred snapshot write.
///
/// Background log compaction splits a snapshot in two: the committing
/// thread pays only this clone (heap payloads are `Arc`-shared, so the
/// deep cost is tuple vectors and index maps, not raster bytes), and a
/// worker thread pays the serialization and file I/O via
/// [`write_capture`] while commits keep appending to the log.
#[derive(Debug, Clone)]
pub struct Capture {
    manifest: Manifest,
}

/// Clone the database state a snapshot at `wal_seq` would persist.
pub fn capture_with_wal_seq(db: &Database, wal_seq: u64) -> Capture {
    Capture {
        manifest: Manifest {
            version: SNAPSHOT_VERSION,
            next_oid: db.allocator_peek(),
            relations: db.relations().clone(),
            versions: db.versions().clone(),
            wal_seq,
        },
    }
}

/// Serialize a [`Capture`] to `dir/manifest.json` (creates `dir` if
/// needed). Callable from any thread.
pub fn write_capture(capture: &Capture, dir: &Path) -> StoreResult<()> {
    fs::create_dir_all(dir)?;
    let json =
        serde_json::to_string(&capture.manifest).map_err(|e| StoreError::Codec(e.to_string()))?;
    // Write-then-rename for atomicity against torn writes.
    let tmp = dir.join("manifest.json.tmp");
    let fin = dir.join("manifest.json");
    fs::write(&tmp, json)?;
    fs::rename(&tmp, &fin)?;
    Ok(())
}

/// Write the database to `dir/manifest.json` (creates `dir` if needed).
pub fn save(db: &Database, dir: &Path) -> StoreResult<()> {
    save_with_wal_seq(db, dir, 0)
}

/// Like [`save`], stamping the manifest with the WAL sequence number of
/// the last event already folded into this snapshot.
pub fn save_with_wal_seq(db: &Database, dir: &Path, wal_seq: u64) -> StoreResult<()> {
    write_capture(&capture_with_wal_seq(db, wal_seq), dir)
}

/// Load a database from `dir/manifest.json`.
pub fn load(dir: &Path) -> StoreResult<Database> {
    Ok(load_with_wal_seq(dir)?.0)
}

/// Like [`load`], also returning the manifest's WAL truncation
/// watermark (0 for pre-v4 manifests).
pub fn load_with_wal_seq(dir: &Path) -> StoreResult<(Database, u64)> {
    let raw = fs::read_to_string(dir.join("manifest.json"))?;
    let manifest: Manifest =
        serde_json::from_str(&raw).map_err(|e| StoreError::Codec(e.to_string()))?;
    if manifest.version == 0 || manifest.version > SNAPSHOT_VERSION {
        return Err(StoreError::Codec(format!(
            "snapshot version {} unsupported (expected 1..={SNAPSHOT_VERSION})",
            manifest.version
        )));
    }
    Ok((
        Database::from_parts(manifest.relations, manifest.next_oid, manifest.versions),
        manifest.wal_seq,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::{Field, Schema};
    use crate::tuple::Tuple;
    use gaea_adt::{Image, PixType, TypeTag, Value};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gaea-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_everything() {
        let mut db = Database::new();
        db.create_relation(
            "scenes",
            Schema::new(vec![
                Field::required("name", TypeTag::Text),
                Field::required("data", TypeTag::Image),
            ])
            .unwrap(),
        )
        .unwrap();
        db.relation_mut("scenes")
            .unwrap()
            .create_index("name")
            .unwrap();
        let img = Image::filled(4, 4, PixType::Int2, 123.0);
        let oid = db
            .insert(
                "scenes",
                Tuple::new(vec![Value::Text("tm_b3".into()), Value::image(img.clone())]),
            )
            .unwrap();
        let dir = tempdir("rt");
        save(&db, &dir).unwrap();
        let back = load(&dir).unwrap();
        // Tuple content survived, payload included.
        let t = back.get("scenes", oid).unwrap();
        assert_eq!(t.get(0), &Value::Text("tm_b3".into()));
        assert_eq!(t.get(1).as_image().unwrap().as_ref(), &img);
        // Index was rebuilt and answers lookups.
        let hits = back
            .relation("scenes")
            .unwrap()
            .index_lookup("name", &Value::Text("tm_b3".into()))
            .unwrap();
        assert_eq!(hits, vec![oid]);
        // OID allocation continues past the snapshot point.
        let next = back.allocate_oid();
        assert!(next > oid);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_counters_survive_save_load() {
        let mut db = Database::new();
        db.create_relation(
            "objects",
            Schema::new(vec![Field::required("v", TypeTag::Int4)]).unwrap(),
        )
        .unwrap();
        let a = db
            .insert("objects", Tuple::new(vec![Value::Int4(1)]))
            .unwrap();
        let b = db
            .insert("objects", Tuple::new(vec![Value::Int4(2)]))
            .unwrap();
        db.update("objects", a, Tuple::new(vec![Value::Int4(3)]))
            .unwrap();
        db.delete("objects", b).unwrap();
        let dir = tempdir("vers");
        save(&db, &dir).unwrap();
        let mut back = load(&dir).unwrap();
        // Exact counters survive — including the deleted object's.
        assert_eq!(back.object_version(a), db.object_version(a));
        assert_eq!(back.object_version(b), db.object_version(b));
        assert_eq!(
            back.relation_version("objects"),
            db.relation_version("objects")
        );
        assert_eq!(back.version_clock(), db.version_clock());
        // And the clock keeps moving forward after the reload.
        back.update("objects", a, Tuple::new(vec![Value::Int4(4)]))
            .unwrap();
        assert!(back.object_version(a) > db.object_version(a));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_manifest_loads_with_fresh_counters() {
        let dir = tempdir("v1");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("manifest.json"),
            r#"{"version":1,"next_oid":1,"relations":{}}"#,
        )
        .unwrap();
        let db = load(&dir).unwrap();
        assert_eq!(db.version_clock(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_manifest_without_stats_or_grids_loads() {
        // A v2-era relation body has no "grids" or "stats" keys; both
        // must default empty and be recomputed by the post-load rebuild.
        let dir = tempdir("v2");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("manifest.json"),
            concat!(
                r#"{"version":2,"next_oid":3,"relations":{"objects":{"#,
                r#""schema":{"fields":[{"name":"v","tag":"Int4","nullable":false}]},"#,
                r#""heap":{"slots":[[1,{"values":[{"Int4":7}]}],[2,{"values":[{"Int4":9}]}]],"free":[],"len":2},"#,
                r#""indexes":[{"column":0}]}}}"#,
            ),
        )
        .unwrap();
        let back = load(&dir).unwrap();
        let rel = back.relation("objects").unwrap();
        assert_eq!(rel.stats().rows, 2);
        assert_eq!(rel.stats().column(0).unwrap().distinct, 2);
        assert_eq!(
            rel.index_lookup("v", &Value::Int4(7)).unwrap(),
            vec![crate::oid::Oid(1)]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_and_grids_survive_round_trip() {
        let mut db = Database::new();
        db.create_relation(
            "extents",
            Schema::new(vec![Field::required("ext", TypeTag::GeoBox)]).unwrap(),
        )
        .unwrap();
        let rel = db.relation_mut("extents").unwrap();
        rel.create_index("ext").unwrap();
        rel.create_grid("ext", 10.0).unwrap();
        let oid = db
            .insert(
                "extents",
                Tuple::new(vec![Value::GeoBox(gaea_adt::GeoBox::new(
                    0.0, 0.0, 5.0, 5.0,
                ))]),
            )
            .unwrap();
        let dir = tempdir("sg");
        save(&db, &dir).unwrap();
        let back = load(&dir).unwrap();
        let rel = back.relation("extents").unwrap();
        assert_eq!(rel.stats().rows, 1);
        // Grid declaration persisted and cells were rebuilt from the heap.
        let probe = rel.grid_for(0).unwrap();
        assert_eq!(probe.cell, 10.0);
        assert_eq!(
            probe.probe(&gaea_adt::GeoBox::new(1.0, 1.0, 2.0, 2.0)),
            vec![oid]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_fails() {
        let dir = tempdir("missing");
        assert!(matches!(load(&dir), Err(StoreError::Io(_))));
    }

    #[test]
    fn version_mismatch_detected() {
        let dir = tempdir("ver");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("manifest.json"),
            r#"{"version":99,"next_oid":1,"relations":{}}"#,
        )
        .unwrap();
        assert!(matches!(load(&dir), Err(StoreError::Codec(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_excludes_uncommitted_state_if_saved_after_rollback() {
        let mut db = Database::new();
        db.create_relation(
            "objects",
            Schema::new(vec![Field::required("v", TypeTag::Int4)]).unwrap(),
        )
        .unwrap();
        {
            let mut txn = db.begin();
            txn.insert("objects", Tuple::new(vec![Value::Int4(1)]))
                .unwrap();
            txn.rollback();
        }
        let dir = tempdir("rb");
        save(&db, &dir).unwrap();
        let back = load(&dir).unwrap();
        assert_eq!(back.scan("objects", &Predicate::True).unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
