//! Append-only, checksummed write-ahead log.
//!
//! The durable substrate under the kernel's event log: a single file of
//! length-prefixed, CRC-checked records,
//!
//! ```text
//! ┌────────────┬────────────┬────────────────────┐
//! │ len: u32   │ crc32: u32 │ payload (len bytes)│  … repeated
//! │ little-end │ IEEE, LE   │                    │
//! └────────────┴────────────┴────────────────────┘
//! ```
//!
//! The writer appends whole records and offers *group commit*: every
//! append is written (and therefore survives a process crash — the OS
//! holds the bytes), but the expensive `fsync` only runs every
//! `fsync_every` records, trading a bounded window of machine-crash
//! loss for throughput. [`read_wal`] scans back the longest valid prefix
//! and reports exactly what it dropped: a torn tail (a record cut short
//! by a crash mid-append) truncates cleanly, a checksum mismatch marks
//! the log corrupt from that point on — either way every record before
//! the damage is recovered.
//!
//! Crash injection for the fault-matrix CI lane lives here too
//! ([`CrashSwitch`]): `GAEA_CRASH_POINT={append,fsync,truncate,`
//! `snapshot-write,manifest-flip,post-flip-pre-truncate,`
//! `truncate-rewrite}` plus `GAEA_CRASH_AFTER=<n-events>` abort the
//! process mid-commit at the named boundary, which is how
//! `scripts/crash_matrix.sh` manufactures the torn tails and
//! half-written snapshots this module (and the kernel's compactor
//! above it) must survive. The snapshot-side points fire in whatever
//! thread is writing the snapshot — including the background
//! compactor's worker.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Records larger than this are treated as corruption by the reader — a
/// length prefix this big is a damaged header, not data.
const MAX_RECORD: u32 = 1 << 30;

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time —
/// the workspace vendors no checksum crate, and 256 u32s are cheap.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Where an injected crash fires, relative to one record append or one
/// snapshot-writing sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Mid-append: half the record's bytes reach the file, then abort —
    /// the torn-tail case recovery must truncate.
    Append,
    /// After the record is written (the OS has it) but before the
    /// batch `fsync` — the group-commit boundary.
    Fsync,
    /// During snapshot truncation: after the snapshot pointer flipped,
    /// before the log is actually truncated.
    Truncate,
    /// Mid snapshot write: the side directory holds a half-written
    /// snapshot, the manifest pointer still names the old one.
    SnapshotWrite,
    /// The snapshot directory is complete but the `CURRENT` pointer has
    /// not flipped to it yet.
    ManifestFlip,
    /// The pointer flipped, the log still holds the covered prefix —
    /// the boundary background compaction adds between flip and prefix
    /// truncation.
    PostFlipPreTruncate,
    /// Mid prefix clip: the surviving suffix is durable in the sibling
    /// clip file, but the rename over the live log has not happened —
    /// the log still holds the full covered-prefix + suffix bytes.
    TruncateRewrite,
}

impl CrashPoint {
    /// Parse the `GAEA_CRASH_POINT` spelling of a boundary.
    pub fn parse(spec: &str) -> Result<CrashPoint, String> {
        Ok(match spec {
            "append" => CrashPoint::Append,
            "fsync" => CrashPoint::Fsync,
            "truncate" => CrashPoint::Truncate,
            "snapshot-write" => CrashPoint::SnapshotWrite,
            "manifest-flip" => CrashPoint::ManifestFlip,
            "post-flip-pre-truncate" => CrashPoint::PostFlipPreTruncate,
            "truncate-rewrite" => CrashPoint::TruncateRewrite,
            other => {
                return Err(format!(
                    "unknown crash point {other:?} (valid: append, fsync, truncate, \
                     snapshot-write, manifest-flip, post-flip-pre-truncate, \
                     truncate-rewrite)"
                ))
            }
        })
    }
}

/// Fault injection armed from the environment: `GAEA_CRASH_POINT` names
/// the boundary, `GAEA_CRASH_AFTER=<n>` lets `n` events commit normally
/// first. Disarmed (the common case) when either variable is absent.
///
/// A malformed `GAEA_CRASH_POINT` is rejected *loudly*: the typo is
/// reported on stderr and the injector stays disarmed, so a
/// crash-matrix lane with `fsnyc` fails its "workload must crash"
/// phase with a diagnostic instead of silently testing nothing.
#[derive(Debug, Clone, Copy)]
pub struct CrashSwitch {
    point: Option<CrashPoint>,
    after: u64,
}

impl CrashSwitch {
    /// Arm from `GAEA_CRASH_POINT` / `GAEA_CRASH_AFTER`.
    pub fn from_env() -> CrashSwitch {
        let point = match std::env::var("GAEA_CRASH_POINT") {
            Ok(v) => match CrashPoint::parse(&v) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!(
                        "gaea-store: ignoring GAEA_CRASH_POINT={v:?}: {e}; injector disarmed"
                    );
                    None
                }
            },
            Err(_) => None,
        };
        let after = std::env::var("GAEA_CRASH_AFTER")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        CrashSwitch { point, after }
    }

    /// Should the crash fire at `point`, given `events` committed so far?
    pub fn armed(&self, point: CrashPoint, events: u64) -> bool {
        self.point == Some(point) && events >= self.after
    }

    /// Abort the process if armed at `point` — callable from any thread
    /// (the background compactor fires the snapshot-side points from
    /// its worker).
    pub fn fire_if_armed(&self, point: CrashPoint, events: u64) {
        if self.armed(point, events) {
            std::process::abort();
        }
    }
}

/// Sibling path the prefix clip stages its suffix in (`wal.log.clip`):
/// written and synced first, then renamed over the live log so the clip
/// is atomic — a crash leaves either the full old log or the clean
/// suffix, never a half-rewritten mix.
fn clip_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".clip");
    PathBuf::from(os)
}

/// Fsync the directory containing `path`, making a just-completed
/// rename durable.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

/// Append half of WAL I/O: group-committed record writes.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// `fsync` every N appends; 1 = sync every event.
    fsync_every: u64,
    /// Appends since the last sync.
    unsynced: u64,
    /// Records appended over this writer's lifetime (crash-injection
    /// event counter).
    appended: u64,
    /// Current log length in bytes (valid prefix at open + every
    /// record appended since) — the offset background compaction
    /// records as "the prefix this snapshot covers".
    len: u64,
    injector: CrashSwitch,
}

impl WalWriter {
    /// Open (creating if absent) the log at `path` for appending,
    /// truncating it to `valid_len` first — the caller just scanned the
    /// file with [`read_wal`] and `valid_len` is the end of the last
    /// intact record; anything beyond it is a torn tail to drop.
    ///
    /// A `valid_len` *larger* than the file is rejected: `set_len`
    /// would silently extend the log with zero bytes that the next
    /// scan reads as a corrupt record, so a stale scan (or swapped
    /// paths) surfaces as an error here instead.
    pub fn open(path: &Path, valid_len: u64, fsync_every: u64) -> std::io::Result<WalWriter> {
        // A stale clip file is wreckage of a prefix truncation that
        // crashed before its rename — the live log is still whole, so
        // the staged suffix is redundant and must not shadow it.
        let _ = std::fs::remove_file(clip_path(path));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let actual = file.metadata()?.len();
        if valid_len > actual {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "wal valid prefix {valid_len} exceeds file length {actual} — \
                     stale scan or wrong path; refusing to zero-extend the log"
                ),
            ));
        }
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            fsync_every: fsync_every.max(1),
            unsynced: 0,
            appended: 0,
            len: valid_len,
            injector: CrashSwitch::from_env(),
        })
    }

    /// Append one record. The bytes are written to the OS immediately
    /// (a process crash after `append` returns loses nothing); the
    /// durable `fsync` runs once per `fsync_every` appends.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);
        if self.injector.armed(CrashPoint::Append, self.appended) {
            // Torn-tail injection: half the record reaches the file.
            let half = 8 + payload.len() / 2;
            self.file.write_all(&record[..half])?;
            let _ = self.file.sync_data();
            std::process::abort();
        }
        self.file.write_all(&record)?;
        self.appended += 1;
        self.unsynced += 1;
        self.len += record.len() as u64;
        gaea_obs::metrics().wal_appends.inc();
        if self.injector.armed(CrashPoint::Fsync, self.appended) {
            // The record is in the OS but the batch sync has not run —
            // the group-commit window a machine crash could lose.
            std::process::abort();
        }
        if self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Force the pending batch to disk.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            let m = gaea_obs::metrics();
            m.wal_fsyncs.inc();
            m.wal_batch.record(self.unsynced);
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Abort here if the injector is armed at `point` — the snapshot
    /// path fires the flip/truncate boundaries through this, using the
    /// writer's append counter as the arming clock.
    pub fn crash_point(&self, point: CrashPoint) {
        self.injector.fire_if_armed(point, self.appended);
    }

    /// This writer's crash injector — the background compactor clones
    /// it into its worker so the snapshot-side points fire there too.
    pub fn crash_switch(&self) -> CrashSwitch {
        self.injector
    }

    /// Reset the log to empty — the snapshot that supersedes its events
    /// is durably on disk.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.unsynced = 0;
        self.len = 0;
        Ok(())
    }

    /// Drop exactly the first `prefix` bytes of the log, keeping every
    /// record appended after them — the background-compaction finish:
    /// the snapshot covers the prefix, commits that landed while it was
    /// being written stay in the log.
    ///
    /// The clip is crash-atomic: the surviving suffix is staged in a
    /// sibling `*.clip` file and synced, then renamed over the live log
    /// (directory fsynced) — never an in-place rewrite. A crash at any
    /// point leaves either the full old log (the snapshot watermark
    /// makes re-replaying the covered prefix a no-op) or the clean
    /// suffix; stale clip files are swept by [`WalWriter::open`].
    pub fn truncate_prefix(&mut self, prefix: u64) -> std::io::Result<()> {
        if prefix > self.len {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "wal prefix truncation at {prefix} past the log length {}",
                    self.len
                ),
            ));
        }
        if prefix == 0 {
            return Ok(());
        }
        if prefix == self.len {
            return self.truncate();
        }
        let mut suffix = Vec::with_capacity((self.len - prefix) as usize);
        self.file.seek(SeekFrom::Start(prefix))?;
        self.file.read_to_end(&mut suffix)?;
        let clip = clip_path(&self.path);
        {
            let mut staged = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&clip)?;
            staged.write_all(&suffix)?;
            staged.sync_data()?;
        }
        // Fault-injection boundary: the suffix is durable in the clip
        // file but the live log is untouched — the window the old
        // in-place rewrite could corrupt.
        self.injector
            .fire_if_armed(CrashPoint::TruncateRewrite, self.appended);
        std::fs::rename(&clip, &self.path)?;
        sync_parent_dir(&self.path)?;
        // The old handle points at the now-unlinked inode; reopen.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.unsynced = 0;
        self.len = suffix.len() as u64;
        gaea_obs::metrics().wal_compaction_trunc_bytes.add(prefix);
        Ok(())
    }

    /// Records appended over this writer's lifetime.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Current log length in bytes (valid prefix at open plus every
    /// record appended since).
    pub fn log_len(&self) -> u64 {
        self.len
    }
}

/// Result of scanning a log file: every intact record plus an exact
/// account of what (if anything) was dropped.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Payloads of the valid prefix, in append order.
    pub records: Vec<Vec<u8>>,
    /// File offset where the valid prefix ends — open the writer at this
    /// length to drop the damage.
    pub valid_len: u64,
    /// Bytes beyond the valid prefix (0 for a clean log).
    pub dropped_bytes: u64,
    /// True when the damage was a checksum mismatch or absurd length
    /// (bit rot / interleaved write), not just a crash-torn tail.
    pub corrupt: bool,
}

/// Scan the log at `path`, recovering the longest valid record prefix.
/// A missing file is an empty, clean log. The scan stops at the first
/// record that is cut short (torn tail) or fails its checksum
/// (corruption); everything before it is returned.
pub fn read_wal(path: &Path) -> std::io::Result<WalScan> {
    let (file, total) = match File::open(path) {
        Ok(f) => {
            let total = f.metadata()?.len();
            (f, total)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e),
    };
    // Stream record by record instead of slurping the file: replay of a
    // long log holds each payload exactly once (in `records`), never a
    // second full copy of the raw log.
    let mut reader = BufReader::with_capacity(1 << 16, file);
    let mut scan = WalScan::default();
    let mut pos = 0u64;
    let mut header = [0u8; 8];
    while pos + 8 <= total {
        reader.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD {
            scan.corrupt = true;
            break;
        }
        let end = pos + 8 + u64::from(len);
        if end > total {
            // Torn tail: the record started but the crash cut it short.
            break;
        }
        let mut payload = vec![0u8; len as usize];
        reader.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            scan.corrupt = true;
            break;
        }
        scan.records.push(payload);
        pos = end;
    }
    scan.valid_len = pos;
    scan.dropped_bytes = total - pos;
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gaea-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_read_round_trip() {
        let path = temp("rt");
        let mut w = WalWriter::open(&path, 0, 1).unwrap();
        w.append(b"alpha").unwrap();
        w.append(b"").unwrap();
        w.append(b"gamma-gamma").unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(
            scan.records,
            vec![b"alpha".to_vec(), vec![], b"gamma-gamma".to_vec()]
        );
        assert_eq!(scan.dropped_bytes, 0);
        assert!(!scan.corrupt);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp("torn");
        let mut w = WalWriter::open(&path, 0, 1).unwrap();
        w.append(b"keep-me").unwrap();
        w.append(b"doomed-record").unwrap();
        drop(w);
        // Cut the last record short, as a crash mid-append would.
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, vec![b"keep-me".to_vec()]);
        assert!(scan.dropped_bytes > 0);
        assert!(!scan.corrupt, "a torn tail is a crash, not corruption");
        // Reopening at valid_len drops the tail; new appends land clean.
        let mut w = WalWriter::open(&path, scan.valid_len, 1).unwrap();
        w.append(b"after-recovery").unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(
            scan.records,
            vec![b"keep-me".to_vec(), b"after-recovery".to_vec()]
        );
        assert_eq!(scan.dropped_bytes, 0);
    }

    #[test]
    fn checksum_corruption_is_detected_and_stops_the_scan() {
        let path = temp("crc");
        let mut w = WalWriter::open(&path, 0, 1).unwrap();
        w.append(b"good").unwrap();
        w.append(b"flipped").unwrap();
        w.append(b"unreachable").unwrap();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the second record.
        let second_payload = 8 + 4 + 8;
        bytes[second_payload] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, vec![b"good".to_vec()]);
        assert!(scan.corrupt);
        assert!(scan.dropped_bytes > 0);
    }

    #[test]
    fn missing_file_is_an_empty_clean_log() {
        let path = temp("none");
        let scan = read_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(!scan.corrupt);
    }

    #[test]
    fn truncate_resets_the_log() {
        let path = temp("trunc");
        let mut w = WalWriter::open(&path, 0, 8).unwrap();
        for i in 0..5 {
            w.append(format!("e{i}").as_bytes()).unwrap();
        }
        w.truncate().unwrap();
        w.append(b"fresh").unwrap();
        w.sync().unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn prefix_truncation_keeps_the_suffix() {
        let path = temp("prefix");
        let mut w = WalWriter::open(&path, 0, 1).unwrap();
        w.append(b"folded-1").unwrap();
        w.append(b"folded-2").unwrap();
        let covered = w.log_len();
        w.append(b"survivor-a").unwrap();
        w.truncate_prefix(covered).unwrap();
        // Appending keeps working after the rewrite.
        w.append(b"survivor-b").unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(
            scan.records,
            vec![b"survivor-a".to_vec(), b"survivor-b".to_vec()]
        );
        assert!(!scan.corrupt);
        assert_eq!(scan.dropped_bytes, 0);
        // The staged clip file never outlives a successful rewrite.
        assert!(!clip_path(&path).exists());
        // A zero prefix is a no-op, not a pointless rewrite.
        let before = w.log_len();
        w.truncate_prefix(0).unwrap();
        assert_eq!(w.log_len(), before);
        // Truncating the whole log is the full reset.
        let all = w.log_len();
        w.truncate_prefix(all).unwrap();
        assert_eq!(read_wal(&path).unwrap().records.len(), 0);
        // A prefix past the end is an error, not a zero-extend.
        assert!(w.truncate_prefix(10).is_err());
    }

    #[test]
    fn stale_clip_file_is_swept_on_open() {
        let path = temp("clip");
        let mut w = WalWriter::open(&path, 0, 1).unwrap();
        w.append(b"live-record").unwrap();
        drop(w);
        // A crash between staging the clip and renaming it leaves the
        // sibling file behind; the live log is authoritative and reopen
        // must discard the stale suffix.
        fs::write(clip_path(&path), b"half-finished clip").unwrap();
        let scan = read_wal(&path).unwrap();
        let w = WalWriter::open(&path, scan.valid_len, 1).unwrap();
        assert!(!clip_path(&path).exists());
        drop(w);
        assert_eq!(
            read_wal(&path).unwrap().records,
            vec![b"live-record".to_vec()]
        );
    }

    #[test]
    fn open_rejects_a_valid_len_past_the_file() {
        let path = temp("clamp");
        let mut w = WalWriter::open(&path, 0, 1).unwrap();
        w.append(b"short-log").unwrap();
        drop(w);
        let len = fs::metadata(&path).unwrap().len();
        // A stale scan claiming more valid bytes than exist must not
        // silently extend the file with zeros.
        let err = match WalWriter::open(&path, len + 32, 1) {
            Ok(_) => panic!("zero-extending open must fail"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert_eq!(fs::metadata(&path).unwrap().len(), len);
        // The exact length still opens.
        assert!(WalWriter::open(&path, len, 1).is_ok());
    }

    #[test]
    fn absurd_length_prefix_reads_as_corruption() {
        let path = temp("len");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.corrupt);
    }
}
