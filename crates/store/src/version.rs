//! MVCC-style version counters for O(1) staleness detection.
//!
//! The store keeps one logical clock per [`crate::db::Database`]; every
//! mutation (insert, update, delete — autocommitted or inside a
//! [`crate::txn::Txn`], including rollback's inverse operations) ticks the
//! clock and stamps the touched object and its relation with the new clock
//! value. Consumers that memoize results computed from stored objects
//! record the versions they observed and later compare them against the
//! current counters: a single integer comparison per input replaces any
//! walk over history to decide whether a derived result is still current.
//!
//! Version entries survive deletion (a deleted object's counter keeps
//! advancing rather than disappearing), so re-inserting under a recycled
//! OID can never present an old version again (no ABA). Rollback also
//! advances versions — the content is restored but the counters only move
//! forward, which is conservative: a validator may re-derive needlessly,
//! but can never serve a stale result.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::oid::Oid;

/// Per-database version state: a logical clock plus the last-mutation
/// stamp of every object and relation. Persisted inside snapshots so
/// validity checks survive a save/load cycle.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VersionMap {
    /// Logical clock; strictly increases with every mutation.
    clock: u64,
    /// Relation name → clock value of its last mutation.
    relations: BTreeMap<String, u64>,
    /// OID → clock value of its last mutation. Entries are never removed:
    /// deletion is a mutation like any other.
    objects: BTreeMap<u64, u64>,
    /// When enabled (durable databases only), every tick is also recorded
    /// here as `(relation, stamped oids)` so a write-ahead log can replay
    /// the exact clock history — including bumps from rolled-back or
    /// failed operations that no logged event otherwise accounts for.
    /// Runtime-only: never serialized, absent after deserialization.
    #[serde(skip)]
    journal: Option<Vec<(String, Vec<u64>)>>,
}

impl VersionMap {
    /// Advance the clock and stamp `oid` within `rel`.
    pub(crate) fn bump(&mut self, rel: &str, oid: Oid) {
        self.clock += 1;
        self.objects.insert(oid.0, self.clock);
        match self.relations.get_mut(rel) {
            Some(v) => *v = self.clock,
            None => {
                self.relations.insert(rel.to_string(), self.clock);
            }
        }
        if let Some(journal) = self.journal.as_mut() {
            journal.push((rel.to_string(), vec![oid.0]));
        }
    }

    /// Advance the clock and stamp every given oid plus the relation —
    /// used when a whole relation is dropped.
    pub(crate) fn bump_all(&mut self, rel: &str, oids: impl Iterator<Item = Oid>) {
        self.clock += 1;
        let mut stamped = Vec::new();
        for oid in oids {
            self.objects.insert(oid.0, self.clock);
            stamped.push(oid.0);
        }
        self.relations.insert(rel.to_string(), self.clock);
        if let Some(journal) = self.journal.as_mut() {
            journal.push((rel.to_string(), stamped));
        }
    }

    /// Start journaling ticks (idempotent). Only durable databases pay
    /// the recording cost; everyone else keeps `journal = None`.
    pub(crate) fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Drain the recorded ticks since the last take (empty when
    /// journaling is off).
    pub(crate) fn take_journal(&mut self) -> Vec<(String, Vec<u64>)> {
        self.journal
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// True when journaling is on and ticks have accumulated since the
    /// last [`VersionMap::take_journal`].
    pub(crate) fn journal_pending(&self) -> bool {
        self.journal.as_ref().is_some_and(|j| !j.is_empty())
    }

    /// Replay one recorded tick exactly as [`VersionMap::bump_all`]
    /// applied it — one clock advance, stamping `oids` and `rel` — but
    /// without re-journaling it.
    pub(crate) fn apply_recorded(&mut self, rel: &str, oids: &[u64]) {
        self.clock += 1;
        for &oid in oids {
            self.objects.insert(oid, self.clock);
        }
        self.relations.insert(rel.to_string(), self.clock);
    }

    /// Current clock value.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Version of an object; 0 means it has never been written here.
    pub fn object(&self, oid: Oid) -> u64 {
        self.objects.get(&oid.0).copied().unwrap_or(0)
    }

    /// Version of a relation; 0 means it has never been mutated.
    pub fn relation(&self, rel: &str) -> u64 {
        self.relations.get(rel).copied().unwrap_or(0)
    }

    /// A copy of the counters with journaling off — what a pinned read
    /// view freezes. The live map may be mid-journal (ticks not yet
    /// drained into the WAL); the copy must never re-log them.
    pub(crate) fn clone_counters(&self) -> VersionMap {
        VersionMap {
            clock: self.clock,
            relations: self.relations.clone(),
            objects: self.objects.clone(),
            journal: None,
        }
    }

    /// A point-in-time copy of the counters.
    pub(crate) fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            clock: self.clock,
            object_versions: self.objects.clone(),
            relation_versions: self.relations.clone(),
        }
    }
}

/// A point-in-time view of the store's version counters — the lightweight
/// MVCC snapshot a consumer captures before computing something from
/// stored objects. Comparing a snapshot entry with the live counter is a
/// single integer comparison, so validating a derived result costs O(1)
/// per input regardless of how much history has accumulated since.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// Clock value at capture time.
    pub clock: u64,
    /// OID → version at capture time.
    pub object_versions: BTreeMap<u64, u64>,
    /// Relation name → version at capture time.
    pub relation_versions: BTreeMap<String, u64>,
}

impl StoreSnapshot {
    /// Version of an object at capture time (0 = never written).
    pub fn object_version(&self, oid: Oid) -> u64 {
        self.object_versions.get(&oid.0).copied().unwrap_or(0)
    }

    /// Version of a relation at capture time (0 = never mutated).
    pub fn relation_version(&self, rel: &str) -> u64 {
        self.relation_versions.get(rel).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_monotone_per_object_and_relation() {
        let mut v = VersionMap::default();
        assert_eq!(v.object(Oid(1)), 0);
        assert_eq!(v.relation("r"), 0);
        v.bump("r", Oid(1));
        v.bump("r", Oid(2));
        assert_eq!(v.object(Oid(1)), 1);
        assert_eq!(v.object(Oid(2)), 2);
        assert_eq!(v.relation("r"), 2);
        v.bump("s", Oid(1));
        assert_eq!(v.object(Oid(1)), 3);
        assert_eq!(v.relation("r"), 2);
        assert_eq!(v.relation("s"), 3);
        assert_eq!(v.clock(), 3);
    }

    #[test]
    fn snapshot_is_a_frozen_view() {
        let mut v = VersionMap::default();
        v.bump("r", Oid(1));
        let snap = v.snapshot();
        v.bump("r", Oid(1));
        assert_eq!(snap.object_version(Oid(1)), 1);
        assert_eq!(v.object(Oid(1)), 2);
        assert_eq!(snap.relation_version("r"), 1);
        assert_eq!(snap.object_version(Oid(99)), 0);
    }

    #[test]
    fn bump_all_stamps_every_oid_in_one_tick() {
        let mut v = VersionMap::default();
        v.bump("r", Oid(1));
        v.bump_all("r", [Oid(1), Oid(2)].into_iter());
        assert_eq!(v.object(Oid(1)), 2);
        assert_eq!(v.object(Oid(2)), 2);
        assert_eq!(v.relation("r"), 2);
    }

    #[test]
    fn journal_replay_reproduces_the_exact_counters() {
        let mut live = VersionMap::default();
        live.enable_journal();
        live.bump("r", Oid(1));
        live.bump_all("s", [Oid(2), Oid(3)].into_iter());
        live.bump("r", Oid(1));
        live.bump_all("t", std::iter::empty());
        assert!(live.journal_pending());
        let ticks = live.take_journal();
        assert!(!live.journal_pending());
        assert_eq!(ticks.len(), 4);

        let mut replayed = VersionMap::default();
        for (rel, oids) in &ticks {
            replayed.apply_recorded(rel, oids);
        }
        assert_eq!(replayed.clock(), live.clock());
        for oid in [1, 2, 3] {
            assert_eq!(replayed.object(Oid(oid)), live.object(Oid(oid)));
        }
        for rel in ["r", "s", "t"] {
            assert_eq!(replayed.relation(rel), live.relation(rel));
        }
    }
}
