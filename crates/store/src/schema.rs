//! Relation schemas.
//!
//! A schema is an ordered list of typed, named fields. It validates tuples
//! at insert/update time — the store-level counterpart of Gaea's class
//! attribute lists (which the kernel lowers onto relations).

use crate::error::{StoreError, StoreResult};
use crate::tuple::Tuple;
use gaea_adt::TypeTag;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (unique within the schema).
    pub name: String,
    /// Column type.
    pub tag: TypeTag,
    /// If false, `Value::Null` is rejected.
    pub nullable: bool,
}

impl Field {
    /// Non-nullable field.
    pub fn required(name: &str, tag: TypeTag) -> Field {
        Field {
            name: name.into(),
            tag,
            nullable: false,
        }
    }

    /// Nullable field.
    pub fn optional(name: &str, tag: TypeTag) -> Field {
        Field {
            name: name.into(),
            tag,
            nullable: true,
        }
    }
}

/// An ordered field list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> StoreResult<Schema> {
        for i in 0..fields.len() {
            for j in (i + 1)..fields.len() {
                if fields[i].name == fields[j].name {
                    return Err(StoreError::SchemaViolation(format!(
                        "duplicate column {}",
                        fields[i].name
                    )));
                }
            }
        }
        Ok(Schema { fields })
    }

    /// Columns in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Position of a column by name.
    pub fn position(&self, name: &str) -> StoreResult<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StoreError::NoSuchColumn(name.into()))
    }

    /// Validate a tuple against this schema.
    pub fn validate(&self, tuple: &Tuple) -> StoreResult<()> {
        if tuple.arity() != self.arity() {
            return Err(StoreError::SchemaViolation(format!(
                "tuple arity {} vs schema arity {}",
                tuple.arity(),
                self.arity()
            )));
        }
        for (i, field) in self.fields.iter().enumerate() {
            let v = tuple.get(i);
            if v.is_null() {
                if !field.nullable {
                    return Err(StoreError::SchemaViolation(format!(
                        "null in non-nullable column {}",
                        field.name
                    )));
                }
                continue;
            }
            let tag = v.type_tag();
            if !field.tag.accepts(&tag) {
                return Err(StoreError::SchemaViolation(format!(
                    "column {} expects {}, got {}",
                    field.name, field.tag, tag
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.tag)?;
            if field.nullable {
                write!(f, "?")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_adt::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("area", TypeTag::Char16),
            Field::required("resolution", TypeTag::Float4),
            Field::optional("numclass", TypeTag::Int4),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(Schema::new(vec![
            Field::required("x", TypeTag::Int4),
            Field::required("x", TypeTag::Int4),
        ])
        .is_err());
    }

    #[test]
    fn validates_matching_tuple() {
        let s = schema();
        let t = Tuple::new(vec![
            Value::Char16("africa".into()),
            Value::Float4(30.0),
            Value::Int4(12),
        ]);
        assert!(s.validate(&t).is_ok());
    }

    #[test]
    fn nullability_enforced() {
        let s = schema();
        let ok = Tuple::new(vec![
            Value::Char16("africa".into()),
            Value::Float4(30.0),
            Value::Null,
        ]);
        assert!(s.validate(&ok).is_ok());
        let bad = Tuple::new(vec![Value::Null, Value::Float4(30.0), Value::Null]);
        assert!(s.validate(&bad).is_err());
    }

    #[test]
    fn wrong_type_rejected() {
        let s = schema();
        let bad = Tuple::new(vec![
            Value::Char16("africa".into()),
            Value::Text("not a float".into()),
            Value::Null,
        ]);
        let err = s.validate(&bad).unwrap_err();
        assert!(err.to_string().contains("resolution"));
    }

    #[test]
    fn wrong_arity_rejected() {
        let s = schema();
        assert!(s.validate(&Tuple::new(vec![Value::Int4(1)])).is_err());
    }

    #[test]
    fn position_lookup() {
        let s = schema();
        assert_eq!(s.position("numclass").unwrap(), 2);
        assert!(s.position("missing").is_err());
    }

    #[test]
    fn display() {
        assert_eq!(
            schema().to_string(),
            "(area: char16, resolution: float4, numclass: int4?)"
        );
    }
}
