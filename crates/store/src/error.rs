//! Error type for the storage substrate.

use std::fmt;

/// Errors raised by the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Relation lookup failure.
    NoSuchRelation(String),
    /// Relation already exists.
    DuplicateRelation(String),
    /// OID not present in the target relation.
    NoSuchTuple(u64),
    /// Tuple shape/types do not match the relation schema.
    SchemaViolation(String),
    /// Column name not in the schema.
    NoSuchColumn(String),
    /// Index already exists / missing.
    IndexError(String),
    /// Snapshot I/O failure.
    Io(String),
    /// Snapshot encode/decode failure.
    Codec(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchRelation(n) => write!(f, "no such relation: {n}"),
            StoreError::DuplicateRelation(n) => write!(f, "relation already exists: {n}"),
            StoreError::NoSuchTuple(oid) => write!(f, "no tuple with oid {oid}"),
            StoreError::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
            StoreError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            StoreError::IndexError(msg) => write!(f, "index error: {msg}"),
            StoreError::Io(msg) => write!(f, "io error: {msg}"),
            StoreError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e.to_string())
    }
}

/// Convenience alias.
pub type StoreResult<T> = Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            StoreError::NoSuchRelation("tasks".into()).to_string(),
            "no such relation: tasks"
        );
        assert_eq!(
            StoreError::NoSuchTuple(9).to_string(),
            "no tuple with oid 9"
        );
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
    }
}
