//! Slotted heap storage with free-slot reuse.
//!
//! A heap stores `(Oid, Tuple)` pairs in slots; deletion leaves a free slot
//! that later inserts reuse. An OID→slot map gives O(1) point lookups, and
//! scans walk the slot array in storage order.

use crate::error::{StoreError, StoreResult};
use crate::oid::Oid;
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Slotted tuple storage.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Heap {
    slots: Vec<Option<(Oid, Tuple)>>,
    free: Vec<usize>,
    #[serde(skip)]
    by_oid: HashMap<u64, usize>,
    /// Kept in sync eagerly; rebuilt after deserialization.
    len: usize,
}

impl Heap {
    /// Empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Rebuild the OID map (after snapshot load).
    pub fn rebuild_index(&mut self) {
        self.by_oid.clear();
        self.len = 0;
        for (slot, entry) in self.slots.iter().enumerate() {
            if let Some((oid, _)) = entry {
                self.by_oid.insert(oid.0, slot);
                self.len += 1;
            }
        }
    }

    /// Live tuple count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no live tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert under a caller-allocated OID.
    pub fn insert(&mut self, oid: Oid, tuple: Tuple) -> StoreResult<()> {
        if self.by_oid.contains_key(&oid.0) {
            return Err(StoreError::SchemaViolation(format!(
                "oid {oid} already present"
            )));
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some((oid, tuple));
                s
            }
            None => {
                self.slots.push(Some((oid, tuple)));
                self.slots.len() - 1
            }
        };
        self.by_oid.insert(oid.0, slot);
        self.len += 1;
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, oid: Oid) -> StoreResult<&Tuple> {
        let slot = self
            .by_oid
            .get(&oid.0)
            .ok_or(StoreError::NoSuchTuple(oid.0))?;
        Ok(&self.slots[*slot].as_ref().expect("live slot").1)
    }

    /// True if present.
    pub fn contains(&self, oid: Oid) -> bool {
        self.by_oid.contains_key(&oid.0)
    }

    /// Remove, returning the tuple.
    pub fn delete(&mut self, oid: Oid) -> StoreResult<Tuple> {
        let slot = self
            .by_oid
            .remove(&oid.0)
            .ok_or(StoreError::NoSuchTuple(oid.0))?;
        let (_, tuple) = self.slots[slot].take().expect("live slot");
        self.free.push(slot);
        self.len -= 1;
        Ok(tuple)
    }

    /// Replace, returning the old tuple.
    pub fn update(&mut self, oid: Oid, tuple: Tuple) -> StoreResult<Tuple> {
        let slot = self
            .by_oid
            .get(&oid.0)
            .ok_or(StoreError::NoSuchTuple(oid.0))?;
        let entry = self.slots[*slot].as_mut().expect("live slot");
        Ok(std::mem::replace(&mut entry.1, tuple))
    }

    /// Iterate live tuples in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &Tuple)> {
        self.slots
            .iter()
            .filter_map(|e| e.as_ref().map(|(oid, t)| (*oid, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_adt::Value;

    fn t(v: i32) -> Tuple {
        Tuple::new(vec![Value::Int4(v)])
    }

    #[test]
    fn insert_get_delete() {
        let mut h = Heap::new();
        h.insert(Oid(1), t(10)).unwrap();
        h.insert(Oid(2), t(20)).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(Oid(1)).unwrap().get(0), &Value::Int4(10));
        let gone = h.delete(Oid(1)).unwrap();
        assert_eq!(gone.get(0), &Value::Int4(10));
        assert!(h.get(Oid(1)).is_err());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut h = Heap::new();
        h.insert(Oid(1), t(1)).unwrap();
        h.insert(Oid(2), t(2)).unwrap();
        h.delete(Oid(1)).unwrap();
        h.insert(Oid(3), t(3)).unwrap();
        // Slot vector did not grow: reused slot 0.
        assert_eq!(h.slots.len(), 2);
        assert_eq!(h.len(), 2);
        let oids: Vec<u64> = h.iter().map(|(o, _)| o.0).collect();
        assert_eq!(oids, vec![3, 2]); // storage order, slot 0 first
    }

    #[test]
    fn duplicate_oid_rejected() {
        let mut h = Heap::new();
        h.insert(Oid(1), t(1)).unwrap();
        assert!(h.insert(Oid(1), t(2)).is_err());
    }

    #[test]
    fn update_replaces() {
        let mut h = Heap::new();
        h.insert(Oid(1), t(1)).unwrap();
        let old = h.update(Oid(1), t(9)).unwrap();
        assert_eq!(old.get(0), &Value::Int4(1));
        assert_eq!(h.get(Oid(1)).unwrap().get(0), &Value::Int4(9));
        assert!(h.update(Oid(99), t(0)).is_err());
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut h = Heap::new();
        h.insert(Oid(5), t(50)).unwrap();
        h.insert(Oid(6), t(60)).unwrap();
        h.delete(Oid(5)).unwrap();
        // Simulate snapshot round trip losing the skip-serialized map.
        let json = serde_json::to_string(&h).unwrap();
        let mut back: Heap = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.len(), 1);
        assert!(back.get(Oid(6)).is_ok());
        assert!(back.get(Oid(5)).is_err());
    }
}
