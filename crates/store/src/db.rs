//! The database: named relations plus a shared OID allocator.

use crate::error::{StoreError, StoreResult};
use crate::grid::GridIndex;
use crate::heap::Heap;
use crate::index::OrderedIndex;
use crate::oid::{Oid, OidAllocator};
use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::stats::{ColumnStats, TableStats};
use crate::tuple::Tuple;
use crate::txn::Txn;
use crate::version::{StoreSnapshot, VersionMap};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One typed relation: schema + heap + eagerly maintained indexes,
/// spatial grids, and optimizer statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    heap: Heap,
    indexes: Vec<OrderedIndex>,
    #[serde(default)]
    grids: Vec<GridIndex>,
    #[serde(default)]
    stats: TableStats,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: Schema) -> Relation {
        Relation {
            schema,
            heap: Heap::new(),
            indexes: Vec::new(),
            grids: Vec::new(),
            stats: TableStats::default(),
        }
    }

    /// The relation schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Live tuple count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert a validated tuple under `oid`.
    pub(crate) fn insert(&mut self, oid: Oid, tuple: Tuple) -> StoreResult<()> {
        self.schema.validate(&tuple)?;
        // Heap first: a duplicate-OID failure must not leave stale
        // index or grid entries behind.
        self.heap.insert(oid, tuple)?;
        let tuple = self.heap.get(oid).expect("just inserted");
        for idx in &mut self.indexes {
            idx.insert(tuple.get(idx.column).clone(), oid);
        }
        for grid in &mut self.grids {
            if let Some(b) = tuple.get(grid.column).as_geobox() {
                grid.insert(&b, oid);
            }
        }
        self.refresh_stats();
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, oid: Oid) -> StoreResult<&Tuple> {
        self.heap.get(oid)
    }

    /// True if the OID is live here.
    pub fn contains(&self, oid: Oid) -> bool {
        self.heap.contains(oid)
    }

    /// Delete, returning the old tuple.
    pub(crate) fn delete(&mut self, oid: Oid) -> StoreResult<Tuple> {
        let tuple = self.heap.delete(oid)?;
        for idx in &mut self.indexes {
            idx.remove(tuple.get(idx.column), oid);
        }
        for grid in &mut self.grids {
            if let Some(b) = tuple.get(grid.column).as_geobox() {
                grid.remove(&b, oid);
            }
        }
        self.refresh_stats();
        Ok(tuple)
    }

    /// Update, returning the old tuple.
    pub(crate) fn update(&mut self, oid: Oid, tuple: Tuple) -> StoreResult<Tuple> {
        self.schema.validate(&tuple)?;
        // Maintain indexes and grids: remove old keys, insert new.
        let old = self.heap.get(oid)?.clone();
        for idx in &mut self.indexes {
            idx.remove(old.get(idx.column), oid);
            idx.insert(tuple.get(idx.column).clone(), oid);
        }
        for grid in &mut self.grids {
            if let Some(b) = old.get(grid.column).as_geobox() {
                grid.remove(&b, oid);
            }
            if let Some(b) = tuple.get(grid.column).as_geobox() {
                grid.insert(&b, oid);
            }
        }
        let out = self.heap.update(oid, tuple);
        self.refresh_stats();
        out
    }

    /// Predicate scan in storage order. The predicate is compiled to
    /// column positions once, so evaluation does no per-tuple string
    /// lookups.
    pub fn scan(&self, pred: &Predicate) -> StoreResult<Vec<(Oid, &Tuple)>> {
        let compiled = pred.compile(&self.schema)?;
        let mut out = Vec::new();
        for (oid, tuple) in self.heap.iter() {
            if compiled.matches(tuple) {
                out.push((oid, tuple));
            }
        }
        Ok(out)
    }

    /// OID-only predicate scan in storage order — no tuple clones, for
    /// cardinality checks and access-path candidate sets.
    pub fn scan_oids(&self, pred: &Predicate) -> StoreResult<Vec<Oid>> {
        let compiled = pred.compile(&self.schema)?;
        let mut out = Vec::new();
        for (oid, tuple) in self.heap.iter() {
            if compiled.matches(tuple) {
                out.push(oid);
            }
        }
        Ok(out)
    }

    /// Count matching tuples without materializing anything.
    pub fn count(&self, pred: &Predicate) -> StoreResult<u64> {
        let compiled = pred.compile(&self.schema)?;
        let mut n = 0u64;
        for (_, tuple) in self.heap.iter() {
            if compiled.matches(tuple) {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Full iteration.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &Tuple)> {
        self.heap.iter()
    }

    /// Create an ordered index on a column (backfills existing tuples).
    pub fn create_index(&mut self, column: &str) -> StoreResult<()> {
        let pos = self.schema.position(column)?;
        if self.indexes.iter().any(|i| i.column == pos) {
            return Err(StoreError::IndexError(format!(
                "index on {column} already exists"
            )));
        }
        let mut idx = OrderedIndex::new(pos);
        for (oid, tuple) in self.heap.iter() {
            idx.insert(tuple.get(pos).clone(), oid);
        }
        self.indexes.push(idx);
        self.refresh_stats();
        Ok(())
    }

    /// Create a uniform spatial grid on a GeoBox column (backfills
    /// existing tuples; non-box values are simply not registered).
    pub fn create_grid(&mut self, column: &str, cell: f64) -> StoreResult<()> {
        let pos = self.schema.position(column)?;
        if self.grids.iter().any(|g| g.column == pos) {
            return Err(StoreError::IndexError(format!(
                "grid on {column} already exists"
            )));
        }
        let mut grid = GridIndex::new(pos, cell);
        for (oid, tuple) in self.heap.iter() {
            if let Some(b) = tuple.get(pos).as_geobox() {
                grid.insert(&b, oid);
            }
        }
        self.grids.push(grid);
        Ok(())
    }

    /// The ordered index on a column position, if one exists.
    pub fn index_for(&self, pos: usize) -> Option<&OrderedIndex> {
        self.indexes.iter().find(|i| i.column == pos)
    }

    /// The spatial grid on a column position, if one exists.
    pub fn grid_for(&self, pos: usize) -> Option<&GridIndex> {
        self.grids.iter().find(|g| g.column == pos)
    }

    /// All spatial grids on this relation.
    pub fn grids(&self) -> impl Iterator<Item = &GridIndex> {
        self.grids.iter()
    }

    /// Rebuild the grid on a column position with a new cell size —
    /// used when the tuned size has gone stale (e.g. a grid created on
    /// a then-empty extent whose fallback cell is now dwarfed by the
    /// stored boxes, pushing everything onto the oversize list).
    pub fn retune_grid(&mut self, pos: usize, cell: f64) -> StoreResult<()> {
        let Some(slot) = self.grids.iter_mut().find(|g| g.column == pos) else {
            return Err(StoreError::IndexError(format!(
                "no grid on column position {pos}"
            )));
        };
        let mut grid = GridIndex::new(pos, cell);
        for (oid, tuple) in self.heap.iter() {
            if let Some(b) = tuple.get(pos).as_geobox() {
                grid.insert(&b, oid);
            }
        }
        *slot = grid;
        Ok(())
    }

    /// Candidate OIDs for a spatial window through the grid on `column`.
    /// Candidates may be false positives; re-filter with the real
    /// intersection predicate.
    pub fn grid_probe(&self, column: &str, window: &gaea_adt::GeoBox) -> StoreResult<Vec<Oid>> {
        let pos = self.schema.position(column)?;
        let grid = self
            .grid_for(pos)
            .ok_or_else(|| StoreError::IndexError(format!("no grid on {column}")))?;
        Ok(grid.probe(window))
    }

    /// Optimizer statistics (cardinality + per-indexed-column figures).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Recompute stats from the heap and indexes. Cheap: every figure
    /// is already maintained by the index B-trees.
    fn refresh_stats(&mut self) {
        self.stats.rows = self.heap.len() as u64;
        self.stats.columns = self
            .indexes
            .iter()
            .map(|idx| ColumnStats {
                column: idx.column,
                distinct: idx.distinct_keys() as u64,
                min: idx.min_key().cloned(),
                max: idx.max_key().cloned(),
            })
            .collect();
    }

    /// Exact-match lookup through an index, if one exists on the column.
    pub fn index_lookup(&self, column: &str, key: &gaea_adt::Value) -> StoreResult<Vec<Oid>> {
        let pos = self.schema.position(column)?;
        let idx = self
            .indexes
            .iter()
            .find(|i| i.column == pos)
            .ok_or_else(|| StoreError::IndexError(format!("no index on {column}")))?;
        Ok(idx.lookup(key).to_vec())
    }

    /// Inclusive range lookup through an index.
    pub fn index_range(
        &self,
        column: &str,
        lo: Option<&gaea_adt::Value>,
        hi: Option<&gaea_adt::Value>,
    ) -> StoreResult<Vec<Oid>> {
        let pos = self.schema.position(column)?;
        let idx = self
            .indexes
            .iter()
            .find(|i| i.column == pos)
            .ok_or_else(|| StoreError::IndexError(format!("no index on {column}")))?;
        Ok(idx.range(lo, hi))
    }

    /// Rebuild heap OID map, all indexes, grids, and stats (after
    /// snapshot load).
    pub(crate) fn rebuild(&mut self) {
        self.heap.rebuild_index();
        let columns: Vec<usize> = self.indexes.iter().map(|i| i.column).collect();
        self.indexes.clear();
        for pos in columns {
            let mut idx = OrderedIndex::new(pos);
            for (oid, tuple) in self.heap.iter() {
                idx.insert(tuple.get(pos).clone(), oid);
            }
            self.indexes.push(idx);
        }
        let grid_specs: Vec<(usize, f64)> = self.grids.iter().map(|g| (g.column, g.cell)).collect();
        self.grids.clear();
        for (pos, cell) in grid_specs {
            let mut grid = GridIndex::new(pos, cell);
            for (oid, tuple) in self.heap.iter() {
                if let Some(b) = tuple.get(pos).as_geobox() {
                    grid.insert(&b, oid);
                }
            }
            self.grids.push(grid);
        }
        self.refresh_stats();
    }
}

/// The embedded database: named relations + a shared OID allocator +
/// MVCC version counters ([`VersionMap`]) stamped on every mutation.
#[derive(Debug)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    allocator: OidAllocator,
    versions: VersionMap,
}

impl Database {
    /// Fresh, empty database.
    pub fn new() -> Database {
        Database {
            relations: BTreeMap::new(),
            allocator: OidAllocator::new(),
            versions: VersionMap::default(),
        }
    }

    /// Create a relation.
    pub fn create_relation(&mut self, name: &str, schema: Schema) -> StoreResult<()> {
        if self.relations.contains_key(name) {
            return Err(StoreError::DuplicateRelation(name.into()));
        }
        self.relations.insert(name.into(), Relation::new(schema));
        Ok(())
    }

    /// Drop a relation and all its tuples. Every live object in it gets a
    /// final version bump — dropping data is a mutation observers of those
    /// objects must be able to detect.
    pub fn drop_relation(&mut self, name: &str) -> StoreResult<()> {
        let rel = self
            .relations
            .remove(name)
            .ok_or_else(|| StoreError::NoSuchRelation(name.into()))?;
        self.versions.bump_all(name, rel.iter().map(|(oid, _)| oid));
        Ok(())
    }

    /// Borrow a relation.
    pub fn relation(&self, name: &str) -> StoreResult<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| StoreError::NoSuchRelation(name.into()))
    }

    /// Mutably borrow a relation.
    pub fn relation_mut(&mut self, name: &str) -> StoreResult<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchRelation(name.into()))
    }

    /// Relation names in order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Allocate a fresh OID.
    pub fn allocate_oid(&self) -> Oid {
        self.allocator.allocate()
    }

    /// Autocommit insert: allocates an OID, validates, inserts, bumps
    /// the object's and relation's version.
    pub fn insert(&mut self, rel: &str, tuple: Tuple) -> StoreResult<Oid> {
        let oid = self.allocator.allocate();
        self.relation_mut(rel)?.insert(oid, tuple)?;
        self.versions.bump(rel, oid);
        Ok(oid)
    }

    /// Insert under a pre-allocated OID (used by the kernel to give data
    /// objects and their task records the same identifier space).
    pub fn insert_with_oid(&mut self, rel: &str, oid: Oid, tuple: Tuple) -> StoreResult<()> {
        self.relation_mut(rel)?.insert(oid, tuple)?;
        self.versions.bump(rel, oid);
        Ok(())
    }

    /// Autocommit delete. The deleted object's version still advances —
    /// its counter outlives it, so a validator holding the old version
    /// sees the mismatch (and OID recycling can never alias versions).
    pub fn delete(&mut self, rel: &str, oid: Oid) -> StoreResult<Tuple> {
        let tuple = self.relation_mut(rel)?.delete(oid)?;
        self.versions.bump(rel, oid);
        Ok(tuple)
    }

    /// Autocommit update, bumping the object's and relation's version.
    pub fn update(&mut self, rel: &str, oid: Oid, tuple: Tuple) -> StoreResult<Tuple> {
        let old = self.relation_mut(rel)?.update(oid, tuple)?;
        self.versions.bump(rel, oid);
        Ok(old)
    }

    /// Current version of an object (0 = never written). O(log n).
    pub fn object_version(&self, oid: Oid) -> u64 {
        self.versions.object(oid)
    }

    /// Current version of a relation (0 = never mutated). O(log n).
    pub fn relation_version(&self, rel: &str) -> u64 {
        self.versions.relation(rel)
    }

    /// The store-wide logical clock (ticks once per mutation).
    pub fn version_clock(&self) -> u64 {
        self.versions.clock()
    }

    /// Capture a point-in-time [`StoreSnapshot`] of all version counters.
    pub fn store_snapshot(&self) -> StoreSnapshot {
        self.versions.snapshot()
    }

    /// Point lookup.
    pub fn get(&self, rel: &str, oid: Oid) -> StoreResult<&Tuple> {
        self.relation(rel)?.get(oid)
    }

    /// Predicate scan.
    pub fn scan(&self, rel: &str, pred: &Predicate) -> StoreResult<Vec<(Oid, Tuple)>> {
        Ok(self
            .relation(rel)?
            .scan(pred)?
            .into_iter()
            .map(|(oid, t)| (oid, t.clone()))
            .collect())
    }

    /// OID-only predicate scan — no tuple clones.
    pub fn scan_oids(&self, rel: &str, pred: &Predicate) -> StoreResult<Vec<Oid>> {
        self.relation(rel)?.scan_oids(pred)
    }

    /// Count matching tuples without materializing or cloning anything.
    pub fn count(&self, rel: &str, pred: &Predicate) -> StoreResult<u64> {
        self.relation(rel)?.count(pred)
    }

    /// Begin an undo-logged transaction. Uncommitted transactions roll back
    /// on drop.
    pub fn begin(&mut self) -> Txn<'_> {
        Txn::new(self)
    }

    /// Allocator state for snapshots.
    pub(crate) fn allocator_peek(&self) -> u64 {
        self.allocator.peek()
    }

    /// The next OID this database would allocate. Recorded by the
    /// write-ahead log so replay can restore the allocator exactly.
    pub fn next_oid(&self) -> u64 {
        self.allocator.peek()
    }

    /// Advance the allocator so the next allocation is `next_oid` — a
    /// no-op if the allocator is already at or past it. WAL replay calls
    /// this per logged event; the allocator only ever moves forward.
    pub fn resume_oids(&mut self, next_oid: u64) {
        if next_oid > self.allocator.peek() {
            self.allocator = OidAllocator::resume_after(next_oid - 1);
        }
    }

    /// Start recording every version tick (see
    /// [`VersionMap`]-level journaling). Durable databases only.
    pub fn enable_version_journal(&mut self) {
        self.versions.enable_journal();
    }

    /// Drain version ticks recorded since the last take.
    pub fn take_version_journal(&mut self) -> Vec<(String, Vec<u64>)> {
        self.versions.take_journal()
    }

    /// True when un-drained version ticks are pending.
    pub fn version_journal_pending(&self) -> bool {
        self.versions.journal_pending()
    }

    /// Replay a journaled version tick without bumping or re-journaling.
    pub fn replay_bumps(&mut self, bumps: &[(String, Vec<u64>)]) {
        for (rel, oids) in bumps {
            self.versions.apply_recorded(rel, oids);
        }
    }

    /// WAL replay: insert a tuple under its logged OID with no version
    /// bump — the clock history is replayed separately from the journal.
    pub fn replay_insert(&mut self, rel: &str, oid: Oid, tuple: Tuple) -> StoreResult<()> {
        self.relation_mut(rel)?.insert(oid, tuple)?;
        Ok(())
    }

    /// WAL replay: update in place, no version bump.
    pub fn replay_update(&mut self, rel: &str, oid: Oid, tuple: Tuple) -> StoreResult<()> {
        self.relation_mut(rel)?.update(oid, tuple)?;
        Ok(())
    }

    /// WAL replay: delete, no version bump.
    pub fn replay_delete(&mut self, rel: &str, oid: Oid) -> StoreResult<()> {
        self.relation_mut(rel)?.delete(oid)?;
        Ok(())
    }

    /// Restore from snapshot parts.
    pub(crate) fn from_parts(
        relations: BTreeMap<String, Relation>,
        next_oid: u64,
        versions: VersionMap,
    ) -> Database {
        let mut db = Database {
            relations,
            allocator: OidAllocator::resume_after(next_oid.saturating_sub(1)),
            versions,
        };
        for rel in db.relations.values_mut() {
            rel.rebuild();
        }
        db
    }

    /// Pin a snapshot-isolated read view: an immutable deep copy of every
    /// relation plus the version counters frozen at the same instant
    /// ([`crate::view::PinnedStore`]). Taken through `&self` under the
    /// owner's borrow discipline, so the copy is of one committed state,
    /// never a half-applied mutation. The copy's journal is off — a view
    /// replays nothing into any WAL.
    pub fn pin(&self) -> crate::view::PinnedStore {
        let db = Database {
            relations: self.relations.clone(),
            allocator: OidAllocator::resume_after(self.allocator.peek().saturating_sub(1)),
            versions: self.versions.clone_counters(),
        };
        crate::view::PinnedStore::new(db, self.store_snapshot())
    }

    /// Snapshot parts (relation map).
    pub(crate) fn relations(&self) -> &BTreeMap<String, Relation> {
        &self.relations
    }

    /// Snapshot parts (version counters).
    pub(crate) fn versions(&self) -> &VersionMap {
        &self.versions
    }
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use gaea_adt::{TypeTag, Value};

    fn db_with_rel() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "landcover",
            Schema::new(vec![
                Field::required("area", TypeTag::Char16),
                Field::required("numclass", TypeTag::Int4),
            ])
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn t(area: &str, n: i32) -> Tuple {
        Tuple::new(vec![Value::Char16(area.into()), Value::Int4(n)])
    }

    #[test]
    fn crud_cycle() {
        let mut db = db_with_rel();
        let oid = db.insert("landcover", t("africa", 12)).unwrap();
        assert_eq!(db.get("landcover", oid).unwrap().get(1), &Value::Int4(12));
        db.update("landcover", oid, t("africa", 10)).unwrap();
        assert_eq!(db.get("landcover", oid).unwrap().get(1), &Value::Int4(10));
        db.delete("landcover", oid).unwrap();
        assert!(db.get("landcover", oid).is_err());
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let mut db = db_with_rel();
        let bad = Tuple::new(vec![Value::Int4(1), Value::Int4(2)]);
        assert!(db.insert("landcover", bad.clone()).is_err());
        let oid = db.insert("landcover", t("africa", 1)).unwrap();
        assert!(db.update("landcover", oid, bad).is_err());
    }

    #[test]
    fn duplicate_and_missing_relations() {
        let mut db = db_with_rel();
        assert!(matches!(
            db.create_relation("landcover", Schema::new(vec![]).unwrap()),
            Err(StoreError::DuplicateRelation(_))
        ));
        assert!(matches!(
            db.insert("nope", t("x", 1)),
            Err(StoreError::NoSuchRelation(_))
        ));
        db.drop_relation("landcover").unwrap();
        assert!(db.drop_relation("landcover").is_err());
    }

    #[test]
    fn scan_with_predicate() {
        let mut db = db_with_rel();
        for (a, n) in [("africa", 12), ("asia", 8), ("africa", 6)] {
            db.insert("landcover", t(a, n)).unwrap();
        }
        let hits = db
            .scan(
                "landcover",
                &Predicate::Eq("area".into(), Value::Char16("africa".into())),
            )
            .unwrap();
        assert_eq!(hits.len(), 2);
        let high = db
            .scan(
                "landcover",
                &Predicate::Gt("numclass".into(), Value::Int4(7)),
            )
            .unwrap();
        assert_eq!(high.len(), 2);
    }

    #[test]
    fn index_maintenance_through_crud() {
        let mut db = db_with_rel();
        let o1 = db.insert("landcover", t("africa", 12)).unwrap();
        db.relation_mut("landcover")
            .unwrap()
            .create_index("area")
            .unwrap();
        let o2 = db.insert("landcover", t("africa", 8)).unwrap();
        let rel = db.relation("landcover").unwrap();
        assert_eq!(
            rel.index_lookup("area", &Value::Char16("africa".into()))
                .unwrap(),
            vec![o1, o2]
        );
        // Update moves the key.
        db.update("landcover", o1, t("asia", 12)).unwrap();
        let rel = db.relation("landcover").unwrap();
        assert_eq!(
            rel.index_lookup("area", &Value::Char16("africa".into()))
                .unwrap(),
            vec![o2]
        );
        assert_eq!(
            rel.index_lookup("area", &Value::Char16("asia".into()))
                .unwrap(),
            vec![o1]
        );
        // Delete removes it.
        db.delete("landcover", o2).unwrap();
        let rel = db.relation("landcover").unwrap();
        assert!(rel
            .index_lookup("area", &Value::Char16("africa".into()))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_requires_existing_column_and_uniqueness() {
        let mut db = db_with_rel();
        let rel = db.relation_mut("landcover").unwrap();
        assert!(rel.create_index("missing").is_err());
        rel.create_index("numclass").unwrap();
        assert!(rel.create_index("numclass").is_err());
        assert!(rel.index_lookup("area", &Value::Int4(0)).is_err());
    }

    #[test]
    fn versions_bump_on_insert_update_delete() {
        let mut db = db_with_rel();
        assert_eq!(db.relation_version("landcover"), 0);
        assert_eq!(db.version_clock(), 0);
        let oid = db.insert("landcover", t("africa", 12)).unwrap();
        let v_insert = db.object_version(oid);
        assert!(v_insert > 0);
        assert_eq!(db.relation_version("landcover"), v_insert);
        db.update("landcover", oid, t("africa", 10)).unwrap();
        let v_update = db.object_version(oid);
        assert!(v_update > v_insert);
        db.delete("landcover", oid).unwrap();
        let v_delete = db.object_version(oid);
        assert!(
            v_delete > v_update,
            "deletion must advance the object version"
        );
        assert_eq!(db.relation_version("landcover"), v_delete);
        assert_eq!(db.version_clock(), 3);
        // A failing write does not tick the clock.
        assert!(db
            .insert("landcover", Tuple::new(vec![Value::Int4(1)]))
            .is_err());
        assert_eq!(db.version_clock(), 3);
    }

    #[test]
    fn untouched_objects_keep_their_version() {
        let mut db = db_with_rel();
        let a = db.insert("landcover", t("africa", 1)).unwrap();
        let b = db.insert("landcover", t("asia", 2)).unwrap();
        let va = db.object_version(a);
        db.update("landcover", b, t("asia", 3)).unwrap();
        assert_eq!(db.object_version(a), va, "a was not touched");
        assert!(db.object_version(b) > va);
    }

    #[test]
    fn store_snapshot_captures_and_freezes_counters() {
        let mut db = db_with_rel();
        let oid = db.insert("landcover", t("africa", 1)).unwrap();
        let snap = db.store_snapshot();
        db.update("landcover", oid, t("africa", 2)).unwrap();
        assert_eq!(snap.object_version(oid), 1);
        assert_eq!(db.object_version(oid), 2);
        assert_eq!(snap.relation_version("landcover"), 1);
        assert_eq!(db.relation_version("landcover"), 2);
    }

    #[test]
    fn drop_relation_bumps_every_live_object() {
        let mut db = db_with_rel();
        let a = db.insert("landcover", t("africa", 1)).unwrap();
        let b = db.insert("landcover", t("asia", 2)).unwrap();
        let before = (db.object_version(a), db.object_version(b));
        db.drop_relation("landcover").unwrap();
        assert!(db.object_version(a) > before.0);
        assert!(db.object_version(b) > before.1);
    }

    #[test]
    fn retune_grid_rebuilds_with_new_cell() {
        let mut db = Database::new();
        db.create_relation(
            "scenes",
            Schema::new(vec![Field::required("ext", TypeTag::GeoBox)]).unwrap(),
        )
        .unwrap();
        // Grid created while empty: fallback cell 1.0.
        db.relation_mut("scenes")
            .unwrap()
            .create_grid("ext", 1.0)
            .unwrap();
        let boxed = |x: f64| {
            Tuple::new(vec![Value::GeoBox(gaea_adt::GeoBox::new(
                x,
                0.0,
                x + 8.0,
                8.0,
            ))])
        };
        let oids: Vec<Oid> = (0..10)
            .map(|i| db.insert("scenes", boxed(i as f64 * 10.0)).unwrap())
            .collect();
        // 8×8 boxes span 81 unit cells — all of them went oversize.
        let rel = db.relation("scenes").unwrap();
        assert_eq!(rel.grid_for(0).unwrap().oversize_len(), 10);
        // Retuned to the data's scale, probes narrow again and stay
        // maintained by subsequent mutations.
        db.relation_mut("scenes")
            .unwrap()
            .retune_grid(0, 8.0)
            .unwrap();
        let rel = db.relation("scenes").unwrap();
        assert_eq!(rel.grid_for(0).unwrap().oversize_len(), 0);
        // Probes over-approximate (cell sharing) but must narrow well
        // below the extent and cover the true hit.
        let window = gaea_adt::GeoBox::new(20.0, 1.0, 23.0, 4.0);
        let probe = rel.grid_probe("ext", &window).unwrap();
        assert!(probe.contains(&oids[2]), "{probe:?}");
        assert!(probe.len() <= 3, "{probe:?}");
        let late = db.insert("scenes", boxed(21.0)).unwrap();
        let rel = db.relation("scenes").unwrap();
        assert!(rel.grid_probe("ext", &window).unwrap().contains(&late));
        // A position without a grid refuses to retune.
        assert!(db
            .relation_mut("scenes")
            .unwrap()
            .retune_grid(5, 8.0)
            .is_err());
    }

    #[test]
    fn index_range_queries() {
        let mut db = db_with_rel();
        db.relation_mut("landcover")
            .unwrap()
            .create_index("numclass")
            .unwrap();
        let oids: Vec<Oid> = (0..10)
            .map(|i| db.insert("landcover", t("africa", i)).unwrap())
            .collect();
        let rel = db.relation("landcover").unwrap();
        let mid = rel
            .index_range("numclass", Some(&Value::Int4(3)), Some(&Value::Int4(5)))
            .unwrap();
        assert_eq!(mid, vec![oids[3], oids[4], oids[5]]);
    }
}
