//! Object identifiers.
//!
//! Postgres-style OIDs: every stored tuple (and every kernel-level entity —
//! class, concept, process, task) is named by a database-unique `Oid`.
//! Allocation is monotonic; OIDs are never reused, so a task record's
//! input/output references stay unambiguous forever (provenance requires
//! exactly this).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A database-unique object identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Oid(pub u64);

impl Oid {
    /// The invalid/sentinel OID (never allocated).
    pub const INVALID: Oid = Oid(0);

    /// True unless this is the sentinel.
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{}", self.0)
    }
}

/// Monotonic OID allocator. Thread-safe; starts at 1 (0 is the sentinel).
#[derive(Debug)]
pub struct OidAllocator {
    next: AtomicU64,
}

impl OidAllocator {
    /// Fresh allocator starting at 1.
    pub fn new() -> OidAllocator {
        OidAllocator {
            next: AtomicU64::new(1),
        }
    }

    /// Resume an allocator so it never re-issues IDs ≤ `highest_seen`.
    pub fn resume_after(highest_seen: u64) -> OidAllocator {
        OidAllocator {
            next: AtomicU64::new(highest_seen + 1),
        }
    }

    /// Allocate the next OID.
    pub fn allocate(&self) -> Oid {
        Oid(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// The next OID that would be allocated (for snapshotting).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for OidAllocator {
    fn default() -> OidAllocator {
        OidAllocator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_monotonic_and_never_zero() {
        let a = OidAllocator::new();
        let o1 = a.allocate();
        let o2 = a.allocate();
        assert!(o1.is_valid());
        assert!(o2 > o1);
        assert!(!Oid::INVALID.is_valid());
    }

    #[test]
    fn resume_skips_used_range() {
        let a = OidAllocator::resume_after(41);
        assert_eq!(a.allocate(), Oid(42));
    }

    #[test]
    fn concurrent_allocation_unique() {
        use std::sync::Arc;
        let a = Arc::new(OidAllocator::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| a.allocate().0).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }

    #[test]
    fn display() {
        assert_eq!(Oid(7).to_string(), "oid:7");
    }
}
