//! Symmetric eigendecomposition by cyclic Jacobi rotations.
//!
//! `get-eigen-vector` in the Figure 4 PCA network. Covariance and
//! correlation matrices are real symmetric, for which Jacobi is simple,
//! numerically robust, and plenty fast at band counts (n ≤ 10).

use gaea_adt::{AdtError, AdtResult, Matrix, VectorD};

/// Result of [`jacobi_eigen`]: eigenvalues in descending order with matching
/// eigenvector columns.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Column k of this matrix is the unit eigenvector for `values[k]`.
    pub vectors: Matrix,
    /// Number of Jacobi sweeps performed.
    pub sweeps: usize,
}

impl EigenDecomposition {
    /// Eigenvector k as a vector.
    pub fn vector(&self, k: usize) -> VectorD {
        VectorD::new(self.vectors.col(k))
    }

    /// Fraction of total variance carried by component k (eigenvalues must
    /// be non-negative, as for covariance matrices).
    pub fn explained(&self, k: usize) -> f64 {
        let total: f64 = self.values.iter().map(|v| v.max(0.0)).sum();
        if total == 0.0 {
            0.0
        } else {
            self.values[k].max(0.0) / total
        }
    }
}

/// Eigendecomposition of a symmetric matrix.
///
/// Errors if the matrix is not square/symmetric or the iteration fails to
/// drive the off-diagonal below tolerance within `max_sweeps`.
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize, tol: f64) -> AdtResult<EigenDecomposition> {
    if a.rows() != a.cols() {
        return Err(AdtError::ShapeMismatch(format!(
            "eigen of non-square {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if !a.is_symmetric(1e-9 * (1.0 + a.frobenius())) {
        return Err(AdtError::InvalidArgument(
            "jacobi_eigen requires a symmetric matrix".into(),
        ));
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let mut sweeps = 0;
    while m.max_off_diagonal() > tol {
        if sweeps >= max_sweeps {
            return Err(AdtError::Numeric(format!(
                "jacobi_eigen: no convergence after {max_sweeps} sweeps (off-diag {:.3e})",
                m.max_off_diagonal()
            )));
        }
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    // Extract and sort descending by eigenvalue.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m.get(i, i), i)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let values: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, (_, old_col)) in pairs.iter().enumerate() {
        // Canonical sign: make the largest-magnitude entry positive so that
        // decompositions are reproducible across runs (the paper's
        // reproducibility objective applies to numerics too).
        let col = v.col(*old_col);
        let flip = col
            .iter()
            .cloned()
            .max_by(|a, b| a.abs().total_cmp(&b.abs()))
            .map(|m| if m < 0.0 { -1.0 } else { 1.0 })
            .unwrap_or(1.0);
        for (r, value) in col.iter().enumerate().take(n) {
            vectors.set(r, new_col, value * flip);
        }
    }
    Ok(EigenDecomposition {
        values,
        vectors,
        sweeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, e: &EigenDecomposition, k: usize) -> f64 {
        // ||A v - λ v||
        let v = e.vector(k);
        let av = a.matvec(&v).unwrap();
        let lam = e.values[k];
        av.data()
            .iter()
            .zip(v.data())
            .map(|(x, y)| (x - lam * y).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_rows(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let e = jacobi_eigen(&a, 50, 1e-12).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
        // Eigenvectors are (canonically signed) unit axes.
        for k in 0..3 {
            assert!((e.vector(k).norm() - 1.0).abs() < 1e-12);
            assert!(residual(&a, &e, k) < 1e-10);
        }
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = jacobi_eigen(&a, 50, 1e-12).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // v0 ∝ (1,1)/√2
        let v0 = e.vector(0);
        assert!((v0.data()[0] - v0.data()[1]).abs() < 1e-10);
        assert!(residual(&a, &e, 0) < 1e-10);
        assert!(residual(&a, &e, 1) < 1e-10);
    }

    #[test]
    fn residuals_small_on_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for r in 0..n {
            for c in r..n {
                let v = next();
                a.set(r, c, v);
                a.set(c, r, v);
            }
        }
        let e = jacobi_eigen(&a, 100, 1e-12).unwrap();
        for k in 0..n {
            assert!(residual(&a, &e, k) < 1e-9, "component {k}");
        }
        // Eigenvalues descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]).unwrap();
        let e = jacobi_eigen(&a, 100, 1e-12).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let d = e.vector(i).dot(&e.vector(j)).unwrap();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-9, "({i},{j}) dot = {d}");
            }
        }
    }

    #[test]
    fn explained_variance_sums_to_one() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 0.5, 0.5, 1.0]).unwrap();
        let e = jacobi_eigen(&a, 50, 1e-12).unwrap();
        let total: f64 = (0..2).map(|k| e.explained(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(e.explained(0) > e.explained(1));
    }

    #[test]
    fn rejects_asymmetric_and_nonsquare() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(jacobi_eigen(&a, 50, 1e-12).is_err());
        let b = Matrix::zeros(2, 3);
        assert!(jacobi_eigen(&b, 50, 1e-12).is_err());
    }

    #[test]
    fn deterministic_sign_convention() {
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e1 = jacobi_eigen(&a, 50, 1e-12).unwrap();
        let e2 = jacobi_eigen(&a, 50, 1e-12).unwrap();
        assert_eq!(e1.vectors.data(), e2.vectors.data());
        // Largest-magnitude entry of each eigenvector is positive.
        for k in 0..2 {
            let col = e1.vector(k);
            let max = col
                .data()
                .iter()
                .cloned()
                .max_by(|a, b| a.abs().total_cmp(&b.abs()))
                .unwrap();
            assert!(max > 0.0);
        }
    }
}
