//! Spatial-grid tuning: pick a cell size for a uniform grid over a set
//! of scene extents.
//!
//! The store's `GridIndex` is exact for any cell size, but probe cost is
//! not: cells much smaller than a typical extent register every scene in
//! many cells, cells much larger degenerate toward a full scan. The
//! heuristic here is the classic one for uniform grids over roughly
//! equal-sized rectangles: cell edge ≈ the median extent edge, so a
//! typical scene lands in 1–4 cells and a scene-sized window probes a
//! handful.

use gaea_adt::GeoBox;

/// Suggest a grid cell size for extents like the ones given: the median
/// box edge length (over both axes), clamped to a positive value.
/// Returns 1.0 for an empty or fully degenerate sample.
pub fn suggest_cell_size(extents: &[GeoBox]) -> f64 {
    let mut edges: Vec<f64> = extents
        .iter()
        .flat_map(|b| [b.xmax - b.xmin, b.ymax - b.ymin])
        .filter(|e| e.is_finite() && *e > 0.0)
        .collect();
    if edges.is_empty() {
        return 1.0;
    }
    edges.sort_by(|a, b| a.partial_cmp(b).expect("finite edges"));
    edges[edges.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_edge_of_uniform_scenes() {
        let scenes: Vec<GeoBox> = (0..10)
            .map(|i| GeoBox::new(i as f64 * 10.0, 0.0, i as f64 * 10.0 + 2.0, 3.0))
            .collect();
        let cell = suggest_cell_size(&scenes);
        // Edges are 2.0 and 3.0; median is one of them.
        assert!((2.0..=3.0).contains(&cell));
    }

    #[test]
    fn degenerate_inputs_fall_back() {
        assert_eq!(suggest_cell_size(&[]), 1.0);
        let points = vec![GeoBox::new(1.0, 1.0, 1.0, 1.0)];
        assert_eq!(suggest_cell_size(&points), 1.0);
    }

    #[test]
    fn mixed_sizes_pick_middle() {
        let boxes = vec![
            GeoBox::new(0.0, 0.0, 1.0, 1.0),
            GeoBox::new(0.0, 0.0, 100.0, 100.0),
            GeoBox::new(0.0, 0.0, 10.0, 10.0),
        ];
        let cell = suggest_cell_size(&boxes);
        assert_eq!(cell, 10.0);
    }
}
