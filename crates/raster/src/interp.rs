//! Temporal interpolation (paper §2.1.5, retrieval step 2).
//!
//! "Interpolation can be used in many situations where data are missing.
//! It is a generic derivation process which is applicable to many data
//! types in many domains." In Figure 2, process P5 "might be an
//! interpolation process which derives the same concept from itself".
//!
//! Given snapshots of a class at times t₁ < t₂, linear interpolation
//! estimates the raster at any t in between; nearest-neighbour covers
//! extrapolation policies when allowed.

use gaea_adt::{AbsTime, AdtError, AdtResult, Image, PixType};

/// Per-pixel linear interpolation between two epochs.
///
/// Requires `t1 != t2` and `t` within `[min(t1,t2), max(t1,t2)]` (closed);
/// interpolation never extrapolates — the query layer falls back to
/// derivation instead, as §2.1.5 prescribes.
pub fn temporal_interp(
    img1: &Image,
    t1: AbsTime,
    img2: &Image,
    t2: AbsTime,
    t: AbsTime,
) -> AdtResult<Image> {
    if t1 == t2 {
        return Err(AdtError::InvalidArgument(
            "temporal_interp requires two distinct epochs".into(),
        ));
    }
    let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
    if t < lo || t > hi {
        return Err(AdtError::InvalidArgument(format!(
            "target time {t} outside bracketing window [{lo}, {hi}]"
        )));
    }
    let w = (t.seconds() - t1.seconds()) as f64 / (t2.seconds() - t1.seconds()) as f64;
    img1.zip_map(img2, PixType::Float8, |a, b| a * (1.0 - w) + b * w)
}

/// Pick the epoch closest to `t` from a set of (time, image) snapshots.
pub fn nearest_snapshot(
    snapshots: &[(AbsTime, Image)],
    t: AbsTime,
) -> AdtResult<&(AbsTime, Image)> {
    snapshots
        .iter()
        .min_by_key(|(st, _)| (st.seconds() - t.seconds()).abs())
        .ok_or_else(|| AdtError::InvalidArgument("no snapshots".into()))
}

/// Interpolate within a snapshot series: finds the tightest bracketing pair
/// around `t` and interpolates linearly. Exact hits return a clone. Fails if
/// `t` falls outside the series' span (no extrapolation).
pub fn series_interp(snapshots: &[(AbsTime, Image)], t: AbsTime) -> AdtResult<Image> {
    if snapshots.is_empty() {
        return Err(AdtError::InvalidArgument("no snapshots".into()));
    }
    if let Some((_, img)) = snapshots.iter().find(|(st, _)| *st == t) {
        return Ok(img.clone());
    }
    let mut before: Option<&(AbsTime, Image)> = None;
    let mut after: Option<&(AbsTime, Image)> = None;
    for snap in snapshots {
        if snap.0 < t {
            if before.is_none_or(|b| snap.0 > b.0) {
                before = Some(snap);
            }
        } else if after.is_none_or(|a| snap.0 < a.0) {
            after = Some(snap);
        }
    }
    match (before, after) {
        (Some(b), Some(a)) => temporal_interp(&b.1, b.0, &a.1, a.0, t),
        _ => Err(AdtError::InvalidArgument(format!(
            "time {t} is not bracketed by the stored series"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(d: i64) -> AbsTime {
        AbsTime(d * 86_400)
    }

    #[test]
    fn midpoint_is_average() {
        let a = Image::from_f64(1, 2, vec![0.0, 10.0]).unwrap();
        let b = Image::from_f64(1, 2, vec![10.0, 30.0]).unwrap();
        let m = temporal_interp(&a, day(0), &b, day(10), day(5)).unwrap();
        assert_eq!(m.to_f64_vec(), vec![5.0, 20.0]);
    }

    #[test]
    fn endpoint_weights() {
        let a = Image::from_f64(1, 1, vec![2.0]).unwrap();
        let b = Image::from_f64(1, 1, vec![8.0]).unwrap();
        assert_eq!(
            temporal_interp(&a, day(0), &b, day(4), day(0))
                .unwrap()
                .get(0, 0),
            2.0
        );
        assert_eq!(
            temporal_interp(&a, day(0), &b, day(4), day(4))
                .unwrap()
                .get(0, 0),
            8.0
        );
        assert_eq!(
            temporal_interp(&a, day(0), &b, day(4), day(1))
                .unwrap()
                .get(0, 0),
            3.5
        );
    }

    #[test]
    fn reversed_epoch_order_accepted() {
        let a = Image::from_f64(1, 1, vec![2.0]).unwrap();
        let b = Image::from_f64(1, 1, vec![8.0]).unwrap();
        // img1 at the *later* time.
        let v = temporal_interp(&b, day(4), &a, day(0), day(1)).unwrap();
        assert_eq!(v.get(0, 0), 3.5);
    }

    #[test]
    fn no_extrapolation() {
        let a = Image::from_f64(1, 1, vec![2.0]).unwrap();
        let b = Image::from_f64(1, 1, vec![8.0]).unwrap();
        assert!(temporal_interp(&a, day(0), &b, day(4), day(5)).is_err());
        assert!(temporal_interp(&a, day(0), &b, day(4), day(-1)).is_err());
        assert!(temporal_interp(&a, day(0), &b, day(0), day(0)).is_err());
    }

    #[test]
    fn series_interp_finds_tightest_bracket() {
        let mk = |v: f64| Image::from_f64(1, 1, vec![v]).unwrap();
        let series = vec![
            (day(0), mk(0.0)),
            (day(30), mk(30.0)),
            (day(10), mk(10.0)), // unsorted on purpose
            (day(20), mk(20.0)),
        ];
        let v = series_interp(&series, day(12)).unwrap();
        assert_eq!(v.get(0, 0), 12.0); // brackets [10, 20], not [0, 30]
    }

    #[test]
    fn series_interp_exact_hit_returns_snapshot() {
        let mk = |v: f64| Image::from_f64(1, 1, vec![v]).unwrap();
        let series = vec![(day(0), mk(1.0)), (day(10), mk(2.0))];
        assert_eq!(series_interp(&series, day(10)).unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn series_interp_rejects_out_of_span() {
        let mk = |v: f64| Image::from_f64(1, 1, vec![v]).unwrap();
        let series = vec![(day(0), mk(1.0)), (day(10), mk(2.0))];
        assert!(series_interp(&series, day(11)).is_err());
        assert!(series_interp(&[], day(5)).is_err());
    }

    #[test]
    fn nearest_snapshot_picks_closest() {
        let mk = |v: f64| Image::from_f64(1, 1, vec![v]).unwrap();
        let series = vec![(day(0), mk(1.0)), (day(10), mk(2.0)), (day(21), mk(3.0))];
        assert_eq!(nearest_snapshot(&series, day(14)).unwrap().1.get(0, 0), 2.0);
        assert_eq!(nearest_snapshot(&series, day(19)).unwrap().1.get(0, 0), 3.0);
        assert!(nearest_snapshot(&[], day(0)).is_err());
    }
}
