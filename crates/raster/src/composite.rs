//! `composite()` — band stacking (Figure 3).
//!
//! In P20 the image data of the output class is
//! `unsuperclassify(composite(bands), 12)`: `composite` assembles the input
//! band set into one multi-band stack that the classifier consumes. We
//! represent the stack as a validated, ordered `Vec<Image>` (all bands
//! co-registered, same shape); the classifier reads per-pixel feature
//! vectors across it.

use crate::stats::check_same_shape;
use gaea_adt::{AdtResult, Image};

/// Validated multi-band stack.
#[derive(Debug, Clone, PartialEq)]
pub struct BandStack {
    bands: Vec<Image>,
    nrow: u32,
    ncol: u32,
}

impl BandStack {
    /// Bands in stack order.
    pub fn bands(&self) -> &[Image] {
        &self.bands
    }

    /// Number of bands.
    pub fn depth(&self) -> usize {
        self.bands.len()
    }

    /// Raster rows.
    pub fn nrow(&self) -> u32 {
        self.nrow
    }

    /// Raster columns.
    pub fn ncol(&self) -> u32 {
        self.ncol
    }

    /// Pixels per band.
    pub fn pixels(&self) -> usize {
        self.nrow as usize * self.ncol as usize
    }

    /// The feature vector of pixel `p` (one sample per band).
    pub fn feature(&self, p: usize, out: &mut Vec<f64>) {
        out.clear();
        for b in &self.bands {
            out.push(b.get_flat(p));
        }
    }
}

/// Stack bands after validating co-registration (same shape).
///
/// The *order* of bands is preserved: composite(b1, b2, b3) and
/// composite(b3, b2, b1) are different stacks — and under Gaea's rules,
/// tasks recording them record different derivations.
pub fn composite(bands: &[&Image]) -> AdtResult<BandStack> {
    let (nrow, ncol) = check_same_shape(bands)?;
    Ok(BandStack {
        bands: bands.iter().map(|b| (*b).clone()).collect(),
        nrow,
        ncol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_adt::PixType;

    #[test]
    fn composite_validates_and_stacks() {
        let b1 = Image::filled(2, 3, PixType::Float8, 1.0);
        let b2 = Image::filled(2, 3, PixType::Float8, 2.0);
        let s = composite(&[&b1, &b2]).unwrap();
        assert_eq!(s.depth(), 2);
        assert_eq!((s.nrow(), s.ncol()), (2, 3));
        assert_eq!(s.pixels(), 6);
        let mut f = Vec::new();
        s.feature(4, &mut f);
        assert_eq!(f, vec![1.0, 2.0]);
    }

    #[test]
    fn composite_rejects_mismatched_bands() {
        let b1 = Image::zeros(2, 3, PixType::Float8);
        let b2 = Image::zeros(3, 2, PixType::Float8);
        assert!(composite(&[&b1, &b2]).is_err());
        assert!(composite(&[]).is_err());
    }

    #[test]
    fn band_order_matters() {
        let b1 = Image::filled(1, 1, PixType::Float8, 1.0);
        let b2 = Image::filled(1, 1, PixType::Float8, 2.0);
        let s12 = composite(&[&b1, &b2]).unwrap();
        let s21 = composite(&[&b2, &b1]).unwrap();
        assert_ne!(s12, s21);
    }

    #[test]
    fn mixed_pixtypes_allowed() {
        let b1 = Image::filled(2, 2, PixType::Char, 10.0);
        let b2 = Image::filled(2, 2, PixType::Float4, 0.5);
        let s = composite(&[&b1, &b2]).unwrap();
        let mut f = Vec::new();
        s.feature(0, &mut f);
        assert_eq!(f, vec![10.0, 0.5]);
    }
}
