//! # gaea-raster — the GIS analysis algorithms of the paper's examples
//!
//! Every worked example in the paper is a remote-sensing analysis:
//!
//! * Figure 3 — process P20, *unsupervised classification* of Landsat TM
//!   bands: `unsuperclassify(composite(bands), 12)` → [`classify`].
//! * Figure 4 — the *PCA* compound operator network
//!   (`convert-image-matrix → compute-covariance → get-eigen-vector →
//!   linear-combination → convert-matrix-image`) → [`mod@pca`], [`eigen`],
//!   [`convert`], plus *SPCA* (standardized PCA, Eastman 1992) for the
//!   vegetation-change comparison of §2.1.3.
//! * Figure 5 — *land-change detection*, a compound process chaining
//!   rectification, classification and SPCA → [`rectify`], [`change`].
//! * §1 — the two-scientists scenario: NDVI differencing vs ratioing →
//!   [`mod@ndvi`], [`change`].
//! * §2.1.5 — *interpolation* as a generic derivation step → [`interp`].
//! * §4.3 — *supervised classification*, the paper's example of a process
//!   needing scientist interaction mid-task → [`supervised`] (the kernel's
//!   interactive sessions supply the training signatures).
//!
//! [`ops::register_raster_ops`] contributes all of these to a
//! `gaea_adt::OperatorRegistry` so that process templates and dataflow
//! networks can call them by name; `pca`/`spca` are registered as *compound*
//! operators built from the Figure 4 primitives.

pub mod change;
pub mod classify;
pub mod composite;
pub mod convert;
pub mod eigen;
pub mod grid;
pub mod interp;
pub mod ndvi;
pub mod ops;
pub mod pca;
pub mod rectify;
pub mod stats;
pub mod subset;
pub mod supervised;

pub use change::{img_diff, img_ratio};
pub use classify::{kmeans_classify, KMeansOutcome};
pub use composite::composite;
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use grid::suggest_cell_size;
pub use ndvi::ndvi;
pub use ops::register_raster_ops;
pub use pca::{pca, spca, PcaOutcome};
pub use supervised::{
    min_distance_classify, parallelepiped_classify, signatures_from_training, SupervisedOutcome,
    TrainingSite,
};
