//! Change detection between epochs (paper §1: the two-scientists scenario).
//!
//! "One may subtract the NDVI of 1988 from that of 1989, while another
//! divides the NDVI of 1989 by that of 1988." Both functions produce a
//! 'vegetation change' image; only the recorded derivation distinguishes
//! them — which is the paper's point.

use gaea_adt::{AdtResult, Image, PixType};

/// Differencing change detection: `later − earlier`.
pub fn img_diff(later: &Image, earlier: &Image) -> AdtResult<Image> {
    later.zip_map(earlier, PixType::Float8, |a, b| a - b)
}

/// Ratioing change detection: `later / earlier` (zero denominators map to
/// 1.0 = "no change", the conventional GIS treatment).
pub fn img_ratio(later: &Image, earlier: &Image) -> AdtResult<Image> {
    later.zip_map(
        earlier,
        PixType::Float8,
        |a, b| {
            if b == 0.0 {
                1.0
            } else {
                a / b
            }
        },
    )
}

/// Summary of a change image: fraction of pixels beyond a magnitude
/// threshold, plus extrema. Used by the land-change example.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeSummary {
    /// Fraction of pixels with |value − neutral| > threshold.
    pub changed_fraction: f64,
    /// Minimum pixel value.
    pub min: f64,
    /// Maximum pixel value.
    pub max: f64,
}

/// Summarize a change image around a neutral value (0 for differences,
/// 1 for ratios).
pub fn change_summary(change: &Image, neutral: f64, threshold: f64) -> ChangeSummary {
    let mut changed = 0usize;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for i in 0..change.len() {
        let v = change.get_flat(i);
        if (v - neutral).abs() > threshold {
            changed += 1;
        }
        min = min.min(v);
        max = max.max(v);
    }
    ChangeSummary {
        changed_fraction: if change.is_empty() {
            0.0
        } else {
            changed as f64 / change.len() as f64
        },
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_and_ratio_agree_on_direction() {
        let y1988 = Image::from_f64(1, 3, vec![0.2, 0.5, 0.8]).unwrap();
        let y1989 = Image::from_f64(1, 3, vec![0.4, 0.5, 0.4]).unwrap();
        let d = img_diff(&y1989, &y1988).unwrap();
        let r = img_ratio(&y1989, &y1988).unwrap();
        // Pixel 0 greened: positive difference, ratio > 1.
        assert!(d.get(0, 0) > 0.0 && r.get(0, 0) > 1.0);
        // Pixel 1 unchanged.
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(r.get(0, 1), 1.0);
        // Pixel 2 browned.
        assert!(d.get(0, 2) < 0.0 && r.get(0, 2) < 1.0);
    }

    #[test]
    fn the_two_results_are_different_objects() {
        // The paper's scenario: same inputs, different derivations, different
        // data — indistinguishable without derivation metadata.
        let y1988 = Image::from_f64(1, 2, vec![0.2, 0.4]).unwrap();
        let y1989 = Image::from_f64(1, 2, vec![0.4, 0.2]).unwrap();
        let d = img_diff(&y1989, &y1988).unwrap();
        let r = img_ratio(&y1989, &y1988).unwrap();
        assert_ne!(d, r);
    }

    #[test]
    fn ratio_guards_zero_denominator() {
        let later = Image::from_f64(1, 2, vec![5.0, 0.0]).unwrap();
        let earlier = Image::from_f64(1, 2, vec![0.0, 0.0]).unwrap();
        let r = img_ratio(&later, &earlier).unwrap();
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(0, 1), 1.0);
    }

    #[test]
    fn summary_counts_changes() {
        let change = Image::from_f64(1, 4, vec![0.0, 0.2, -0.3, 0.05]).unwrap();
        let s = change_summary(&change, 0.0, 0.1);
        assert_eq!(s.changed_fraction, 0.5);
        assert_eq!(s.min, -0.3);
        assert_eq!(s.max, 0.2);
    }
}
