//! Geometric rectification (Figure 5: "Rectified Landsat TM").
//!
//! The land-change-detection compound process consumes *rectified* scenes:
//! raw imagery resampled into a common reference grid. We implement an
//! affine inverse-mapping resampler with bilinear interpolation — the
//! standard first-order rectification in IDRISI-era GIS.

use gaea_adt::{AdtError, AdtResult, Image, PixType};

/// A 2-D affine transform `(x, y) → (a*x + b*y + c, d*x + e*y + f)` mapping
/// *output* pixel coordinates to *input* pixel coordinates (inverse map).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    /// x' = a*x + b*y + c
    pub a: f64,
    /// see `a`
    pub b: f64,
    /// see `a`
    pub c: f64,
    /// y' = d*x + e*y + f
    pub d: f64,
    /// see `d`
    pub e: f64,
    /// see `d`
    pub f: f64,
}

impl Affine {
    /// Identity transform.
    pub fn identity() -> Affine {
        Affine {
            a: 1.0,
            b: 0.0,
            c: 0.0,
            d: 0.0,
            e: 1.0,
            f: 0.0,
        }
    }

    /// Pure translation.
    pub fn translation(dx: f64, dy: f64) -> Affine {
        Affine {
            a: 1.0,
            b: 0.0,
            c: dx,
            d: 0.0,
            e: 1.0,
            f: dy,
        }
    }

    /// Uniform scale about the origin.
    pub fn scale(s: f64) -> Affine {
        Affine {
            a: s,
            b: 0.0,
            c: 0.0,
            d: 0.0,
            e: s,
            f: 0.0,
        }
    }

    /// Rotation by `theta` radians about the origin.
    pub fn rotation(theta: f64) -> Affine {
        let (s, c) = theta.sin_cos();
        Affine {
            a: c,
            b: -s,
            c: 0.0,
            d: s,
            e: c,
            f: 0.0,
        }
    }

    /// Apply to a point (col, row) order: x = column, y = row.
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        (
            self.a * x + self.b * y + self.c,
            self.d * x + self.e * y + self.f,
        )
    }
}

/// Bilinear sample of `img` at fractional pixel coordinates; `None` outside.
fn sample_bilinear(img: &Image, x: f64, y: f64) -> Option<f64> {
    if x < 0.0 || y < 0.0 {
        return None;
    }
    let x0 = x.floor();
    let y0 = y.floor();
    let x1 = x0 + 1.0;
    let y1 = y0 + 1.0;
    let maxc = (img.ncol() - 1) as f64;
    let maxr = (img.nrow() - 1) as f64;
    if x0 > maxc || y0 > maxr {
        return None;
    }
    let fx = x - x0;
    let fy = y - y0;
    let cx0 = x0 as u32;
    let cy0 = y0 as u32;
    let cx1 = x1.min(maxc) as u32;
    let cy1 = y1.min(maxr) as u32;
    let v00 = img.get(cy0, cx0);
    let v01 = img.get(cy0, cx1);
    let v10 = img.get(cy1, cx0);
    let v11 = img.get(cy1, cx1);
    Some(
        v00 * (1.0 - fx) * (1.0 - fy)
            + v01 * fx * (1.0 - fy)
            + v10 * (1.0 - fx) * fy
            + v11 * fx * fy,
    )
}

/// Rectify `img` into an `out_rows`×`out_cols` grid through the inverse
/// affine map; out-of-source pixels are filled with `fill`.
pub fn rectify(
    img: &Image,
    transform: &Affine,
    out_rows: u32,
    out_cols: u32,
    fill: f64,
) -> AdtResult<Image> {
    if out_rows == 0 || out_cols == 0 {
        return Err(AdtError::InvalidArgument("empty rectification grid".into()));
    }
    let mut out = vec![fill; out_rows as usize * out_cols as usize];
    for r in 0..out_rows {
        for c in 0..out_cols {
            let (sx, sy) = transform.apply(c as f64, r as f64);
            if let Some(v) = sample_bilinear(img, sx, sy) {
                out[r as usize * out_cols as usize + c as usize] = v;
            }
        }
    }
    Image::zeros(out_rows, out_cols, PixType::Float8).with_samples(PixType::Float8, &out)
}

/// Bilinear resample to a new shape (spatial interpolation of §2.1.5,
/// "data interpolation (temporal or spatial)").
pub fn resample(img: &Image, out_rows: u32, out_cols: u32) -> AdtResult<Image> {
    if out_rows == 0 || out_cols == 0 {
        return Err(AdtError::InvalidArgument("empty resample grid".into()));
    }
    let sx = if out_cols == 1 {
        0.0
    } else {
        (img.ncol() - 1) as f64 / (out_cols - 1) as f64
    };
    let sy = if out_rows == 1 {
        0.0
    } else {
        (img.nrow() - 1) as f64 / (out_rows - 1) as f64
    };
    let mut out = vec![0.0; out_rows as usize * out_cols as usize];
    for r in 0..out_rows {
        for c in 0..out_cols {
            let v = sample_bilinear(img, c as f64 * sx, r as f64 * sy)
                .expect("scaled coordinates stay inside the source");
            out[r as usize * out_cols as usize + c as usize] = v;
        }
    }
    Image::zeros(out_rows, out_cols, PixType::Float8).with_samples(PixType::Float8, &out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(rows: u32, cols: u32) -> Image {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| (i % cols) as f64 + (i / cols) as f64 * 10.0)
            .collect();
        Image::from_f64(rows, cols, data).unwrap()
    }

    #[test]
    fn identity_rectification_is_noop() {
        let img = gradient(4, 5);
        let out = rectify(&img, &Affine::identity(), 4, 5, -1.0).unwrap();
        assert_eq!(out.to_f64_vec(), img.to_f64_vec());
    }

    #[test]
    fn translation_shifts_content() {
        let img = gradient(4, 4);
        // Output pixel (r, c) samples input at (c+1, r): shift left by one.
        let out = rectify(&img, &Affine::translation(1.0, 0.0), 4, 4, -1.0).unwrap();
        assert_eq!(out.get(0, 0), img.get(0, 1));
        assert_eq!(out.get(2, 1), img.get(2, 2));
        // Rightmost column falls outside the source → fill.
        assert_eq!(out.get(0, 3), -1.0);
    }

    #[test]
    fn subpixel_translation_interpolates() {
        let img = gradient(2, 2); // values 0,1 / 10,11
        let out = rectify(&img, &Affine::translation(0.5, 0.5), 1, 1, -1.0).unwrap();
        assert!((out.get(0, 0) - 5.5).abs() < 1e-12); // average of all four
    }

    #[test]
    fn rotation_preserves_center_value() {
        let img = gradient(5, 5);
        // Rotate about the raster center by composing translations.
        let t = Affine::rotation(std::f64::consts::FRAC_PI_2);
        // center (2,2): rotate (x-2, y-2) then add back.
        let centered = Affine {
            a: t.a,
            b: t.b,
            c: -2.0 * t.a - 2.0 * t.b + 2.0,
            d: t.d,
            e: t.e,
            f: -2.0 * t.d - 2.0 * t.e + 2.0,
        };
        let out = rectify(&img, &centered, 5, 5, -1.0).unwrap();
        assert_eq!(out.get(2, 2), img.get(2, 2));
    }

    #[test]
    fn resample_upscale_preserves_corners() {
        let img = gradient(3, 3);
        let out = resample(&img, 5, 5).unwrap();
        assert_eq!(out.get(0, 0), img.get(0, 0));
        assert_eq!(out.get(4, 4), img.get(2, 2));
        assert_eq!(out.get(0, 4), img.get(0, 2));
        // Midpoint is interpolated.
        assert!((out.get(2, 2) - img.get(1, 1)).abs() < 1e-9);
    }

    #[test]
    fn resample_to_single_pixel() {
        let img = gradient(3, 3);
        let out = resample(&img, 1, 1).unwrap();
        assert_eq!(out.get(0, 0), img.get(0, 0));
        assert!(resample(&img, 0, 3).is_err());
    }

    #[test]
    fn rectify_rejects_empty_grid() {
        let img = gradient(2, 2);
        assert!(rectify(&img, &Affine::identity(), 0, 2, 0.0).is_err());
    }
}
