//! Supervised classification — the paper's example of an *interactive*
//! process (§4.3 limitation 2).
//!
//! "A typical example is supervised classification. This process requires
//! interaction with the scientist before a task completes the derivation of
//! the output land cover classification data." The interaction is the
//! digitization of *training sites*: the scientist inspects a composite of
//! the input bands, outlines regions of known cover, and the classifier
//! assigns every remaining pixel to the spectrally nearest class.
//!
//! Two classic IDRISI-era supervised classifiers are provided:
//!
//! * [`min_distance_classify`] — minimum distance to class means (MINDIST),
//! * [`parallelepiped_classify`] — per-band min/max boxes (PIPED), which
//!   can leave pixels *unclassified* (label [`UNCLASSIFIED`]).
//!
//! [`signatures_from_training`] turns training sites into the spectral
//! signature matrix the classifiers consume — this is the artifact the
//! scientist supplies mid-task through the kernel's interactive sessions.

use crate::composite::BandStack;
use gaea_adt::{AdtError, AdtResult, Image, Matrix, PixType};

/// Label written by [`parallelepiped_classify`] for pixels outside every
/// class box (IDRISI writes 0; we use 255 so class 0 stays a real class).
pub const UNCLASSIFIED: f64 = 255.0;

/// Outcome of a supervised classification.
#[derive(Debug, Clone)]
pub struct SupervisedOutcome {
    /// Per-pixel class labels in `[0, k)` (plus [`UNCLASSIFIED`] for PIPED),
    /// `char`-typed like an IDRISI class map.
    pub labels: Image,
    /// Pixels assigned to each class.
    pub class_counts: Vec<u64>,
    /// Pixels assigned to no class (always 0 for MINDIST).
    pub unclassified: u64,
}

/// One training site: the class it exemplifies and the flat pixel indices
/// the scientist outlined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainingSite {
    /// Class index in `[0, k)`.
    pub class: usize,
    /// Flat pixel indices (row-major) inside the site polygon.
    pub pixels: Vec<usize>,
}

impl TrainingSite {
    /// Shorthand constructor.
    pub fn new(class: usize, pixels: Vec<usize>) -> TrainingSite {
        TrainingSite { class, pixels }
    }
}

/// Derive the k×bands signature (class-mean) matrix from training sites.
///
/// Multiple sites may exemplify the same class; their pixels pool. Every
/// class in `[0, k)` must be exemplified by at least one pixel — a class
/// the scientist forgot to train is an error, not a silent zero signature.
pub fn signatures_from_training(
    stack: &BandStack,
    k: usize,
    sites: &[TrainingSite],
) -> AdtResult<Matrix> {
    if k == 0 {
        return Err(AdtError::InvalidArgument("k must be positive".into()));
    }
    let nb = stack.depth();
    let npix = stack.pixels();
    let mut sums = vec![vec![0.0f64; nb]; k];
    let mut counts = vec![0u64; k];
    let mut feature = Vec::new();
    for site in sites {
        if site.class >= k {
            return Err(AdtError::InvalidArgument(format!(
                "training site names class {} but k = {k}",
                site.class
            )));
        }
        for &p in &site.pixels {
            if p >= npix {
                return Err(AdtError::InvalidArgument(format!(
                    "training pixel {p} outside raster of {npix} pixels"
                )));
            }
            stack.feature(p, &mut feature);
            for (b, v) in feature.iter().enumerate() {
                sums[site.class][b] += v;
            }
            counts[site.class] += 1;
        }
    }
    let mut data = Vec::with_capacity(k * nb);
    for (c, (sum, n)) in sums.iter().zip(&counts).enumerate() {
        if *n == 0 {
            return Err(AdtError::InvalidArgument(format!(
                "class {c} has no training pixels"
            )));
        }
        for s in sum {
            data.push(s / *n as f64);
        }
    }
    Matrix::from_rows(k, nb, data)
}

fn check_signatures(stack: &BandStack, signatures: &Matrix) -> AdtResult<usize> {
    let k = signatures.rows();
    if k == 0 {
        return Err(AdtError::InvalidArgument("empty signature matrix".into()));
    }
    if k > 254 {
        return Err(AdtError::InvalidArgument(
            "k must fit the char-typed class map below the UNCLASSIFIED label (k <= 254)".into(),
        ));
    }
    if signatures.cols() != stack.depth() {
        return Err(AdtError::ShapeMismatch(format!(
            "signatures cover {} band(s), stack has {}",
            signatures.cols(),
            stack.depth()
        )));
    }
    if stack.pixels() == 0 {
        return Err(AdtError::InvalidArgument("empty raster".into()));
    }
    Ok(k)
}

/// Minimum-distance-to-means classification (IDRISI MINDIST).
///
/// `signatures` is the k×bands class-mean matrix, normally produced by
/// [`signatures_from_training`] from scientist-digitized sites. Every pixel
/// is assigned to the class whose signature is nearest in Euclidean
/// spectral distance; ties break toward the lower class index, so the
/// result is a pure function of its inputs (reproducible tasks).
pub fn min_distance_classify(
    stack: &BandStack,
    signatures: &Matrix,
) -> AdtResult<SupervisedOutcome> {
    let k = check_signatures(stack, signatures)?;
    let npix = stack.pixels();
    let mut labels = vec![0.0f64; npix];
    let mut class_counts = vec![0u64; k];
    let mut feature = Vec::new();
    for (p, label) in labels.iter_mut().enumerate() {
        stack.feature(p, &mut feature);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let mut d = 0.0;
            for (b, v) in feature.iter().enumerate() {
                let diff = v - signatures.get(c, b);
                d += diff * diff;
            }
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        *label = best as f64;
        class_counts[best] += 1;
    }
    let labels = Image::zeros(stack.nrow(), stack.ncol(), PixType::Char)
        .with_samples(PixType::Char, &labels)?;
    Ok(SupervisedOutcome {
        labels,
        class_counts,
        unclassified: 0,
    })
}

/// Parallelepiped classification (IDRISI PIPED).
///
/// `lo` and `hi` are k×bands per-class box bounds (e.g. mean ± z·stddev of
/// the training pixels). A pixel inside several boxes goes to the first
/// (lowest-index) class; a pixel inside none is [`UNCLASSIFIED`].
pub fn parallelepiped_classify(
    stack: &BandStack,
    lo: &Matrix,
    hi: &Matrix,
) -> AdtResult<SupervisedOutcome> {
    let k = check_signatures(stack, lo)?;
    if hi.rows() != lo.rows() || hi.cols() != lo.cols() {
        return Err(AdtError::ShapeMismatch(format!(
            "box bounds disagree: lo {}x{}, hi {}x{}",
            lo.rows(),
            lo.cols(),
            hi.rows(),
            hi.cols()
        )));
    }
    let npix = stack.pixels();
    let mut labels = vec![0.0f64; npix];
    let mut class_counts = vec![0u64; k];
    let mut unclassified = 0u64;
    let mut feature = Vec::new();
    for (p, label) in labels.iter_mut().enumerate() {
        stack.feature(p, &mut feature);
        let hit = (0..k).find(|&c| {
            feature
                .iter()
                .enumerate()
                .all(|(b, v)| *v >= lo.get(c, b) && *v <= hi.get(c, b))
        });
        match hit {
            Some(c) => {
                *label = c as f64;
                class_counts[c] += 1;
            }
            None => {
                *label = UNCLASSIFIED;
                unclassified += 1;
            }
        }
    }
    let labels = Image::zeros(stack.nrow(), stack.ncol(), PixType::Char)
        .with_samples(PixType::Char, &labels)?;
    Ok(SupervisedOutcome {
        labels,
        class_counts,
        unclassified,
    })
}

/// Box bounds for [`parallelepiped_classify`] from training sites:
/// per-class, per-band `[mean - z·sd, mean + z·sd]`.
pub fn training_boxes(
    stack: &BandStack,
    k: usize,
    sites: &[TrainingSite],
    z: f64,
) -> AdtResult<(Matrix, Matrix)> {
    if z <= 0.0 || z.is_nan() {
        return Err(AdtError::InvalidArgument(format!(
            "z must be positive, got {z}"
        )));
    }
    let means = signatures_from_training(stack, k, sites)?;
    let nb = stack.depth();
    // Second pass for the per-class variance.
    let mut sq = vec![vec![0.0f64; nb]; k];
    let mut counts = vec![0u64; k];
    let mut feature = Vec::new();
    for site in sites {
        for &p in &site.pixels {
            stack.feature(p, &mut feature);
            for (b, v) in feature.iter().enumerate() {
                let d = v - means.get(site.class, b);
                sq[site.class][b] += d * d;
            }
            counts[site.class] += 1;
        }
    }
    let mut lo = Matrix::zeros(k, nb);
    let mut hi = Matrix::zeros(k, nb);
    for c in 0..k {
        for (b, sq_cb) in sq[c].iter().enumerate() {
            let sd = (sq_cb / counts[c].max(1) as f64).sqrt();
            lo.set(c, b, means.get(c, b) - z * sd);
            hi.set(c, b, means.get(c, b) + z * sd);
        }
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::composite;

    /// Two well-separated spectral clusters across two bands: left half
    /// ~ (10, 100), right half ~ (200, 20) — same scene as the k-means
    /// tests so the two classifiers can be compared.
    fn two_cluster_stack() -> BandStack {
        let mut b1 = vec![0.0; 16];
        let mut b2 = vec![0.0; 16];
        for r in 0..4 {
            for c in 0..4 {
                let i = r * 4 + c;
                if c < 2 {
                    b1[i] = 10.0 + (i % 3) as f64;
                    b2[i] = 100.0 + (i % 2) as f64;
                } else {
                    b1[i] = 200.0 - (i % 3) as f64;
                    b2[i] = 20.0 + (i % 2) as f64;
                }
            }
        }
        let i1 = Image::from_f64(4, 4, b1).unwrap();
        let i2 = Image::from_f64(4, 4, b2).unwrap();
        composite(&[&i1, &i2]).unwrap()
    }

    /// One small training site per cluster: pixels (0,0),(1,0) for class 0
    /// (left), (0,3),(1,3) for class 1 (right).
    fn sites() -> Vec<TrainingSite> {
        vec![
            TrainingSite::new(0, vec![0, 4]),
            TrainingSite::new(1, vec![3, 7]),
        ]
    }

    #[test]
    fn signatures_pool_training_pixels() {
        let stack = two_cluster_stack();
        let sig = signatures_from_training(&stack, 2, &sites()).unwrap();
        assert_eq!((sig.rows(), sig.cols()), (2, 2));
        // Class 0 is the low-band1 cluster, class 1 the high-band1 cluster.
        assert!(sig.get(0, 0) < 20.0, "left mean b1 {}", sig.get(0, 0));
        assert!(sig.get(1, 0) > 190.0, "right mean b1 {}", sig.get(1, 0));
    }

    #[test]
    fn signatures_reject_bad_training() {
        let stack = two_cluster_stack();
        // Class with no pixels.
        assert!(signatures_from_training(&stack, 3, &sites()).is_err());
        // Class index out of range.
        let bad = vec![TrainingSite::new(2, vec![0])];
        assert!(signatures_from_training(&stack, 2, &bad).is_err());
        // Pixel out of range.
        let bad = vec![
            TrainingSite::new(0, vec![99]),
            TrainingSite::new(1, vec![3]),
        ];
        assert!(signatures_from_training(&stack, 2, &bad).is_err());
        // k = 0.
        assert!(signatures_from_training(&stack, 0, &[]).is_err());
    }

    #[test]
    fn min_distance_recovers_the_clusters() {
        let stack = two_cluster_stack();
        let sig = signatures_from_training(&stack, 2, &sites()).unwrap();
        let out = min_distance_classify(&stack, &sig).unwrap();
        for r in 0..4u32 {
            for c in 0..4u32 {
                let expect = if c < 2 { 0.0 } else { 1.0 };
                assert_eq!(out.labels.get(r, c), expect, "({r},{c})");
            }
        }
        assert_eq!(out.class_counts, vec![8, 8]);
        assert_eq!(out.unclassified, 0);
    }

    #[test]
    fn min_distance_is_deterministic_and_supervision_matters() {
        let stack = two_cluster_stack();
        let sig = signatures_from_training(&stack, 2, &sites()).unwrap();
        let a = min_distance_classify(&stack, &sig).unwrap();
        let b = min_distance_classify(&stack, &sig).unwrap();
        assert_eq!(a.labels, b.labels);
        // Swapping the training classes swaps the labels: the scientist's
        // interaction is part of the derivation.
        let swapped = vec![
            TrainingSite::new(1, vec![0, 4]),
            TrainingSite::new(0, vec![3, 7]),
        ];
        let sig2 = signatures_from_training(&stack, 2, &swapped).unwrap();
        let c = min_distance_classify(&stack, &sig2).unwrap();
        assert_ne!(a.labels, c.labels);
        assert_eq!(c.labels.get(0, 0), 1.0);
    }

    #[test]
    fn min_distance_validates_shapes() {
        let stack = two_cluster_stack();
        // Signature band count mismatch.
        let sig = Matrix::from_rows(2, 3, vec![0.0; 6]).unwrap();
        assert!(min_distance_classify(&stack, &sig).is_err());
        // Empty signatures.
        let sig = Matrix::zeros(0, 2);
        assert!(min_distance_classify(&stack, &sig).is_err());
    }

    #[test]
    fn piped_boxes_classify_and_leave_outliers() {
        let stack = two_cluster_stack();
        let (lo, hi) = training_boxes(&stack, 2, &sites(), 3.0).unwrap();
        let out = parallelepiped_classify(&stack, &lo, &hi).unwrap();
        // Training pixels themselves are inside their class boxes.
        assert_eq!(out.labels.get_flat(0), 0.0);
        assert_eq!(out.labels.get_flat(3), 1.0);
        // Tight boxes (z chosen small) leave non-training variation outside.
        let (lo, hi) = training_boxes(&stack, 2, &sites(), 1e-6).unwrap();
        let tight = parallelepiped_classify(&stack, &lo, &hi).unwrap();
        assert!(tight.unclassified > 0, "{tight:?}");
        assert_eq!(
            tight.unclassified + tight.class_counts.iter().sum::<u64>(),
            16
        );
        for p in 0..16 {
            let l = tight.labels.get_flat(p);
            assert!(l < 2.0 || l == UNCLASSIFIED);
        }
    }

    #[test]
    fn piped_validates_bounds() {
        let stack = two_cluster_stack();
        let lo = Matrix::zeros(2, 2);
        let hi = Matrix::zeros(3, 2);
        assert!(parallelepiped_classify(&stack, &lo, &hi).is_err());
        assert!(training_boxes(&stack, 2, &sites(), 0.0).is_err());
        assert!(training_boxes(&stack, 2, &sites(), -1.0).is_err());
    }

    #[test]
    fn supervised_and_unsupervised_agree_on_separable_data() {
        // On cleanly separable data the supervised map and the k-means map
        // induce the same partition (up to label permutation).
        let stack = two_cluster_stack();
        let sig = signatures_from_training(&stack, 2, &sites()).unwrap();
        let sup = min_distance_classify(&stack, &sig).unwrap();
        let unsup = crate::classify::kmeans_classify(&stack, 2, 50, 7).unwrap();
        let mut agree = 0;
        let mut flipped = 0;
        for p in 0..16 {
            if sup.labels.get_flat(p) == unsup.labels.get_flat(p) {
                agree += 1;
            } else {
                flipped += 1;
            }
        }
        assert!(agree == 16 || flipped == 16, "agree={agree} flip={flipped}");
    }
}
