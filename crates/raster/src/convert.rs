//! `convert-image-matrix` / `convert-matrix-image` (Figure 4).
//!
//! The PCA network's first and last stages move between the `image` and
//! `matrix` primitive classes. An image converts to a 1×npixels row matrix
//! (flattened row-major); a set of co-registered bands converts to a
//! bands×npixels matrix. The inverse re-imposes the raster shape.

use crate::stats::check_same_shape;
use gaea_adt::{AdtError, AdtResult, Image, Matrix, PixType};

/// Flatten one image into a 1×npixels matrix.
pub fn image_to_matrix(img: &Image) -> Matrix {
    Matrix::from_rows(1, img.len(), img.to_f64_vec()).expect("length matches by construction")
}

/// Stack co-registered bands into a bands×npixels matrix.
pub fn images_to_matrix(bands: &[&Image]) -> AdtResult<Matrix> {
    check_same_shape(bands)?;
    let npix = bands[0].len();
    let mut m = Matrix::zeros(bands.len(), npix);
    for (b, img) in bands.iter().enumerate() {
        for p in 0..npix {
            m.set(b, p, img.get_flat(p));
        }
    }
    Ok(m)
}

/// Re-impose a raster shape on one matrix row.
pub fn matrix_row_to_image(
    m: &Matrix,
    row: usize,
    nrow: u32,
    ncol: u32,
    pt: PixType,
) -> AdtResult<Image> {
    if row >= m.rows() {
        return Err(AdtError::InvalidArgument(format!(
            "row {row} of a {}-row matrix",
            m.rows()
        )));
    }
    if m.cols() != (nrow as usize) * (ncol as usize) {
        return Err(AdtError::ShapeMismatch(format!(
            "matrix row of {} entries vs image {nrow}x{ncol}",
            m.cols()
        )));
    }
    let template = Image::zeros(nrow, ncol, pt);
    template.with_samples(pt, &m.row(row))
}

/// Convert every row of a matrix back into an image of the given shape.
pub fn matrix_to_images(m: &Matrix, nrow: u32, ncol: u32, pt: PixType) -> AdtResult<Vec<Image>> {
    (0..m.rows())
        .map(|r| matrix_row_to_image(m, r, nrow, ncol, pt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_matrix_round_trip() {
        let img = Image::from_f64(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let m = image_to_matrix(&img);
        assert_eq!((m.rows(), m.cols()), (1, 6));
        let back = matrix_row_to_image(&m, 0, 2, 3, PixType::Float8).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn band_stack_round_trip() {
        let b1 = Image::from_f64(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b2 = Image::from_f64(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let m = images_to_matrix(&[&b1, &b2]).unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 4));
        assert_eq!(m.get(1, 2), 7.0);
        let back = matrix_to_images(&m, 2, 2, PixType::Float8).unwrap();
        assert_eq!(back, vec![b1, b2]);
    }

    #[test]
    fn shape_mismatches_rejected() {
        let b1 = Image::zeros(2, 2, PixType::Float8);
        let b2 = Image::zeros(2, 3, PixType::Float8);
        assert!(images_to_matrix(&[&b1, &b2]).is_err());
        let m = Matrix::zeros(1, 4);
        assert!(matrix_row_to_image(&m, 0, 2, 3, PixType::Float8).is_err());
        assert!(matrix_row_to_image(&m, 1, 2, 2, PixType::Float8).is_err());
    }

    #[test]
    fn pixtype_conversion_applies() {
        let m = Matrix::from_rows(1, 4, vec![1.4, 2.6, -3.0, 300.0]).unwrap();
        let img = matrix_row_to_image(&m, 0, 2, 2, PixType::Char).unwrap();
        assert_eq!(img.to_f64_vec(), vec![1.0, 3.0, 0.0, 255.0]); // rounded + saturated
    }
}
