//! Principal component analysis — the compound operator of Figure 4 — and
//! its standardized variant SPCA (Eastman 1992, cited in §2.1.3).
//!
//! The network: `convert-image-matrix → compute-covariance →
//! get-eigen-vector → linear-combination → convert-matrix-image`.
//! [`pca`] runs it fused (a direct implementation used for correctness
//! baselines and benchmarking the dataflow overhead); the registered
//! `pca` *operator* in [`crate::ops`] is built literally as that dataflow
//! network.
//!
//! PCA diagonalizes the band **covariance** matrix; SPCA diagonalizes the
//! band **correlation** matrix (equivalently: PCA on standardized bands).
//! The paper uses the pair as its flagship example of two processes that
//! derive "the same conceptual outcome" (vegetation change) by different
//! derivations — exactly what the derivation semantics layer must keep
//! distinguishable.

use crate::eigen::{jacobi_eigen, EigenDecomposition};
use crate::stats::{correlation_matrix, covariance_matrix, mean, stddev};
use gaea_adt::{AdtError, AdtResult, Image, PixType};

/// Result of a (S)PCA transform.
#[derive(Debug, Clone)]
pub struct PcaOutcome {
    /// Component images, ordered by decreasing eigenvalue; same count as
    /// input bands.
    pub components: Vec<Image>,
    /// The eigendecomposition (loadings + explained variance).
    pub eigen: EigenDecomposition,
    /// Band means (used to center; for SPCA also the standardization base).
    pub band_means: Vec<f64>,
    /// Band standard deviations (all 1.0 placeholders for plain PCA).
    pub band_stds: Vec<f64>,
    /// True if this was the standardized variant.
    pub standardized: bool,
}

fn project(
    bands: &[&Image],
    means: &[f64],
    stds: &[f64],
    eigen: &EigenDecomposition,
) -> Vec<Image> {
    let nb = bands.len();
    let npix = bands[0].len();
    let nrow = bands[0].nrow();
    let ncol = bands[0].ncol();
    let mut components = Vec::with_capacity(nb);
    for k in 0..nb {
        let mut out = vec![0.0f64; npix];
        for b in 0..nb {
            let w = eigen.vectors.get(b, k);
            if w == 0.0 {
                continue;
            }
            for (p, o) in out.iter_mut().enumerate() {
                *o += w * (bands[b].get_flat(p) - means[b]) / stds[b];
            }
        }
        let template = Image::zeros(nrow, ncol, PixType::Float8);
        components.push(
            template
                .with_samples(PixType::Float8, &out)
                .expect("projection length matches raster"),
        );
    }
    components
}

/// Plain PCA on the band covariance matrix.
pub fn pca(bands: &[&Image]) -> AdtResult<PcaOutcome> {
    if bands.len() < 2 {
        return Err(AdtError::InvalidArgument(
            "pca requires at least two bands".into(),
        ));
    }
    let cov = covariance_matrix(bands)?;
    let eigen = jacobi_eigen(&cov, 100, 1e-10)?;
    let means: Vec<f64> = bands.iter().map(|b| mean(b)).collect();
    let stds = vec![1.0; bands.len()];
    let components = project(bands, &means, &stds, &eigen);
    Ok(PcaOutcome {
        components,
        eigen,
        band_means: means,
        band_stds: stds,
        standardized: false,
    })
}

/// Standardized PCA (SPCA): PCA on the band correlation matrix, i.e. on
/// z-scored bands. Zero-variance bands contribute zero (their std is
/// replaced by 1 to avoid division by zero; centered values are all zero).
pub fn spca(bands: &[&Image]) -> AdtResult<PcaOutcome> {
    if bands.len() < 2 {
        return Err(AdtError::InvalidArgument(
            "spca requires at least two bands".into(),
        ));
    }
    let cor = correlation_matrix(bands)?;
    let eigen = jacobi_eigen(&cor, 100, 1e-10)?;
    let means: Vec<f64> = bands.iter().map(|b| mean(b)).collect();
    let stds: Vec<f64> = bands
        .iter()
        .map(|b| {
            let s = stddev(b);
            if s == 0.0 {
                1.0
            } else {
                s
            }
        })
        .collect();
    let components = project(bands, &means, &stds, &eigen);
    Ok(PcaOutcome {
        components,
        eigen,
        band_means: means,
        band_stds: stds,
        standardized: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{covariance_matrix, stddev};

    /// Synthetic bands with a dominant shared signal plus small noise.
    fn correlated_bands() -> Vec<Image> {
        let n = 64usize;
        let mut b1 = vec![0.0; n];
        let mut b2 = vec![0.0; n];
        let mut b3 = vec![0.0; n];
        for i in 0..n {
            let t = i as f64 / n as f64;
            let signal = (t * 12.0).sin() * 50.0 + 100.0;
            b1[i] = signal + (i % 5) as f64;
            b2[i] = 0.8 * signal + (i % 3) as f64;
            b3[i] = -0.6 * signal + (i % 7) as f64 + 200.0;
        }
        vec![
            Image::from_f64(8, 8, b1).unwrap(),
            Image::from_f64(8, 8, b2).unwrap(),
            Image::from_f64(8, 8, b3).unwrap(),
        ]
    }

    #[test]
    fn first_component_carries_most_variance() {
        let bands = correlated_bands();
        let refs: Vec<&Image> = bands.iter().collect();
        let out = pca(&refs).unwrap();
        assert_eq!(out.components.len(), 3);
        assert!(
            out.eigen.explained(0) > 0.9,
            "PC1 should dominate strongly correlated bands"
        );
        // Component variances decrease.
        let v0 = stddev(&out.components[0]).powi(2);
        let v1 = stddev(&out.components[1]).powi(2);
        let v2 = stddev(&out.components[2]).powi(2);
        assert!(v0 >= v1 && v1 >= v2);
    }

    #[test]
    fn component_variances_match_eigenvalues() {
        let bands = correlated_bands();
        let refs: Vec<&Image> = bands.iter().collect();
        let out = pca(&refs).unwrap();
        for k in 0..3 {
            let v = stddev(&out.components[k]).powi(2);
            assert!(
                (v - out.eigen.values[k].max(0.0)).abs() < 1e-6 * (1.0 + v),
                "component {k}: var {v} vs eigenvalue {}",
                out.eigen.values[k]
            );
        }
    }

    #[test]
    fn components_are_uncorrelated() {
        let bands = correlated_bands();
        let refs: Vec<&Image> = bands.iter().collect();
        let out = pca(&refs).unwrap();
        let comp_refs: Vec<&Image> = out.components.iter().collect();
        let cov = covariance_matrix(&comp_refs).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(
                        cov.get(i, j).abs() < 1e-6 * (1.0 + cov.get(i, i).abs()),
                        "components {i},{j} correlated: {}",
                        cov.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn spca_differs_from_pca_under_scaling() {
        // Scale one band by 1000x: PCA is dominated by it, SPCA is not.
        let bands = correlated_bands();
        let scaled = bands[2].map(PixType::Float8, |v| v * 1000.0);
        let refs = vec![&bands[0], &bands[1], &scaled];
        let p = pca(&refs).unwrap();
        let s = spca(&refs).unwrap();
        // PCA's first loading is almost entirely on the scaled band.
        let p_load = p.eigen.vectors.get(2, 0).abs();
        assert!(p_load > 0.99, "PCA PC1 loading on scaled band = {p_load}");
        // SPCA spreads loadings (scale-free).
        let s_load = s.eigen.vectors.get(2, 0).abs();
        assert!(s_load < 0.9, "SPCA PC1 loading on scaled band = {s_load}");
        assert!(s.standardized && !p.standardized);
    }

    #[test]
    fn spca_eigenvalues_sum_to_band_count() {
        // trace of a correlation matrix = number of bands.
        let bands = correlated_bands();
        let refs: Vec<&Image> = bands.iter().collect();
        let s = spca(&refs).unwrap();
        let sum: f64 = s.eigen.values.iter().sum();
        assert!((sum - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_single_band() {
        let b = Image::zeros(4, 4, PixType::Float8);
        assert!(pca(&[&b]).is_err());
        assert!(spca(&[&b]).is_err());
    }

    #[test]
    fn constant_band_is_tolerated_by_spca() {
        let bands = correlated_bands();
        let flat = Image::filled(8, 8, PixType::Float8, 3.0);
        let refs = vec![&bands[0], &flat];
        let s = spca(&refs).unwrap();
        // The flat band projects to zero everywhere through any loading.
        for img in &s.components {
            assert!(img.to_f64_vec().iter().all(|v| v.is_finite()));
        }
    }
}
