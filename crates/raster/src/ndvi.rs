//! NDVI — normalized difference vegetation index (paper §1, footnote 2).
//!
//! "NDVI is the normalized difference vegetation index. It is a qualitative
//! measure of vegetation derived from AVHRR satellite imagery data."
//! NDVI = (NIR − RED) / (NIR + RED), in [-1, 1] for non-negative radiances.

use gaea_adt::{AdtResult, Image, PixType};

/// Compute NDVI from near-infrared and red bands.
///
/// Pixels where `nir + red == 0` (no signal) yield 0.0, the conventional
/// "no data / bare" value, rather than poisoning downstream statistics
/// with NaN.
pub fn ndvi(nir: &Image, red: &Image) -> AdtResult<Image> {
    nir.zip_map(red, PixType::Float8, |n, r| {
        let denom = n + r;
        if denom == 0.0 {
            0.0
        } else {
            (n - r) / denom
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let nir = Image::from_f64(1, 4, vec![100.0, 50.0, 0.0, 80.0]).unwrap();
        let red = Image::from_f64(1, 4, vec![20.0, 50.0, 0.0, 100.0]).unwrap();
        let v = ndvi(&nir, &red).unwrap();
        assert!((v.get(0, 0) - (80.0 / 120.0)).abs() < 1e-12); // vegetated
        assert_eq!(v.get(0, 1), 0.0); // balanced
        assert_eq!(v.get(0, 2), 0.0); // zero denominator guarded
        assert!(v.get(0, 3) < 0.0); // red > nir: non-vegetated
    }

    #[test]
    fn range_bound_for_nonnegative_radiance() {
        let nir = Image::from_f64(2, 2, vec![5.0, 0.0, 300.0, 1.0]).unwrap();
        let red = Image::from_f64(2, 2, vec![1.0, 10.0, 0.0, 1.0]).unwrap();
        let v = ndvi(&nir, &red).unwrap();
        for i in 0..4 {
            assert!((-1.0..=1.0).contains(&v.get_flat(i)));
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let nir = Image::zeros(2, 2, PixType::Float8);
        let red = Image::zeros(2, 3, PixType::Float8);
        assert!(ndvi(&nir, &red).is_err());
    }

    #[test]
    fn output_is_float8() {
        let nir = Image::zeros(2, 2, PixType::Int2);
        let red = Image::zeros(2, 2, PixType::Int2);
        assert_eq!(ndvi(&nir, &red).unwrap().pixtype(), PixType::Float8);
    }
}
