//! Spatial subsetting: crop a raster to a sub-window.
//!
//! §2.1.5 lists "data interpolation (temporal or spatial)" as the generic
//! step-2 derivation. The spatial form used in GIS practice is windowing:
//! a query over a region covered by a larger stored scene is answered by
//! cropping (plus resampling when grids differ — see
//! [`crate::rectify::resample`]).

use gaea_adt::{AdtError, AdtResult, GeoBox, Image};

/// Crop by pixel window: rows `[r0, r0+h)`, columns `[c0, c0+w)`.
pub fn crop(img: &Image, r0: u32, c0: u32, h: u32, w: u32) -> AdtResult<Image> {
    if h == 0 || w == 0 {
        return Err(AdtError::InvalidArgument("empty crop window".into()));
    }
    if r0 + h > img.nrow() || c0 + w > img.ncol() {
        return Err(AdtError::ShapeMismatch(format!(
            "crop [{r0}+{h}, {c0}+{w}] exceeds raster {}x{}",
            img.nrow(),
            img.ncol()
        )));
    }
    let mut data = Vec::with_capacity((h * w) as usize);
    for r in r0..r0 + h {
        for c in c0..c0 + w {
            data.push(img.get(r, c));
        }
    }
    Image::zeros(h, w, img.pixtype()).with_samples(img.pixtype(), &data)
}

/// Crop by geographic window: maps `window` into pixel space through the
/// raster's `extent` (row 0 at the north edge) and crops to the covered
/// pixels. Errors when the window misses the extent entirely.
pub fn crop_to_window(img: &Image, extent: &GeoBox, window: &GeoBox) -> AdtResult<(Image, GeoBox)> {
    let inter = extent.intersection(window).ok_or_else(|| {
        AdtError::InvalidArgument(format!(
            "window {window} does not intersect extent {extent}"
        ))
    })?;
    if extent.width() <= 0.0 || extent.height() <= 0.0 {
        return Err(AdtError::InvalidArgument("degenerate raster extent".into()));
    }
    let px_per_x = img.ncol() as f64 / extent.width();
    let px_per_y = img.nrow() as f64 / extent.height();
    let c0 = ((inter.xmin - extent.xmin) * px_per_x).floor().max(0.0) as u32;
    let c1 = ((inter.xmax - extent.xmin) * px_per_x)
        .ceil()
        .min(img.ncol() as f64) as u32;
    // Row 0 is the north (ymax) edge.
    let r0 = ((extent.ymax - inter.ymax) * px_per_y).floor().max(0.0) as u32;
    let r1 = ((extent.ymax - inter.ymin) * px_per_y)
        .ceil()
        .min(img.nrow() as f64) as u32;
    let h = (r1 - r0).max(1);
    let w = (c1 - c0).max(1);
    let cropped = crop(img, r0, c0, h.min(img.nrow() - r0), w.min(img.ncol() - c0))?;
    // The extent actually covered by the cropped pixels.
    let covered = GeoBox::new(
        extent.xmin + c0 as f64 / px_per_x,
        extent.ymax - r1 as f64 / px_per_y,
        extent.xmin + c1 as f64 / px_per_x,
        extent.ymax - r0 as f64 / px_per_y,
    );
    Ok((cropped, covered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_adt::PixType;

    fn gradient(rows: u32, cols: u32) -> Image {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| (i / cols) as f64 * 100.0 + (i % cols) as f64)
            .collect();
        Image::from_f64(rows, cols, data).unwrap()
    }

    #[test]
    fn pixel_crop_extracts_window() {
        let img = gradient(6, 8);
        let c = crop(&img, 1, 2, 3, 4).unwrap();
        assert_eq!((c.nrow(), c.ncol()), (3, 4));
        assert_eq!(c.get(0, 0), img.get(1, 2));
        assert_eq!(c.get(2, 3), img.get(3, 5));
    }

    #[test]
    fn pixel_crop_bounds_checked() {
        let img = gradient(4, 4);
        assert!(crop(&img, 0, 0, 0, 1).is_err());
        assert!(crop(&img, 2, 2, 3, 1).is_err());
        assert!(crop(&img, 0, 3, 1, 2).is_err());
        // Full-frame crop is identity.
        assert_eq!(crop(&img, 0, 0, 4, 4).unwrap(), img);
    }

    #[test]
    fn crop_preserves_pixtype() {
        let img = Image::filled(4, 4, PixType::Int2, 7.0);
        let c = crop(&img, 1, 1, 2, 2).unwrap();
        assert_eq!(c.pixtype(), PixType::Int2);
    }

    #[test]
    fn geographic_crop_covers_the_window() {
        // Extent 0..8 east, 0..6 north on a 6x8 raster: 1 px per unit.
        let img = gradient(6, 8);
        let extent = GeoBox::new(0.0, 0.0, 8.0, 6.0);
        let window = GeoBox::new(2.0, 1.0, 5.0, 4.0);
        let (c, covered) = crop_to_window(&img, &extent, &window).unwrap();
        assert_eq!((c.nrow(), c.ncol()), (3, 3));
        assert!(covered.contains(&window));
        // North-west pixel of the crop is row 2 (6-4), col 2 of the source.
        assert_eq!(c.get(0, 0), img.get(2, 2));
    }

    #[test]
    fn geographic_crop_clamps_partial_overlap() {
        let img = gradient(6, 8);
        let extent = GeoBox::new(0.0, 0.0, 8.0, 6.0);
        let window = GeoBox::new(6.0, 4.0, 12.0, 9.0); // hangs off the NE corner
        let (c, covered) = crop_to_window(&img, &extent, &window).unwrap();
        assert_eq!((c.nrow(), c.ncol()), (2, 2));
        assert!(extent.contains(&covered));
        let miss = GeoBox::new(20.0, 20.0, 30.0, 30.0);
        assert!(crop_to_window(&img, &extent, &miss).is_err());
    }
}
