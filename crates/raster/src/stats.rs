//! Band statistics: means, standard deviations, covariance and correlation
//! matrices over a set of co-registered bands.
//!
//! `compute-covariance` is the second stage of the Figure 4 PCA network.
//! The covariance is taken across *bands* (the classic remote-sensing
//! formulation: an n-band image yields an n×n matrix whose (i, j) entry is
//! the covariance of band i and band j over all pixels).

use gaea_adt::{AdtError, AdtResult, Image, Matrix};

/// Mean pixel value of one image.
pub fn mean(img: &Image) -> f64 {
    if img.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..img.len() {
        acc += img.get_flat(i);
    }
    acc / img.len() as f64
}

/// Population standard deviation of one image.
pub fn stddev(img: &Image) -> f64 {
    if img.is_empty() {
        return 0.0;
    }
    let m = mean(img);
    let mut acc = 0.0;
    for i in 0..img.len() {
        let d = img.get_flat(i) - m;
        acc += d * d;
    }
    (acc / img.len() as f64).sqrt()
}

/// Check all bands share one shape; returns (nrow, ncol).
pub fn check_same_shape(bands: &[&Image]) -> AdtResult<(u32, u32)> {
    let first = bands
        .first()
        .ok_or_else(|| AdtError::InvalidArgument("empty band set".into()))?;
    for b in &bands[1..] {
        if !first.size_eq(b) {
            return Err(AdtError::ShapeMismatch(format!(
                "bands {}x{} vs {}x{}",
                first.nrow(),
                first.ncol(),
                b.nrow(),
                b.ncol()
            )));
        }
    }
    Ok((first.nrow(), first.ncol()))
}

/// n×n band covariance matrix (population covariance).
pub fn covariance_matrix(bands: &[&Image]) -> AdtResult<Matrix> {
    check_same_shape(bands)?;
    let n = bands.len();
    let npix = bands[0].len();
    if npix == 0 {
        return Err(AdtError::InvalidArgument("bands have zero pixels".into()));
    }
    let means: Vec<f64> = bands.iter().map(|b| mean(b)).collect();
    let mut cov = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let mut acc = 0.0;
            for p in 0..npix {
                acc += (bands[i].get_flat(p) - means[i]) * (bands[j].get_flat(p) - means[j]);
            }
            let c = acc / npix as f64;
            cov.set(i, j, c);
            cov.set(j, i, c);
        }
    }
    Ok(cov)
}

/// n×n band correlation matrix. Bands with zero variance correlate 0 with
/// everything and 1 with themselves. SPCA (Eastman 1992) is PCA on this
/// matrix instead of the covariance matrix.
pub fn correlation_matrix(bands: &[&Image]) -> AdtResult<Matrix> {
    let cov = covariance_matrix(bands)?;
    let n = bands.len();
    let sd: Vec<f64> = (0..n).map(|i| cov.get(i, i).sqrt()).collect();
    let mut cor = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let denom = sd[i] * sd[j];
            let v = if i == j {
                1.0
            } else if denom == 0.0 {
                0.0
            } else {
                cov.get(i, j) / denom
            };
            cor.set(i, j, v);
        }
    }
    Ok(cor)
}

/// Fixed-width histogram of pixel values.
pub fn histogram(img: &Image, bins: usize, lo: f64, hi: f64) -> AdtResult<Vec<u64>> {
    if bins == 0 || hi <= lo {
        return Err(AdtError::InvalidArgument(format!(
            "histogram bins={bins} range=[{lo},{hi}]"
        )));
    }
    let mut counts = vec![0u64; bins];
    let w = (hi - lo) / bins as f64;
    for i in 0..img.len() {
        let v = img.get_flat(i);
        if v < lo || v > hi {
            continue;
        }
        let mut b = ((v - lo) / w) as usize;
        if b >= bins {
            b = bins - 1; // v == hi lands in the last bin
        }
        counts[b] += 1;
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaea_adt::PixType;

    fn img(data: &[f64], rows: u32, cols: u32) -> Image {
        Image::from_f64(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn mean_and_stddev() {
        let a = img(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(mean(&a), 2.5);
        assert!((stddev(&a) - (1.25f64).sqrt()).abs() < 1e-12);
        let flat = Image::filled(4, 4, PixType::Float8, 7.0);
        assert_eq!(mean(&flat), 7.0);
        assert_eq!(stddev(&flat), 0.0);
    }

    #[test]
    fn covariance_of_identical_bands_is_variance() {
        let a = img(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let cov = covariance_matrix(&[&a, &a]).unwrap();
        let var = stddev(&a).powi(2);
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            assert!((cov.get(r, c) - var).abs() < 1e-12);
        }
    }

    #[test]
    fn covariance_of_anticorrelated_bands() {
        let a = img(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = img(&[4.0, 3.0, 2.0, 1.0], 2, 2);
        let cov = covariance_matrix(&[&a, &b]).unwrap();
        assert!(cov.get(0, 1) < 0.0);
        assert!((cov.get(0, 1) + cov.get(0, 0)).abs() < 1e-12); // perfectly anti-correlated
        let cor = correlation_matrix(&[&a, &b]).unwrap();
        assert!((cor.get(0, 1) + 1.0).abs() < 1e-12);
        assert_eq!(cor.get(0, 0), 1.0);
    }

    #[test]
    fn covariance_is_symmetric() {
        let a = img(&[1.0, 5.0, 2.0, 8.0, 3.0, 9.0], 2, 3);
        let b = img(&[2.0, 1.0, 7.0, 3.0, 5.0, 4.0], 2, 3);
        let c = img(&[0.0, 2.0, 4.0, 6.0, 8.0, 10.0], 2, 3);
        let cov = covariance_matrix(&[&a, &b, &c]).unwrap();
        assert!(cov.is_symmetric(1e-12));
        assert_eq!(cov.rows(), 3);
    }

    #[test]
    fn zero_variance_band_correlation() {
        let a = img(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let flat = Image::filled(2, 2, PixType::Float8, 5.0);
        let cor = correlation_matrix(&[&a, &flat]).unwrap();
        assert_eq!(cor.get(0, 1), 0.0);
        assert_eq!(cor.get(1, 1), 1.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = img(&[1.0, 2.0], 1, 2);
        let b = img(&[1.0, 2.0, 3.0], 1, 3);
        assert!(covariance_matrix(&[&a, &b]).is_err());
        assert!(check_same_shape(&[]).is_err());
    }

    #[test]
    fn histogram_bins() {
        let a = img(&[0.0, 0.5, 1.0, 2.5, 9.9, 10.0, -1.0, 11.0], 2, 4);
        let h = histogram(&a, 10, 0.0, 10.0).unwrap();
        assert_eq!(h.iter().sum::<u64>(), 6); // -1 and 11 out of range
        assert_eq!(h[0], 2); // 0.0 and 0.5
        assert_eq!(h[9], 2); // 9.9, and 10.0 clamps into the last bin
    }

    #[test]
    fn histogram_edges() {
        let a = img(&[0.0, 1.0, 10.0], 1, 3);
        let h = histogram(&a, 10, 0.0, 10.0).unwrap();
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 1);
        assert_eq!(h[9], 1); // hi lands in last bin
        assert!(histogram(&a, 0, 0.0, 1.0).is_err());
        assert!(histogram(&a, 4, 1.0, 1.0).is_err());
    }
}
