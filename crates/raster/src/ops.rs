//! Operator registration: contributes every raster algorithm to the
//! system-level operator catalog, and builds `pca`/`spca` literally as the
//! Figure 4 compound-operator networks.
//!
//! The node inventory of Figure 4 is reproduced one-to-one:
//!
//! ```text
//! SET OF image --convert-image-matrix--> SET OF matrix
//! SET OF matrix --compute-covariance--> matrix
//! matrix --get-eigen-vector--> matrix (eigenvector basis)
//! (SET OF matrix, basis) --linear-combination--> SET OF matrix
//! (SET OF matrix, template image) --convert-matrix-image--> SET OF image
//! ```

use crate::change::{img_diff, img_ratio};
use crate::classify::kmeans_classify;
use crate::composite::composite;
use crate::convert::matrix_row_to_image;
use crate::eigen::jacobi_eigen;
use crate::interp::temporal_interp;
use crate::ndvi::ndvi;
use crate::rectify::{rectify, resample, Affine};
use crate::stats::{mean, stddev};
use crate::supervised::min_distance_classify;
use gaea_adt::{
    AdtError, AdtResult, DataflowBuilder, Image, Matrix, OperatorRegistry, PixType, Signature,
    TypeTag, Value,
};
use std::sync::Arc;

/// Default PRNG seed for the 2-argument `unsuperclassify(stack, k)` operator
/// form used in the paper's P20 template. The seed is fixed so the operator
/// is a *function* — identical inputs always derive the identical object,
/// which is what makes tasks reproducible. Workflows wanting a different
/// seed define a different process (paper §2.1.2: different parameters ⇒
/// different process), via `unsuperclassify_seeded`.
pub const DEFAULT_CLASSIFY_SEED: u64 = 0x6AEA;

/// Default Lloyd-iteration cap for the operator forms.
pub const DEFAULT_CLASSIFY_ITERS: usize = 100;

fn images_from_set(set: &[Value], ctx: &str) -> AdtResult<Vec<Arc<Image>>> {
    set.iter().map(|v| v.expect_image(ctx).cloned()).collect()
}

fn matrices_from_set(set: &[Value], ctx: &str) -> AdtResult<Vec<Arc<Matrix>>> {
    set.iter().map(|v| v.expect_matrix(ctx).cloned()).collect()
}

/// Covariance across band rows stored as 1×npix matrices, with optional
/// normalization to a correlation matrix.
fn band_matrix_covariance(mats: &[Arc<Matrix>], correlation: bool) -> AdtResult<Matrix> {
    let nb = mats.len();
    if nb == 0 {
        return Err(AdtError::InvalidArgument("empty matrix set".into()));
    }
    let npix = mats[0].cols();
    for m in mats {
        if m.rows() != 1 || m.cols() != npix {
            return Err(AdtError::ShapeMismatch(
                "compute_covariance expects 1xN band matrices of equal length".into(),
            ));
        }
    }
    if npix == 0 {
        return Err(AdtError::InvalidArgument(
            "zero-length band matrices".into(),
        ));
    }
    let means: Vec<f64> = mats
        .iter()
        .map(|m| m.data().iter().sum::<f64>() / npix as f64)
        .collect();
    let mut cov = Matrix::zeros(nb, nb);
    for i in 0..nb {
        for j in i..nb {
            let mut acc = 0.0;
            for p in 0..npix {
                acc += (mats[i].data()[p] - means[i]) * (mats[j].data()[p] - means[j]);
            }
            let c = acc / npix as f64;
            cov.set(i, j, c);
            cov.set(j, i, c);
        }
    }
    if !correlation {
        return Ok(cov);
    }
    let sd: Vec<f64> = (0..nb).map(|i| cov.get(i, i).sqrt()).collect();
    let mut cor = Matrix::zeros(nb, nb);
    for i in 0..nb {
        for j in 0..nb {
            let denom = sd[i] * sd[j];
            let v = if i == j {
                1.0
            } else if denom == 0.0 {
                0.0
            } else {
                cov.get(i, j) / denom
            };
            cor.set(i, j, v);
        }
    }
    Ok(cor)
}

/// Shared body for the `linear_combination` operators: project centered
/// (optionally standardized) band rows through an eigenvector basis.
fn linear_combination_impl(
    mats: &[Arc<Matrix>],
    basis: &Matrix,
    standardized: bool,
) -> AdtResult<Vec<Matrix>> {
    let nb = mats.len();
    if basis.rows() != nb || basis.cols() != nb {
        return Err(AdtError::ShapeMismatch(format!(
            "basis {}x{} vs {nb} bands",
            basis.rows(),
            basis.cols()
        )));
    }
    if nb == 0 {
        return Err(AdtError::InvalidArgument("empty matrix set".into()));
    }
    let npix = mats[0].cols();
    let means: Vec<f64> = mats
        .iter()
        .map(|m| m.data().iter().sum::<f64>() / npix.max(1) as f64)
        .collect();
    let stds: Vec<f64> = if standardized {
        mats.iter()
            .zip(&means)
            .map(|(m, mu)| {
                let var =
                    m.data().iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / npix.max(1) as f64;
                let s = var.sqrt();
                if s == 0.0 {
                    1.0
                } else {
                    s
                }
            })
            .collect()
    } else {
        vec![1.0; nb]
    };
    let mut out = Vec::with_capacity(nb);
    for k in 0..nb {
        let mut row = vec![0.0f64; npix];
        for b in 0..nb {
            let w = basis.get(b, k);
            if w == 0.0 {
                continue;
            }
            for (p, o) in row.iter_mut().enumerate() {
                *o += w * (mats[b].data()[p] - means[b]) / stds[b];
            }
        }
        out.push(Matrix::from_rows(1, npix, row)?);
    }
    Ok(out)
}

/// Build the Figure 4 PCA network (or its SPCA variant) as a dataflow graph.
pub fn build_pca_dataflow(name: &str, standardized: bool) -> gaea_adt::DataflowGraph {
    let mut b = DataflowBuilder::new(name);
    let bands = b.input("bands", TypeTag::Image.set_of());
    let mats = b.node("convert_image_matrix", vec![bands]);
    let cov = b.node(
        if standardized {
            "compute_correlation"
        } else {
            "compute_covariance"
        },
        vec![mats],
    );
    let basis = b.node("get_eigen_vectors", vec![cov]);
    let comps = b.node(
        if standardized {
            "linear_combination_std"
        } else {
            "linear_combination"
        },
        vec![mats, basis],
    );
    let template = b.node("anyof", vec![bands]);
    let images = b.node("convert_matrix_image", vec![comps, template]);
    b.finish(images)
}

/// Register every raster operator (plus the compound `pca`/`spca`) into the
/// given registry. Expects the generic builtins (`anyof`, ...) to already be
/// present — i.e. call on `OperatorRegistry::with_builtins()`.
pub fn register_raster_ops(r: &mut OperatorRegistry) -> AdtResult<()> {
    // --- Figure 3 operators ------------------------------------------------
    r.register_fn(
        "composite",
        Signature::new(vec![TypeTag::Image.set_of()], TypeTag::Image.set_of()),
        "validate and stack co-registered bands (Figure 3)",
        |args| {
            let imgs = images_from_set(args[0].expect_set("composite")?, "composite")?;
            let refs: Vec<&Image> = imgs.iter().map(|a| a.as_ref()).collect();
            let stack = composite(&refs)?;
            Ok(Value::Set(
                stack.bands().iter().cloned().map(Value::image).collect(),
            ))
        },
    )?;
    r.register_fn(
        "unsuperclassify",
        Signature::new(vec![TypeTag::Image.set_of(), TypeTag::Int4], TypeTag::Image),
        "unsupervised classification into k classes (Figure 3, P20)",
        |args| {
            let imgs = images_from_set(args[0].expect_set("unsuperclassify")?, "unsuperclassify")?;
            let refs: Vec<&Image> = imgs.iter().map(|a| a.as_ref()).collect();
            let stack = composite(&refs)?;
            let k = args[1].expect_f64("unsuperclassify k")? as usize;
            let out = kmeans_classify(&stack, k, DEFAULT_CLASSIFY_ITERS, DEFAULT_CLASSIFY_SEED)?;
            Ok(Value::image(out.labels))
        },
    )?;
    r.register_fn(
        "unsuperclassify_seeded",
        Signature::new(
            vec![TypeTag::Image.set_of(), TypeTag::Int4, TypeTag::Int4],
            TypeTag::Image,
        ),
        "unsupervised classification with explicit PRNG seed (a different process under §2.1.2's parameter rule)",
        |args| {
            let imgs = images_from_set(args[0].expect_set("unsuperclassify_seeded")?, "unsuperclassify_seeded")?;
            let refs: Vec<&Image> = imgs.iter().map(|a| a.as_ref()).collect();
            let stack = composite(&refs)?;
            let k = args[1].expect_f64("k")? as usize;
            let seed = args[2].expect_f64("seed")? as u64;
            let out = kmeans_classify(&stack, k, DEFAULT_CLASSIFY_ITERS, seed)?;
            Ok(Value::image(out.labels))
        },
    )?;
    r.register_fn(
        "superclassify",
        Signature::new(
            vec![TypeTag::Image.set_of(), TypeTag::Matrix],
            TypeTag::Image,
        ),
        "supervised minimum-distance classification from scientist-supplied \
         training signatures (§4.3: the interactive-process example)",
        |args| {
            let imgs = images_from_set(args[0].expect_set("superclassify")?, "superclassify")?;
            let refs: Vec<&Image> = imgs.iter().map(|a| a.as_ref()).collect();
            let stack = composite(&refs)?;
            let signatures = args[1].expect_matrix("superclassify signatures")?;
            let out = min_distance_classify(&stack, signatures)?;
            Ok(Value::image(out.labels))
        },
    )?;

    // --- §1 vegetation-change operators ------------------------------------
    r.register_fn(
        "ndvi",
        Signature::new(vec![TypeTag::Image, TypeTag::Image], TypeTag::Image),
        "normalized difference vegetation index (NIR, RED)",
        |args| {
            Ok(Value::image(ndvi(
                args[0].expect_image("ndvi nir")?,
                args[1].expect_image("ndvi red")?,
            )?))
        },
    )?;
    r.register_fn(
        "img_diff",
        Signature::new(vec![TypeTag::Image, TypeTag::Image], TypeTag::Image),
        "pixel-wise difference (scientist A's change detection)",
        |args| {
            Ok(Value::image(img_diff(
                args[0].expect_image("img_diff")?,
                args[1].expect_image("img_diff")?,
            )?))
        },
    )?;
    r.register_fn(
        "img_ratio",
        Signature::new(vec![TypeTag::Image, TypeTag::Image], TypeTag::Image),
        "pixel-wise ratio (scientist B's change detection)",
        |args| {
            Ok(Value::image(img_ratio(
                args[0].expect_image("img_ratio")?,
                args[1].expect_image("img_ratio")?,
            )?))
        },
    )?;
    r.register_fn(
        "img_add",
        Signature::new(vec![TypeTag::Image, TypeTag::Image], TypeTag::Image),
        "pixel-wise sum",
        |args| {
            let a = args[0].expect_image("img_add")?;
            let b = args[1].expect_image("img_add")?;
            Ok(Value::image(a.zip_map(b, PixType::Float8, |x, y| x + y)?))
        },
    )?;
    r.register_fn(
        "img_scale",
        Signature::new(vec![TypeTag::Image, TypeTag::Float8], TypeTag::Image),
        "multiply every pixel by a constant",
        |args| {
            let a = args[0].expect_image("img_scale")?;
            let k = args[1].expect_f64("img_scale factor")?;
            Ok(Value::image(a.map(PixType::Float8, |x| x * k)))
        },
    )?;
    r.register_fn(
        "img_mean",
        Signature::new(vec![TypeTag::Image], TypeTag::Float8),
        "mean pixel value",
        |args| Ok(Value::Float8(mean(args[0].expect_image("img_mean")?))),
    )?;
    r.register_fn(
        "img_stddev",
        Signature::new(vec![TypeTag::Image], TypeTag::Float8),
        "population standard deviation of pixel values",
        |args| Ok(Value::Float8(stddev(args[0].expect_image("img_stddev")?))),
    )?;
    r.register_fn(
        "threshold_below",
        Signature::new(vec![TypeTag::Image, TypeTag::Float8], TypeTag::Image),
        "binary mask: 1 where pixel < threshold (e.g. rainfall < 250mm for desert derivation)",
        |args| {
            let a = args[0].expect_image("threshold_below")?;
            let t = args[1].expect_f64("threshold")?;
            Ok(Value::image(a.map(PixType::Char, |x| {
                if x < t {
                    1.0
                } else {
                    0.0
                }
            })))
        },
    )?;
    r.register_fn(
        "img_and",
        Signature::new(vec![TypeTag::Image, TypeTag::Image], TypeTag::Image),
        "pixel-wise logical AND of binary masks",
        |args| {
            let a = args[0].expect_image("img_and")?;
            let b = args[1].expect_image("img_and")?;
            Ok(Value::image(a.zip_map(b, PixType::Char, |x, y| {
                if x != 0.0 && y != 0.0 {
                    1.0
                } else {
                    0.0
                }
            })?))
        },
    )?;

    // --- Figure 5 operators -------------------------------------------------
    r.register_fn(
        "rectify_shift",
        Signature::new(
            vec![TypeTag::Image, TypeTag::Float8, TypeTag::Float8],
            TypeTag::Image,
        ),
        "first-order rectification: translate by (dx, dy) with bilinear resampling (Figure 5 'Rectified')",
        |args| {
            let img = args[0].expect_image("rectify_shift")?;
            let dx = args[1].expect_f64("dx")?;
            let dy = args[2].expect_f64("dy")?;
            Ok(Value::image(rectify(
                img,
                &Affine::translation(dx, dy),
                img.nrow(),
                img.ncol(),
                0.0,
            )?))
        },
    )?;
    r.register_fn(
        "resample",
        Signature::new(
            vec![TypeTag::Image, TypeTag::Int4, TypeTag::Int4],
            TypeTag::Image,
        ),
        "bilinear resample to a new grid (spatial interpolation, §2.1.5)",
        |args| {
            let img = args[0].expect_image("resample")?;
            let rows = args[1].expect_f64("rows")? as u32;
            let cols = args[2].expect_f64("cols")? as u32;
            Ok(Value::image(resample(img, rows, cols)?))
        },
    )?;
    r.register_fn(
        "img_crop",
        Signature::new(
            vec![
                TypeTag::Image,
                TypeTag::Int4,
                TypeTag::Int4,
                TypeTag::Int4,
                TypeTag::Int4,
            ],
            TypeTag::Image,
        ),
        "crop to a pixel window (r0, c0, height, width) — spatial subsetting",
        |args| {
            let img = args[0].expect_image("img_crop")?;
            let r0 = args[1].expect_f64("r0")? as u32;
            let c0 = args[2].expect_f64("c0")? as u32;
            let h = args[3].expect_f64("h")? as u32;
            let w = args[4].expect_f64("w")? as u32;
            Ok(Value::image(crate::subset::crop(img, r0, c0, h, w)?))
        },
    )?;

    // --- §2.1.5 temporal interpolation --------------------------------------
    r.register_fn(
        "temporal_interp",
        Signature::new(
            vec![
                TypeTag::Image,
                TypeTag::AbsTime,
                TypeTag::Image,
                TypeTag::AbsTime,
                TypeTag::AbsTime,
            ],
            TypeTag::Image,
        ),
        "linear interpolation between two epochs (generic derivation, §2.1.5)",
        |args| {
            let i1 = args[0].expect_image("temporal_interp")?;
            let t1 = args[1]
                .as_abstime()
                .ok_or_else(|| AdtError::InvalidArgument("t1 must be abstime".into()))?;
            let i2 = args[2].expect_image("temporal_interp")?;
            let t2 = args[3]
                .as_abstime()
                .ok_or_else(|| AdtError::InvalidArgument("t2 must be abstime".into()))?;
            let t = args[4]
                .as_abstime()
                .ok_or_else(|| AdtError::InvalidArgument("t must be abstime".into()))?;
            Ok(Value::image(temporal_interp(i1, t1, i2, t2, t)?))
        },
    )?;

    // --- Figure 4 network primitives ----------------------------------------
    r.register_fn(
        "convert_image_matrix",
        Signature::new(vec![TypeTag::Image.set_of()], TypeTag::Matrix.set_of()),
        "flatten each band into a 1xN matrix (Figure 4 stage 1)",
        |args| {
            let imgs = images_from_set(
                args[0].expect_set("convert_image_matrix")?,
                "convert_image_matrix",
            )?;
            let refs: Vec<&Image> = imgs.iter().map(|a| a.as_ref()).collect();
            crate::stats::check_same_shape(&refs)?;
            Ok(Value::Set(
                refs.iter()
                    .map(|img| Value::matrix(crate::convert::image_to_matrix(img)))
                    .collect(),
            ))
        },
    )?;
    r.register_fn(
        "compute_covariance",
        Signature::new(vec![TypeTag::Matrix.set_of()], TypeTag::Matrix),
        "band covariance matrix (Figure 4 stage 2)",
        |args| {
            let mats = matrices_from_set(
                args[0].expect_set("compute_covariance")?,
                "compute_covariance",
            )?;
            Ok(Value::matrix(band_matrix_covariance(&mats, false)?))
        },
    )?;
    r.register_fn(
        "compute_correlation",
        Signature::new(vec![TypeTag::Matrix.set_of()], TypeTag::Matrix),
        "band correlation matrix (SPCA variant of Figure 4 stage 2)",
        |args| {
            let mats = matrices_from_set(
                args[0].expect_set("compute_correlation")?,
                "compute_correlation",
            )?;
            Ok(Value::matrix(band_matrix_covariance(&mats, true)?))
        },
    )?;
    r.register_fn(
        "get_eigen_vectors",
        Signature::new(vec![TypeTag::Matrix], TypeTag::Matrix),
        "eigenvector basis of a symmetric matrix, columns by descending eigenvalue (Figure 4 stage 3)",
        |args| {
            let m = args[0].expect_matrix("get_eigen_vectors")?;
            let e = jacobi_eigen(m, 100, 1e-10)?;
            Ok(Value::matrix(e.vectors))
        },
    )?;
    r.register_fn(
        "linear_combination",
        Signature::new(
            vec![TypeTag::Matrix.set_of(), TypeTag::Matrix],
            TypeTag::Matrix.set_of(),
        ),
        "project centered band matrices through an eigenvector basis (Figure 4 stage 4)",
        |args| {
            let mats = matrices_from_set(
                args[0].expect_set("linear_combination")?,
                "linear_combination",
            )?;
            let basis = args[1].expect_matrix("linear_combination basis")?;
            let out = linear_combination_impl(&mats, basis, false)?;
            Ok(Value::Set(out.into_iter().map(Value::matrix).collect()))
        },
    )?;
    r.register_fn(
        "linear_combination_std",
        Signature::new(
            vec![TypeTag::Matrix.set_of(), TypeTag::Matrix],
            TypeTag::Matrix.set_of(),
        ),
        "standardized projection (SPCA variant of Figure 4 stage 4)",
        |args| {
            let mats = matrices_from_set(
                args[0].expect_set("linear_combination_std")?,
                "linear_combination_std",
            )?;
            let basis = args[1].expect_matrix("linear_combination_std basis")?;
            let out = linear_combination_impl(&mats, basis, true)?;
            Ok(Value::Set(out.into_iter().map(Value::matrix).collect()))
        },
    )?;
    r.register_fn(
        "convert_matrix_image",
        Signature::new(
            vec![TypeTag::Matrix.set_of(), TypeTag::Image],
            TypeTag::Image.set_of(),
        ),
        "re-impose a raster shape (from the template image) on each 1xN matrix (Figure 4 stage 5)",
        |args| {
            let mats = matrices_from_set(
                args[0].expect_set("convert_matrix_image")?,
                "convert_matrix_image",
            )?;
            let template = args[1].expect_image("convert_matrix_image template")?;
            let out: AdtResult<Vec<Value>> = mats
                .iter()
                .map(|m| {
                    matrix_row_to_image(m, 0, template.nrow(), template.ncol(), PixType::Float8)
                        .map(Value::image)
                })
                .collect();
            Ok(Value::Set(out?))
        },
    )?;

    // --- the compound operators themselves -----------------------------------
    r.register_compound(
        build_pca_dataflow("pca", false),
        "principal component analysis as the Figure 4 dataflow network",
    )?;
    r.register_compound(
        build_pca_dataflow("spca", true),
        "standardized PCA (Eastman 1992) as a Figure 4-style network over the correlation matrix",
    )?;
    Ok(())
}

/// A fully loaded registry: generic builtins + raster operators.
pub fn full_registry() -> OperatorRegistry {
    let mut r = OperatorRegistry::with_builtins();
    register_raster_ops(&mut r).expect("raster ops are internally consistent");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band_values(n: usize, f: impl Fn(usize) -> f64) -> Value {
        let data: Vec<f64> = (0..n * n).map(f).collect();
        Value::image(Image::from_f64(n as u32, n as u32, data).unwrap())
    }

    fn three_bands() -> Value {
        Value::Set(vec![
            band_values(8, |i| (i as f64 * 0.3).sin() * 40.0 + 100.0),
            band_values(8, |i| (i as f64 * 0.3).sin() * 30.0 + 60.0),
            band_values(8, |i| (i as f64 * 0.7).cos() * 20.0 + 80.0),
        ])
    }

    #[test]
    fn registry_loads_everything() {
        let r = full_registry();
        for name in [
            "composite",
            "unsuperclassify",
            "ndvi",
            "img_diff",
            "img_ratio",
            "pca",
            "spca",
            "convert_image_matrix",
            "compute_covariance",
            "get_eigen_vectors",
            "linear_combination",
            "convert_matrix_image",
            "temporal_interp",
            "rectify_shift",
            "resample",
            "threshold_below",
        ] {
            assert!(r.contains(name), "missing operator {name}");
        }
        assert!(r.get("pca").unwrap().is_compound());
        assert!(r.get("spca").unwrap().is_compound());
    }

    #[test]
    fn figure3_expression_evaluates() {
        // C20.data = unsuperclassify(composite(bands), 12)
        let r = full_registry();
        let bands = three_bands();
        let stack = r.invoke("composite", &[bands]).unwrap();
        let classified = r
            .invoke("unsuperclassify", &[stack, Value::Int4(12)])
            .unwrap();
        let img = classified.as_image().unwrap();
        assert_eq!((img.nrow(), img.ncol()), (8, 8));
        for i in 0..img.len() {
            assert!(img.get_flat(i) < 12.0);
        }
    }

    #[test]
    fn pca_dataflow_matches_fused_implementation() {
        let r = full_registry();
        let bands_val = three_bands();
        let out = r.invoke("pca", std::slice::from_ref(&bands_val)).unwrap();
        let comps = out.as_set().unwrap();
        assert_eq!(comps.len(), 3);
        // Compare against the fused library PCA.
        let imgs: Vec<Arc<Image>> = bands_val
            .as_set()
            .unwrap()
            .iter()
            .map(|v| v.as_image().unwrap().clone())
            .collect();
        let refs: Vec<&Image> = imgs.iter().map(|a| a.as_ref()).collect();
        let fused = crate::pca::pca(&refs).unwrap();
        for (k, comp) in comps.iter().enumerate() {
            let net_img = comp.as_image().unwrap();
            let fused_img = &fused.components[k];
            for p in 0..net_img.len() {
                assert!(
                    (net_img.get_flat(p) - fused_img.get_flat(p)).abs() < 1e-6,
                    "component {k} pixel {p}"
                );
            }
        }
    }

    #[test]
    fn spca_dataflow_differs_from_pca_on_scaled_bands() {
        let r = full_registry();
        let b1 = band_values(8, |i| (i as f64 * 0.3).sin() * 40.0 + 100.0);
        let b2_raw = band_values(8, |i| (i as f64 * 0.9).cos() * 3.0 + 10.0);
        let b2 = Value::image(
            b2_raw
                .as_image()
                .unwrap()
                .map(PixType::Float8, |v| v * 1000.0),
        );
        let bands = Value::Set(vec![b1, b2]);
        let p = r.invoke("pca", std::slice::from_ref(&bands)).unwrap();
        let s = r.invoke("spca", &[bands]).unwrap();
        assert_ne!(p, s);
    }

    #[test]
    fn temporal_interp_operator() {
        let r = full_registry();
        let a = Value::image(Image::from_f64(1, 1, vec![0.0]).unwrap());
        let b = Value::image(Image::from_f64(1, 1, vec![10.0]).unwrap());
        use gaea_adt::AbsTime;
        let v = r
            .invoke(
                "temporal_interp",
                &[
                    a,
                    Value::AbsTime(AbsTime(0)),
                    b,
                    Value::AbsTime(AbsTime(100)),
                    Value::AbsTime(AbsTime(25)),
                ],
            )
            .unwrap();
        assert_eq!(v.as_image().unwrap().get(0, 0), 2.5);
    }

    #[test]
    fn desert_mask_operators() {
        let r = full_registry();
        let rainfall =
            Value::image(Image::from_f64(1, 4, vec![100.0, 251.0, 249.0, 500.0]).unwrap());
        let mask = r
            .invoke("threshold_below", &[rainfall, Value::Float8(250.0)])
            .unwrap();
        let m = mask.as_image().unwrap();
        assert_eq!(m.to_f64_vec(), vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn composite_operator_rejects_ragged_bands() {
        let r = full_registry();
        let bands = Value::Set(vec![
            Value::image(Image::zeros(2, 2, PixType::Float8)),
            Value::image(Image::zeros(3, 3, PixType::Float8)),
        ]);
        assert!(r.invoke("composite", &[bands]).is_err());
    }

    #[test]
    fn unsuperclassify_is_deterministic() {
        let r = full_registry();
        let bands = three_bands();
        let a = r
            .invoke("unsuperclassify", &[bands.clone(), Value::Int4(4)])
            .unwrap();
        let b = r
            .invoke("unsuperclassify", &[bands, Value::Int4(4)])
            .unwrap();
        assert_eq!(a, b);
    }
}
