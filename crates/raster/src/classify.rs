//! `unsuperclassify()` — unsupervised classification by k-means (Figure 3).
//!
//! P20 groups "remotely sensed data into land cover classes based on their
//! similarity". The classic unsupervised classifier in IDRISI-era GIS is
//! iterative k-means / ISODATA clustering of per-pixel spectral vectors.
//! The implementation is fully deterministic for a given seed (k-means++
//! initialization drawn from a seeded PRNG) so that tasks recorded by Gaea
//! are *reproducible* — the paper's central requirement.

use crate::composite::BandStack;
use gaea_adt::{AdtError, AdtResult, Image, Matrix, PixType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means classification.
#[derive(Debug, Clone)]
pub struct KMeansOutcome {
    /// Per-pixel class labels in `[0, k)`, `char`-typed like an IDRISI map.
    pub labels: Image,
    /// k×bands centroid matrix.
    pub centroids: Matrix,
    /// Sum of squared distances of pixels to their centroid.
    pub inertia: f64,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
    /// True if the assignment reached a fixed point before the cap.
    pub converged: bool,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ initialization: spread the initial centroids out
/// proportionally to squared distance from the chosen set.
fn init_centroids(stack: &BandStack, k: usize, rng: &mut SmallRng) -> Vec<Vec<f64>> {
    let npix = stack.pixels();
    let mut feature = Vec::new();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.gen_range(0..npix);
    stack.feature(first, &mut feature);
    centroids.push(feature.clone());
    let mut dist2: Vec<f64> = (0..npix)
        .map(|p| {
            stack.feature(p, &mut feature);
            sq_dist(&feature, &centroids[0])
        })
        .collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let chosen = if total <= 0.0 {
            // All remaining pixels coincide with a centroid; pick uniformly.
            rng.gen_range(0..npix)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = npix - 1;
            for (p, d) in dist2.iter().enumerate() {
                if target < *d {
                    idx = p;
                    break;
                }
                target -= *d;
            }
            idx
        };
        stack.feature(chosen, &mut feature);
        centroids.push(feature.clone());
        let newest = centroids.last().expect("just pushed");
        for (p, d) in dist2.iter_mut().enumerate() {
            stack.feature(p, &mut feature);
            *d = d.min(sq_dist(&feature, newest));
        }
    }
    centroids
}

/// Unsupervised classification of a band stack into `k` classes.
///
/// * `k` — number of land-cover classes (12 in Figure 3).
/// * `max_iters` — Lloyd-iteration cap.
/// * `seed` — PRNG seed; **part of the derivation parameters**, so two tasks
///   with different seeds are different processes under the paper's rule
///   that "the same derivation method with different parameters represents
///   different processes".
pub fn kmeans_classify(
    stack: &BandStack,
    k: usize,
    max_iters: usize,
    seed: u64,
) -> AdtResult<KMeansOutcome> {
    let npix = stack.pixels();
    if k == 0 {
        return Err(AdtError::InvalidArgument("k must be positive".into()));
    }
    if npix == 0 {
        return Err(AdtError::InvalidArgument("empty raster".into()));
    }
    if k > npix {
        return Err(AdtError::InvalidArgument(format!(
            "k={k} exceeds pixel count {npix}"
        )));
    }
    if k > 255 {
        return Err(AdtError::InvalidArgument(
            "k must fit the char-typed class map (k <= 255)".into(),
        ));
    }
    let nb = stack.depth();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut centroids = init_centroids(stack, k, &mut rng);
    let mut labels = vec![0usize; npix];
    let mut feature = Vec::new();
    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (p, label) in labels.iter_mut().enumerate() {
            stack.feature(p, &mut feature);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let d = sq_dist(&feature, cent);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if *label != best {
                *label = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; nb]; k];
        let mut counts = vec![0usize; k];
        for (p, c) in labels.iter().copied().enumerate() {
            stack.feature(p, &mut feature);
            counts[c] += 1;
            for (b, v) in feature.iter().enumerate() {
                sums[c][b] += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the farthest pixel from its centroid.
                let far = (0..npix)
                    .max_by(|&a, &b| {
                        let mut fa = Vec::new();
                        let mut fb = Vec::new();
                        stack.feature(a, &mut fa);
                        stack.feature(b, &mut fb);
                        sq_dist(&fa, &centroids[labels[a]])
                            .total_cmp(&sq_dist(&fb, &centroids[labels[b]]))
                    })
                    .expect("npix > 0");
                stack.feature(far, &mut feature);
                centroids[c] = feature.clone();
                changed = true;
            } else {
                for b in 0..nb {
                    centroids[c][b] = sums[c][b] / counts[c] as f64;
                }
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    // Final inertia.
    let mut inertia = 0.0;
    for p in 0..npix {
        stack.feature(p, &mut feature);
        inertia += sq_dist(&feature, &centroids[labels[p]]);
    }
    let mut label_img = Image::zeros(stack.nrow(), stack.ncol(), PixType::Char);
    let label_f64: Vec<f64> = labels.iter().map(|l| *l as f64).collect();
    label_img = label_img.with_samples(PixType::Char, &label_f64)?;
    let mut cm = Matrix::zeros(k, nb);
    for (c, cent) in centroids.iter().enumerate() {
        for (b, v) in cent.iter().enumerate() {
            cm.set(c, b, *v);
        }
    }
    Ok(KMeansOutcome {
        labels: label_img,
        centroids: cm,
        inertia,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::composite;

    /// Two well-separated spectral clusters across two bands.
    fn two_cluster_stack() -> BandStack {
        // 4x4: left half ~ (10, 100), right half ~ (200, 20)
        let mut b1 = vec![0.0; 16];
        let mut b2 = vec![0.0; 16];
        for r in 0..4 {
            for c in 0..4 {
                let i = r * 4 + c;
                if c < 2 {
                    b1[i] = 10.0 + (i % 3) as f64;
                    b2[i] = 100.0 + (i % 2) as f64;
                } else {
                    b1[i] = 200.0 - (i % 3) as f64;
                    b2[i] = 20.0 + (i % 2) as f64;
                }
            }
        }
        let i1 = Image::from_f64(4, 4, b1).unwrap();
        let i2 = Image::from_f64(4, 4, b2).unwrap();
        composite(&[&i1, &i2]).unwrap()
    }

    #[test]
    fn separates_two_clusters() {
        let stack = two_cluster_stack();
        let out = kmeans_classify(&stack, 2, 50, 7).unwrap();
        assert!(out.converged);
        // All left pixels share a label; all right pixels share the other.
        let l = out.labels.get(0, 0);
        let r = out.labels.get(0, 3);
        assert_ne!(l, r);
        for row in 0..4 {
            for col in 0..4 {
                let expect = if col < 2 { l } else { r };
                assert_eq!(out.labels.get(row, col), expect, "({row},{col})");
            }
        }
    }

    #[test]
    fn labels_bounded_by_k() {
        let stack = two_cluster_stack();
        let out = kmeans_classify(&stack, 5, 50, 3).unwrap();
        for i in 0..16 {
            assert!(out.labels.get_flat(i) < 5.0);
        }
        assert_eq!(out.centroids.rows(), 5);
        assert_eq!(out.centroids.cols(), 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let stack = two_cluster_stack();
        let a = kmeans_classify(&stack, 3, 50, 99).unwrap();
        let b = kmeans_classify(&stack, 3, 50, 99).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids.data(), b.centroids.data());
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_one_groups_everything() {
        let stack = two_cluster_stack();
        let out = kmeans_classify(&stack, 1, 50, 1).unwrap();
        for i in 0..16 {
            assert_eq!(out.labels.get_flat(i), 0.0);
        }
        // Centroid is the global band mean.
        let mean_b1: f64 = (0..16).map(|i| stack.bands()[0].get_flat(i)).sum::<f64>() / 16.0;
        assert!((out.centroids.get(0, 0) - mean_b1).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let stack = two_cluster_stack();
        assert!(kmeans_classify(&stack, 0, 50, 1).is_err());
        assert!(kmeans_classify(&stack, 17, 50, 1).is_err()); // k > pixels
        assert!(kmeans_classify(&stack, 256, 50, 1).is_err());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let stack = two_cluster_stack();
        let i1 = kmeans_classify(&stack, 1, 50, 5).unwrap().inertia;
        let i2 = kmeans_classify(&stack, 2, 50, 5).unwrap().inertia;
        let i4 = kmeans_classify(&stack, 4, 50, 5).unwrap().inertia;
        assert!(i2 < i1);
        assert!(i4 <= i2 + 1e-9);
    }

    #[test]
    fn different_seed_may_differ_but_stays_valid() {
        let stack = two_cluster_stack();
        let out = kmeans_classify(&stack, 4, 50, 1234).unwrap();
        assert!(out.inertia.is_finite());
        assert!(out.iterations >= 1);
    }
}
