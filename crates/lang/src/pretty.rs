//! Pretty-printer: AST back to surface text.
//!
//! `parse(pretty_program(parse(src))) == parse(src)` — the round-trip
//! property tested below and in the property suite, for definitions and
//! `RETRIEVE` statements alike.

use crate::ast::{
    ClassItem, ConceptItem, IndexItem, Item, LitValue, ProcessItem, Program, RetrieveItem, TimeLit,
    WhereItem,
};
use gaea_core::query::AttrCmp;
use std::fmt::Write as _;

/// Render a program.
pub fn pretty_program(prog: &Program) -> String {
    let mut out = String::new();
    for (i, item) in prog.items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match item {
            Item::Class(c) => pretty_class(&mut out, c),
            Item::Process(p) => pretty_process(&mut out, p),
            Item::Concept(c) => pretty_concept(&mut out, c),
            Item::Retrieve(r) => {
                out.push_str(&pretty_retrieve(r));
                out.push('\n');
            }
            Item::Index(ix) => pretty_index(&mut out, ix),
        }
    }
    out
}

/// Render one `RETRIEVE` statement (no trailing newline).
pub fn pretty_retrieve(r: &RetrieveItem) -> String {
    let mut out = String::new();
    out.push_str("RETRIEVE ");
    if r.projection.is_empty() {
        out.push('*');
    } else {
        out.push_str(&r.projection.join(", "));
    }
    write!(out, " FROM {}", r.target).expect("write to string");
    for (i, w) in r.where_clauses.iter().enumerate() {
        out.push_str(if i == 0 { " WHERE " } else { " AND " });
        match w {
            WhereItem::Attr { attr, cmp, value } => {
                let op = match cmp {
                    AttrCmp::Eq => "=",
                    AttrCmp::Lt => "<",
                    AttrCmp::Gt => ">",
                };
                write!(out, "{attr} {op} {}", pretty_lit(value)).expect("write to string");
            }
            WhereItem::Within {
                xmin,
                ymin,
                xmax,
                ymax,
            } => {
                write!(out, "WITHIN({xmin}, {ymin}, {xmax}, {ymax})").expect("write to string");
            }
            WhereItem::At(t) => write!(out, "AT {}", pretty_time(t)).expect("write to string"),
            WhereItem::Between(a, b) => {
                write!(out, "BETWEEN {} AND {}", pretty_time(a), pretty_time(b))
                    .expect("write to string");
            }
        }
    }
    if let Some(derive) = &r.derive {
        out.push_str(" DERIVE");
        if derive.is_async {
            out.push_str(" ASYNC");
        }
        if let Some(using) = &derive.using {
            write!(out, " USING {using}").expect("write to string");
        }
        if let Some(cost) = &derive.cost {
            write!(out, " COST {cost}").expect("write to string");
        }
    }
    if r.fresh {
        out.push_str(" FRESH");
    }
    if let Some(ob) = &r.order_by {
        write!(out, " ORDER BY {}", ob.attr).expect("write to string");
        if ob.desc {
            out.push_str(" DESC");
        }
    }
    if let Some(limit) = r.limit {
        write!(out, " LIMIT {limit}").expect("write to string");
    }
    out
}

fn pretty_index(out: &mut String, ix: &IndexItem) {
    writeln!(out, "DEFINE INDEX {} ON {}", ix.attr, ix.class).expect("write to string");
}

/// Render a literal so it re-lexes to the same [`LitValue`]: floats with
/// no fractional part gain an explicit `.0` (a bare `2` would come back
/// as an integer token).
fn pretty_lit(v: &LitValue) -> String {
    match v {
        LitValue::Int(i) => i.to_string(),
        LitValue::Float(f) if f.fract() == 0.0 => format!("{f:.1}"),
        LitValue::Float(f) => f.to_string(),
        LitValue::Str(s) => format!("\"{s}\""),
    }
}

fn pretty_time(t: &TimeLit) -> String {
    match t {
        TimeLit::Epoch(e) => e.to_string(),
        TimeLit::Date(d) => format!("\"{d}\""),
    }
}

fn pretty_class(out: &mut String, c: &ClassItem) {
    write!(out, "CLASS {} (", c.name).expect("write to string");
    if !c.doc.is_empty() {
        write!(out, " // {}", c.doc).expect("write to string");
    }
    out.push('\n');
    if !c.attrs.is_empty() || !c.ref_attrs.is_empty() {
        out.push_str("  ATTRIBUTES:\n");
        for (name, ty, comment) in &c.attrs {
            write!(out, "    {name} = {ty};").expect("write to string");
            if !comment.is_empty() {
                write!(out, " // {comment}").expect("write to string");
            }
            out.push('\n');
        }
        for (name, class, comment) in &c.ref_attrs {
            write!(out, "    {name} = ref {class};").expect("write to string");
            if !comment.is_empty() {
                write!(out, " // {comment}").expect("write to string");
            }
            out.push('\n');
        }
    }
    if c.spatial {
        out.push_str("  SPATIAL EXTENT:\n    spatialextent = box;\n");
    }
    if c.temporal {
        out.push_str("  TEMPORAL EXTENT:\n    timestamp = abstime;\n");
    }
    if !c.derived_by.is_empty() {
        writeln!(out, "  DERIVED BY: {}", c.derived_by.join(", ")).expect("write to string");
    }
    out.push_str(")\n");
}

fn pretty_process(out: &mut String, p: &ProcessItem) {
    writeln!(out, "DEFINE PROCESS {} (", p.name).expect("write to string");
    writeln!(out, "  OUTPUT {}", p.output).expect("write to string");
    out.push_str("  ARGUMENT ( ");
    for (i, a) in p.args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if a.setof {
            write!(out, "SETOF {} {}", a.name, a.class).expect("write to string");
        } else {
            write!(out, "{} {}", a.name, a.class).expect("write to string");
        }
    }
    out.push_str(" )\n");
    if !p.interactions.is_empty() {
        out.push_str("  INTERACTIONS {\n");
        for i in &p.interactions {
            write!(out, "    PARAM {} : {}", i.param, i.type_name).expect("write to string");
            if let Some(preview) = &i.preview {
                write!(out, " PREVIEW {preview}").expect("write to string");
            }
            out.push(';');
            if !i.prompt.is_empty() {
                write!(out, " // {}", i.prompt).expect("write to string");
            }
            out.push('\n');
        }
        out.push_str("  }\n");
    }
    if let Some(site) = &p.external_site {
        writeln!(out, "  EXTERNAL AT {site:?}").expect("write to string");
    }
    if let Some(procedure) = &p.nonapplicative {
        writeln!(out, "  NONAPPLICATIVE {procedure:?}").expect("write to string");
    }
    if let Some(cost) = &p.cost {
        writeln!(out, "  COST {cost}").expect("write to string");
    }
    if !p.assertions.is_empty() || !p.mappings.is_empty() {
        out.push_str("  TEMPLATE {\n");
        if !p.assertions.is_empty() {
            out.push_str("    ASSERTIONS:\n");
            for a in &p.assertions {
                writeln!(out, "      {a};").expect("write to string");
            }
        }
        if !p.mappings.is_empty() {
            out.push_str("    MAPPINGS:\n");
            for (target, attr, e) in &p.mappings {
                writeln!(out, "      {target}.{attr} = {e};").expect("write to string");
            }
        }
        out.push_str("  }\n");
    }
    out.push_str(")\n");
}

fn pretty_concept(out: &mut String, c: &ConceptItem) {
    writeln!(out, "DEFINE CONCEPT {} (", c.name).expect("write to string");
    if !c.members.is_empty() {
        writeln!(out, "  MEMBERS: {};", c.members.join(", ")).expect("write to string");
    }
    if !c.isa.is_empty() {
        writeln!(out, "  ISA: {};", c.isa.join(", ")).expect("write to string");
    }
    if !c.doc.is_empty() {
        writeln!(out, "  DOC: \"{}\";", c.doc).expect("write to string");
    }
    out.push_str(")\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
CLASS landcover ( // Land cover
  ATTRIBUTES:
    area = char16; // area name
    data = image;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: P20
)

DEFINE PROCESS P20 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm, reference aux )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;
      common(bands.spatialextent);
    MAPPINGS:
      landcover.data = unsuperclassify(composite(bands), 12);
      landcover.spatialextent = ANYOF bands.spatialextent;
  }
)

DEFINE CONCEPT veg (
  MEMBERS: landcover;
  DOC: "whatever";
)
"#;

    #[test]
    fn round_trip_is_stable() {
        let ast1 = parse(SRC).unwrap();
        let printed = pretty_program(&ast1);
        let ast2 = parse(&printed).unwrap();
        assert_eq!(ast1, ast2, "pretty-printed program re-parses identically");
        // And printing again is a fixpoint.
        assert_eq!(printed, pretty_program(&ast2));
    }

    #[test]
    fn retrieve_round_trips_byte_identically() {
        let src = "RETRIEVE data, numclass FROM landcover WHERE numclass = 12 \
                   AND WITHIN(-20, -35, 55, 38) AND AT \"1986-01-15\" \
                   DERIVE USING P20 COST newest FRESH";
        let item = crate::parser::parse_query(src).unwrap();
        let printed = pretty_retrieve(&item);
        assert_eq!(printed, src, "canonical text is a pretty fixpoint");
        assert_eq!(crate::parser::parse_query(&printed).unwrap(), item);
        // Whole-float literals re-lex as floats, not integers.
        let item = crate::parser::parse_query("RETRIEVE * FROM x WHERE v > 2.0").unwrap();
        let printed = pretty_retrieve(&item);
        assert!(printed.contains("2.0"), "{printed}");
        assert_eq!(crate::parser::parse_query(&printed).unwrap(), item);
        // DERIVE ASYNC round-trips in canonical clause order.
        let src = "RETRIEVE * FROM landcover DERIVE ASYNC USING P20 COST newest";
        let item = crate::parser::parse_query(src).unwrap();
        assert_eq!(pretty_retrieve(&item), src);
        assert_eq!(crate::parser::parse_query(src).unwrap(), item);
    }

    #[test]
    fn process_cost_round_trips() {
        let src = "DEFINE PROCESS p (\n  OUTPUT lc\n  ARGUMENT ( x tm )\n  COST oldest\n)\n";
        let ast = parse(src).unwrap();
        let printed = pretty_program(&ast);
        assert!(printed.contains("COST oldest"), "{printed}");
        assert_eq!(parse(&printed).unwrap(), ast);
    }

    #[test]
    fn renders_expected_surface() {
        let ast = parse(SRC).unwrap();
        let printed = pretty_program(&ast);
        assert!(printed.contains("CLASS landcover ( // Land cover"));
        assert!(printed.contains("SETOF bands tm, reference aux"));
        assert!(printed.contains("card(bands) = 3;"));
        assert!(printed.contains("landcover.spatialextent = ANYOF bands.spatialextent;"));
        assert!(printed.contains("DOC: \"whatever\";"));
    }
}
