//! AST for the Gaea definition and query language.

use gaea_core::query::AttrCmp;
use gaea_core::template::Expr;

/// A parsed program: a sequence of definitions and queries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// One top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `CLASS name ( ... )`
    Class(ClassItem),
    /// `DEFINE PROCESS name ( ... )`
    Process(ProcessItem),
    /// `DEFINE CONCEPT name ( ... )`
    Concept(ConceptItem),
    /// `RETRIEVE ... FROM ... [WHERE ...]` — a query, not a definition;
    /// executed through `Gaea::retrieve`, never lowered into the catalog.
    Retrieve(RetrieveItem),
    /// `DEFINE INDEX attr ON class` — declare an access path on one
    /// class attribute (ordered index, or spatial grid for box attrs).
    Index(IndexItem),
}

/// A `DEFINE INDEX` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexItem {
    /// Indexed attribute name.
    pub attr: String,
    /// Class whose extent carries the index.
    pub class: String,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassItem {
    /// Class name.
    pub name: String,
    /// Leading comment (the `// Land cover` after the header).
    pub doc: String,
    /// ATTRIBUTES entries: (name, type-name, trailing comment).
    pub attrs: Vec<(String, String, String)>,
    /// Reference attributes (`subject = ref scene;`): (name, class name,
    /// trailing comment) — the §4.3 non-primitive-attribute extension.
    pub ref_attrs: Vec<(String, String, String)>,
    /// SPATIAL EXTENT present?
    pub spatial: bool,
    /// TEMPORAL EXTENT present?
    pub temporal: bool,
    /// DERIVED BY names (documentation links; presence ⇒ derived class).
    pub derived_by: Vec<String>,
}

/// A process argument.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgItem {
    /// `SETOF`?
    pub setof: bool,
    /// Argument name.
    pub name: String,
    /// Input class name.
    pub class: String,
}

/// One declared interaction point (§4.3 extension):
/// `PARAM signatures : matrix PREVIEW composite(bands); // prompt`.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionItem {
    /// Parameter name the template references as `PARAM name`.
    pub param: String,
    /// Declared type name (`matrix`, `float8`, ...).
    pub type_name: String,
    /// Optional preview expression shown to the scientist.
    pub preview: Option<Expr>,
    /// Prompt (the trailing comment).
    pub prompt: String,
}

/// A process definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessItem {
    /// Process name.
    pub name: String,
    /// Output class name.
    pub output: String,
    /// Arguments.
    pub args: Vec<ArgItem>,
    /// ASSERTIONS expressions.
    pub assertions: Vec<Expr>,
    /// MAPPINGS: (qualified-target, attr, expr). The qualifier must equal
    /// the output class name (checked during lowering).
    pub mappings: Vec<(String, String, Expr)>,
    /// INTERACTIONS entries (§4.3 extension).
    pub interactions: Vec<InteractionItem>,
    /// `EXTERNAL AT "site"` (§5 extension: non-local process).
    pub external_site: Option<String>,
    /// `NONAPPLICATIVE "procedure"` (§5 extension).
    pub nonapplicative: Option<String>,
    /// `COST oldest|newest` — the declared bind-stage cost hint, kept as
    /// the raw keyword (validated during lowering).
    pub cost: Option<String>,
}

/// A concept definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptItem {
    /// Concept name.
    pub name: String,
    /// Member class names.
    pub members: Vec<String>,
    /// ISA parent concept names.
    pub isa: Vec<String>,
    /// Free-text definition.
    pub doc: String,
}

/// A literal constant in a `WHERE` predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum LitValue {
    /// Integer literal (coerced to the attribute's integer/float/abstime
    /// type during lowering).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Quoted string literal.
    Str(String),
}

/// A time literal: an epoch-second integer or a quoted `"YYYY-MM-DD"`
/// calendar date (validated during lowering).
#[derive(Debug, Clone, PartialEq)]
pub enum TimeLit {
    /// Seconds since the epoch.
    Epoch(i64),
    /// `"YYYY-MM-DD"`, kept raw for faithful pretty-printing.
    Date(String),
}

/// One conjunct of a `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum WhereItem {
    /// `attr = lit`, `attr < lit`, `attr > lit`.
    Attr {
        /// Attribute name (extents included under their reserved names).
        attr: String,
        /// Comparison operator.
        cmp: AttrCmp,
        /// Right-hand constant.
        value: LitValue,
    },
    /// `WITHIN (xmin, ymin, xmax, ymax)` — the spatial window.
    Within {
        /// West edge.
        xmin: f64,
        /// South edge.
        ymin: f64,
        /// East edge.
        xmax: f64,
        /// North edge.
        ymax: f64,
    },
    /// `AT t` — pin an instant (interpolation may synthesize it).
    At(TimeLit),
    /// `BETWEEN t1 AND t2` — a temporal window.
    Between(TimeLit, TimeLit),
}

/// The optional `DERIVE` clause: permit step-3 computation, optionally
/// asynchronously, optionally pinning the goal's producing process
/// and/or the bind-stage cost hint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeriveClause {
    /// `ASYNC` — submit the derivation as a background job instead of
    /// blocking the statement on it; the query answers with the job id.
    pub is_async: bool,
    /// `USING process` — pin the producer of the goal class.
    pub using: Option<String>,
    /// `COST oldest|newest`, kept as the raw keyword (validated during
    /// lowering against [`gaea_core::query::CostHint::parse`]).
    pub cost: Option<String>,
}

/// The `ORDER BY` clause: one attribute, ascending unless `DESC`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Ordering attribute name.
    pub attr: String,
    /// `DESC` present? (the canonical surface omits `ASC`).
    pub desc: bool,
}

/// A `RETRIEVE` statement:
///
/// ```text
/// RETRIEVE <projection> FROM <class-or-concept>
///   [WHERE <clause> [AND <clause>]*]
///   [DERIVE [ASYNC] [USING <process>] [COST <hint>]]
///   [FRESH]
///   [ORDER BY <attr> [ASC|DESC]]
///   [LIMIT <n>]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetrieveItem {
    /// Projected attribute names; empty means `*` (all attributes).
    pub projection: Vec<String>,
    /// Target class or concept name (resolved during lowering; classes
    /// shadow concepts of the same name).
    pub target: String,
    /// Conjunctive `WHERE` clauses in source order.
    pub where_clauses: Vec<WhereItem>,
    /// The `DERIVE` clause, if computation is permitted.
    pub derive: Option<DeriveClause>,
    /// `FRESH` — refuse stale answers; re-fire them instead.
    pub fresh: bool,
    /// `ORDER BY attr [ASC|DESC]` — sort the answer (ties break by
    /// object id ascending).
    pub order_by: Option<OrderByItem>,
    /// `LIMIT n` — keep only the first `n` objects of the (ordered)
    /// answer.
    pub limit: Option<u64>,
}
