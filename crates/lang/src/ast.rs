//! AST for the Gaea definition language.

use gaea_core::template::Expr;

/// A parsed program: a sequence of definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// One top-level definition.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `CLASS name ( ... )`
    Class(ClassItem),
    /// `DEFINE PROCESS name ( ... )`
    Process(ProcessItem),
    /// `DEFINE CONCEPT name ( ... )`
    Concept(ConceptItem),
}

/// A class definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassItem {
    /// Class name.
    pub name: String,
    /// Leading comment (the `// Land cover` after the header).
    pub doc: String,
    /// ATTRIBUTES entries: (name, type-name, trailing comment).
    pub attrs: Vec<(String, String, String)>,
    /// Reference attributes (`subject = ref scene;`): (name, class name,
    /// trailing comment) — the §4.3 non-primitive-attribute extension.
    pub ref_attrs: Vec<(String, String, String)>,
    /// SPATIAL EXTENT present?
    pub spatial: bool,
    /// TEMPORAL EXTENT present?
    pub temporal: bool,
    /// DERIVED BY names (documentation links; presence ⇒ derived class).
    pub derived_by: Vec<String>,
}

/// A process argument.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgItem {
    /// `SETOF`?
    pub setof: bool,
    /// Argument name.
    pub name: String,
    /// Input class name.
    pub class: String,
}

/// One declared interaction point (§4.3 extension):
/// `PARAM signatures : matrix PREVIEW composite(bands); // prompt`.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionItem {
    /// Parameter name the template references as `PARAM name`.
    pub param: String,
    /// Declared type name (`matrix`, `float8`, ...).
    pub type_name: String,
    /// Optional preview expression shown to the scientist.
    pub preview: Option<Expr>,
    /// Prompt (the trailing comment).
    pub prompt: String,
}

/// A process definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessItem {
    /// Process name.
    pub name: String,
    /// Output class name.
    pub output: String,
    /// Arguments.
    pub args: Vec<ArgItem>,
    /// ASSERTIONS expressions.
    pub assertions: Vec<Expr>,
    /// MAPPINGS: (qualified-target, attr, expr). The qualifier must equal
    /// the output class name (checked during lowering).
    pub mappings: Vec<(String, String, Expr)>,
    /// INTERACTIONS entries (§4.3 extension).
    pub interactions: Vec<InteractionItem>,
    /// `EXTERNAL AT "site"` (§5 extension: non-local process).
    pub external_site: Option<String>,
    /// `NONAPPLICATIVE "procedure"` (§5 extension).
    pub nonapplicative: Option<String>,
}

/// A concept definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptItem {
    /// Concept name.
    pub name: String,
    /// Member class names.
    pub members: Vec<String>,
    /// ISA parent concept names.
    pub isa: Vec<String>,
    /// Free-text definition.
    pub doc: String,
}
