//! Lowering: register a parsed program into the kernel catalog, and
//! compile `RETRIEVE` statements onto the kernel's query plan.
//!
//! Classes are registered first (processes reference output classes), then
//! processes, then concepts (which reference classes). A `SETOF` argument's
//! minimum cardinality is recovered from `card(arg) = N` / `card(arg) > N`
//! assertions, defaulting to 1 — exactly how Figure 3's `card(bands) = 3`
//! induces the Petri-net threshold of 3.
//!
//! [`lower_query`] is the query half: it resolves the `FROM` target
//! against the catalog (class first, concept second), coerces `WHERE`
//! literals to the attributes' declared types, and maps the `DERIVE` /
//! `COST` / `FRESH` clauses onto the plan/bind/fire/project pipeline's
//! parameters. The [`Retrieve`] extension trait packages the whole chain
//! as `gaea.retrieve("RETRIEVE … WHERE …")`.

use crate::ast::{
    ClassItem, ConceptItem, Item, LitValue, ProcessItem, Program, RetrieveItem, TimeLit, WhereItem,
};
use crate::parser::parse_query;
use gaea_adt::{AbsTime, GeoBox, TimeRange, TypeTag, Value};
use gaea_core::catalog::Catalog;
use gaea_core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea_core::query::{
    AttrPred, CostHint, OrderBy, Query, QueryOutcome, QueryStrategy, QueryTarget, TimeSel,
};
use gaea_core::schema::{ClassDef, ClassKind};
use gaea_core::template::{CmpOp, Expr, Mapping, Template};
use gaea_core::{ClassId, ConceptId, JobId, KernelError, KernelResult, ProcessId};

/// Everything a lowering registered.
#[derive(Debug, Default)]
pub struct Lowered {
    /// Classes in definition order.
    pub classes: Vec<ClassId>,
    /// Processes in definition order.
    pub processes: Vec<ProcessId>,
    /// Concepts in definition order.
    pub concepts: Vec<ConceptId>,
    /// `DEFINE INDEX` declarations in definition order: (class, attr).
    pub indexes: Vec<(String, String)>,
}

/// Lower a whole program into the kernel. Programs are definitions;
/// `RETRIEVE` statements are queries and are rejected here — execute them
/// with [`Retrieve::retrieve`] instead.
pub fn lower_program(gaea: &mut Gaea, program: &Program) -> KernelResult<Lowered> {
    let mut out = Lowered::default();
    if let Some(Item::Retrieve(r)) = program
        .items
        .iter()
        .find(|i| matches!(i, Item::Retrieve(_)))
    {
        return Err(KernelError::Schema(format!(
            "RETRIEVE FROM {} is a query, not a definition; run it with Gaea::retrieve",
            r.target
        )));
    }
    // Pass 1: classes.
    for item in &program.items {
        if let Item::Class(c) = item {
            out.classes.push(lower_class(gaea, c)?);
        }
    }
    // Pass 2: processes.
    for item in &program.items {
        if let Item::Process(p) = item {
            out.processes.push(lower_process(gaea, p)?);
        }
    }
    // Pass 3: concepts.
    for item in &program.items {
        if let Item::Concept(c) = item {
            out.concepts.push(lower_concept(gaea, c)?);
        }
    }
    // Pass 4: index declarations (classes must exist by now).
    for item in &program.items {
        if let Item::Index(ix) = item {
            gaea.define_index(&ix.class, &ix.attr)?;
            out.indexes.push((ix.class.clone(), ix.attr.clone()));
        }
    }
    Ok(out)
}

fn lower_class(gaea: &mut Gaea, item: &ClassItem) -> KernelResult<ClassId> {
    let kind = if item.derived_by.is_empty() {
        ClassKind::Base
    } else {
        ClassKind::Derived
    };
    let mut spec = ClassSpec {
        name: item.name.clone(),
        kind,
        attrs: vec![],
        ref_attrs: vec![],
        spatial: item.spatial,
        temporal: item.temporal,
        doc: item.doc.clone(),
    };
    for (name, type_name, comment) in &item.attrs {
        let tag = TypeTag::parse(type_name).ok_or_else(|| {
            KernelError::Schema(format!(
                "class {}: unknown attribute type {type_name:?} for {name:?}",
                item.name
            ))
        })?;
        spec.attrs
            .push(gaea_core::schema::AttrDef::with_doc(name, tag, comment));
    }
    for (name, class, _comment) in &item.ref_attrs {
        spec.ref_attrs.push((name.clone(), class.clone()));
    }
    gaea.define_class(spec)
}

/// Extract `card(arg) = N` (or `> N`) thresholds from assertions.
fn min_card_of(arg: &str, assertions: &[Expr]) -> u64 {
    for a in assertions {
        if let Expr::Cmp { op, lhs, rhs } = a {
            if let Expr::Card(inner) = lhs.as_ref() {
                if let Expr::Arg(name) = inner.as_ref() {
                    if name == arg {
                        if let Expr::Const(v) = rhs.as_ref() {
                            if let Some(n) = v.as_f64() {
                                let n = n.max(0.0) as u64;
                                return match op {
                                    CmpOp::Eq => n,
                                    CmpOp::Gt => n + 1,
                                    CmpOp::Lt => 1,
                                };
                            }
                        }
                    }
                }
            }
        }
    }
    1
}

fn lower_process(gaea: &mut Gaea, item: &ProcessItem) -> KernelResult<ProcessId> {
    // NONAPPLICATIVE processes carry no template at all (§5 extension),
    // and never fire automatically — a bind-stage COST hint is meaningless.
    if let Some(procedure) = &item.nonapplicative {
        if !item.assertions.is_empty()
            || !item.mappings.is_empty()
            || !item.interactions.is_empty()
            || item.external_site.is_some()
            || item.cost.is_some()
        {
            return Err(KernelError::Schema(format!(
                "process {}: NONAPPLICATIVE excludes TEMPLATE/INTERACTIONS/EXTERNAL/COST",
                item.name
            )));
        }
        let args: Vec<(String, String, bool, u64)> = item
            .args
            .iter()
            .map(|a| (a.name.clone(), a.class.clone(), a.setof, 1))
            .collect();
        return gaea.define_nonapplicative_process(&item.name, &item.output, &args, procedure, "");
    }
    let mut spec = ProcessSpec::new(&item.name, &item.output);
    if let Some(cost) = &item.cost {
        spec = spec.cost_hint(parse_cost_hint(cost)?);
    }
    for arg in &item.args {
        if arg.setof {
            let min = min_card_of(&arg.name, &item.assertions);
            spec = spec.setof_arg(&arg.name, &arg.class, min);
        } else {
            spec = spec.arg(&arg.name, &arg.class);
        }
    }
    let mut mappings = Vec::new();
    for (target, attr, expr) in &item.mappings {
        if target != &item.output {
            return Err(KernelError::Schema(format!(
                "process {}: mapping target {target}.{attr} does not name the output class {}",
                item.name, item.output
            )));
        }
        mappings.push(Mapping {
            attr: attr.clone(),
            expr: expr.clone(),
        });
    }
    spec = spec.template(Template {
        assertions: item.assertions.clone(),
        mappings,
    });
    for i in &item.interactions {
        let expected = TypeTag::parse(&i.type_name).ok_or_else(|| {
            KernelError::Schema(format!(
                "process {}: unknown interaction type {:?} for PARAM {:?}",
                item.name, i.type_name, i.param
            ))
        })?;
        spec.interactions.push(gaea_core::schema::InteractionPoint {
            param: i.param.clone(),
            prompt: i.prompt.clone(),
            preview: i.preview.clone(),
            expected,
        });
    }
    // EXTERNAL AT routes the definition through the §5 path.
    if let Some(site) = &item.external_site {
        return gaea.define_external_process(spec, site);
    }
    gaea.define_process(spec)
}

fn lower_concept(gaea: &mut Gaea, item: &ConceptItem) -> KernelResult<ConceptId> {
    let members: Vec<&str> = item.members.iter().map(String::as_str).collect();
    let parents: Vec<&str> = item.isa.iter().map(String::as_str).collect();
    gaea.define_concept(&item.name, &members, &parents, &item.doc)
}

// ----------------------------------------------------------------------
// Query lowering: RETRIEVE → the kernel's Query plan
// ----------------------------------------------------------------------

fn parse_cost_hint(raw: &str) -> KernelResult<CostHint> {
    CostHint::parse(raw).ok_or_else(|| {
        KernelError::Schema(format!(
            "unknown COST hint {raw:?}; expected `oldest` or `newest`"
        ))
    })
}

fn parse_date(raw: &str) -> KernelResult<AbsTime> {
    let bad = || KernelError::Schema(format!("bad date literal {raw:?}; expected \"YYYY-MM-DD\""));
    let mut parts = raw.splitn(3, '-');
    // A leading '-' (negative year) would split wrong; the paper's data is
    // firmly CE, so reject it as malformed rather than guessing.
    let y: i64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let m: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let d: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    AbsTime::from_ymd(y, m, d).map_err(|e| KernelError::Schema(format!("bad date {raw:?}: {e}")))
}

fn time_of(lit: &TimeLit) -> KernelResult<AbsTime> {
    match lit {
        TimeLit::Epoch(e) => Ok(AbsTime(*e)),
        TimeLit::Date(d) => parse_date(d),
    }
}

/// Coerce a surface literal to the declared type of the attribute it is
/// compared against, so store-level comparisons are exact (a bare `12`
/// must become `Int4(12)` against an `int4` column but `Float8(12.0)`
/// against a `float8` one).
fn coerce_literal(class: &str, attr: &str, tag: &TypeTag, lit: &LitValue) -> KernelResult<Value> {
    let mismatch = || {
        KernelError::Schema(format!(
            "predicate literal {lit:?} does not fit attribute {attr:?} of class {class} ({tag})"
        ))
    };
    Ok(match (tag, lit) {
        (TypeTag::Int2, LitValue::Int(v)) => {
            Value::Int2(i16::try_from(*v).map_err(|_| mismatch())?)
        }
        (TypeTag::Int4, LitValue::Int(v)) => {
            Value::Int4(i32::try_from(*v).map_err(|_| mismatch())?)
        }
        (TypeTag::Float4, LitValue::Int(v)) => Value::Float4(*v as f32),
        (TypeTag::Float4, LitValue::Float(v)) => Value::Float4(*v as f32),
        (TypeTag::Float8, LitValue::Int(v)) => Value::Float8(*v as f64),
        (TypeTag::Float8, LitValue::Float(v)) => Value::Float8(*v),
        (TypeTag::Char16, LitValue::Str(s)) => Value::Char16(s.clone()),
        (TypeTag::Text, LitValue::Str(s)) => Value::Text(s.clone()),
        (TypeTag::Bool, LitValue::Int(v)) if *v == 0 || *v == 1 => Value::Bool(*v == 1),
        (TypeTag::AbsTime, LitValue::Int(v)) => Value::AbsTime(AbsTime(*v)),
        (TypeTag::AbsTime, LitValue::Str(s)) => Value::AbsTime(parse_date(s)?),
        _ => return Err(mismatch()),
    })
}

/// Compile one parsed `RETRIEVE` statement onto the kernel's query plan.
///
/// * the `FROM` target resolves to a class, or failing that a concept
///   (classes shadow concepts of the same name);
/// * `WHERE` clauses split into the spatial window, the temporal
///   selection, and attribute predicates with type-coerced literals;
/// * no `DERIVE` clause means retrieval only — the statement never
///   computes; `DERIVE` permits step-2/3 with derivation preferred,
///   `ASYNC` submits the derivation as a background job (the statement
///   answers with the job id instead of blocking), `USING` pins the
///   goal's producer, `COST` overrides the bind order;
/// * `FRESH` refuses stale answers (stale hits are re-fired).
pub fn lower_query(gaea: &Gaea, item: &RetrieveItem) -> KernelResult<Query> {
    lower_query_catalog(gaea.catalog(), item)
}

/// [`lower_query`] against a bare [`Catalog`] — the form snapshot-pinned
/// readers need: a server session compiling a statement onto a
/// [`gaea_core::kernel::ReadView`] resolves names against the *pinned*
/// catalog, not the live kernel's, so a concurrent `CLASS` definition
/// can never make a read see a class its data snapshot predates.
pub fn lower_query_catalog(catalog: &Catalog, item: &RetrieveItem) -> KernelResult<Query> {
    let (target, classes): (QueryTarget, Vec<&ClassDef>) =
        if let Ok(def) = catalog.class_by_name(&item.target) {
            (QueryTarget::Class(item.target.clone()), vec![def])
        } else if catalog.concept_by_name(&item.target).is_ok() {
            (
                QueryTarget::Concept(item.target.clone()),
                catalog.concept_member_classes(&item.target)?,
            )
        } else {
            return Err(KernelError::NotFound {
                kind: "class or concept",
                name: item.target.clone(),
            });
        };
    let mut q = match &target {
        QueryTarget::Class(name) => Query::class(name),
        QueryTarget::Concept(name) => Query::concept(name),
    };
    q.strategy = QueryStrategy::RetrieveOnly;
    for clause in &item.where_clauses {
        match clause {
            WhereItem::Within {
                xmin,
                ymin,
                xmax,
                ymax,
            } => {
                if q.spatial.is_some() {
                    return Err(KernelError::Schema(
                        "duplicate WITHIN clause in RETRIEVE".into(),
                    ));
                }
                q.spatial = Some(GeoBox::new(*xmin, *ymin, *xmax, *ymax));
            }
            WhereItem::At(t) => {
                if q.time.is_some() {
                    return Err(KernelError::Schema(
                        "duplicate temporal clause in RETRIEVE (AT/BETWEEN)".into(),
                    ));
                }
                q.time = Some(TimeSel::At(time_of(t)?));
            }
            WhereItem::Between(a, b) => {
                if q.time.is_some() {
                    return Err(KernelError::Schema(
                        "duplicate temporal clause in RETRIEVE (AT/BETWEEN)".into(),
                    ));
                }
                q.time = Some(TimeSel::In(TimeRange::new(time_of(a)?, time_of(b)?)));
            }
            WhereItem::Attr { attr, cmp, value } => {
                // Coerce against the first target class carrying the
                // attribute (the kernel validates that every member class
                // carries it before any stage runs) — but only after
                // checking that every member class agrees on its type:
                // one coerced constant must compare exactly against every
                // member extension, and a cross-type comparison would
                // silently match nothing rather than error.
                let (cname, def) = classes
                    .iter()
                    .find_map(|c| c.attr(attr).map(|a| (c.name.as_str(), a)))
                    .ok_or_else(|| {
                        KernelError::Schema(format!(
                            "query predicate on unknown attribute {attr:?} of {}",
                            item.target
                        ))
                    })?;
                for other in &classes {
                    if let Some(a) = other.attr(attr) {
                        if a.tag != def.tag {
                            return Err(KernelError::Schema(format!(
                                "attribute {attr:?} is {} in class {cname} but {} in class {}; \
                                 a concept-wide predicate needs agreeing types",
                                def.tag, a.tag, other.name
                            )));
                        }
                    }
                }
                q.attr_preds.push(AttrPred {
                    attr: attr.clone(),
                    cmp: *cmp,
                    value: coerce_literal(cname, attr, &def.tag, value)?,
                });
            }
        }
    }
    q.projection = item.projection.clone();
    if let Some(derive) = &item.derive {
        q.strategy = QueryStrategy::PreferDerivation;
        q.async_submit = derive.is_async;
        q.using_process = derive.using.clone();
        if let Some(cost) = &derive.cost {
            q.cost = Some(parse_cost_hint(cost)?);
        }
    }
    q.fresh = item.fresh;
    // ORDER BY attribute existence is checked per target class by the
    // kernel's own query validation, before any stage runs.
    if let Some(ob) = &item.order_by {
        q.order_by = Some(OrderBy {
            attr: ob.attr.clone(),
            desc: ob.desc,
        });
    }
    q.limit = item.limit;
    Ok(q)
}

/// Parse and lower one `RETRIEVE` statement against a bare [`Catalog`]:
/// [`parse_query`] + [`lower_query_catalog`], with the same
/// syntax-error shape as [`Retrieve::compile_retrieve`]. This is the
/// whole compile pipeline a snapshot-pinned reader needs — no kernel
/// handle, no mutability.
pub fn compile_query(catalog: &Catalog, src: &str) -> KernelResult<Query> {
    let item = parse_query(src)
        .map_err(|e| KernelError::Schema(format!("RETRIEVE syntax: {}", e.underline(src))))?;
    lower_query_catalog(catalog, &item)
}

/// The `RETRIEVE … WHERE …` façade on [`Gaea`].
///
/// Defined here (rather than on the kernel directly) because the parser
/// lives above the kernel in the crate graph; bringing the trait into
/// scope gives the kernel the paper's declarative query surface:
///
/// ```
/// use gaea_core::kernel::Gaea;
/// use gaea_lang::Retrieve as _;
/// let mut g = Gaea::in_memory();
/// let err = g.retrieve("RETRIEVE * FROM nowhere").unwrap_err();
/// assert!(err.to_string().contains("nowhere"));
/// ```
pub trait Retrieve {
    /// Parse and lower a `RETRIEVE` statement to the query plan it would
    /// execute, without running it.
    fn compile_retrieve(&self, src: &str) -> KernelResult<Query>;

    /// Parse, lower and execute a `RETRIEVE` statement through the
    /// three-step query mechanism (plan / bind / fire / project). A
    /// `DERIVE ASYNC` statement that retrieval cannot answer submits its
    /// derivation as a background job and returns a
    /// [`gaea_core::QueryMethod::Submitted`] outcome carrying the job id
    /// in `pending`.
    fn retrieve(&mut self, src: &str) -> KernelResult<QueryOutcome>;

    /// Parse and lower a `RETRIEVE … DERIVE` statement, then submit its
    /// derivation as a background job unconditionally (`ASYNC` implied)
    /// — the handle-first form of the asynchronous surface: no step-1
    /// retrieval, just the [`JobId`] to poll or await.
    fn retrieve_job(&mut self, src: &str) -> KernelResult<JobId>;
}

impl Retrieve for Gaea {
    fn compile_retrieve(&self, src: &str) -> KernelResult<Query> {
        compile_query(self.catalog(), src)
    }

    fn retrieve(&mut self, src: &str) -> KernelResult<QueryOutcome> {
        let q = self.compile_retrieve(src)?;
        self.query(&q)
    }

    fn retrieve_job(&mut self, src: &str) -> KernelResult<JobId> {
        let q = self.compile_retrieve(src)?;
        self.submit_derivation(&q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use gaea_adt::{AbsTime, GeoBox, Image, PixType, Value};
    use gaea_core::{Query, QueryMethod, QueryStrategy};

    const SCHEMA: &str = r#"
CLASS tm ( // Rectified Landsat TM
  ATTRIBUTES:
    data = image;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
)

CLASS landcover ( // Land cover
  ATTRIBUTES:
    data = image;
    numclass = int4;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: P20
)

DEFINE PROCESS P20 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;
      common(bands.spatialextent);
      common(bands.timestamp);
    MAPPINGS:
      landcover.data = unsuperclassify(composite(bands), 12);
      landcover.numclass = 12;
      landcover.spatialextent = ANYOF bands.spatialextent;
      landcover.timestamp = ANYOF bands.timestamp;
  }
)

DEFINE CONCEPT land_cover_concept (
  MEMBERS: landcover;
  DOC: "land cover classification however derived";
)
"#;

    #[test]
    fn lowers_figure3_schema_and_derives_through_it() {
        let mut g = Gaea::in_memory();
        let prog = parse(SCHEMA).unwrap();
        let lowered = lower_program(&mut g, &prog).unwrap();
        assert_eq!(lowered.classes.len(), 2);
        assert_eq!(lowered.processes.len(), 1);
        assert_eq!(lowered.concepts.len(), 1);
        // The card(bands)=3 assertion induced min_card 3.
        let p20 = g.catalog().process_by_name("P20").unwrap();
        assert_eq!(p20.args[0].min_card, 3);
        assert!(p20.args[0].setof);
        // End to end: insert bands, query the concept, get a derivation.
        let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
        let t0 = AbsTime::from_ymd(1986, 1, 15).unwrap();
        for i in 0..3 {
            g.insert_object(
                "tm",
                vec![
                    (
                        "data",
                        Value::image(Image::filled(8, 8, PixType::Float8, 10.0 + i as f64 * 30.0)),
                    ),
                    ("spatialextent", Value::GeoBox(africa)),
                    ("timestamp", Value::AbsTime(t0)),
                ],
            )
            .unwrap();
        }
        let out = g
            .query(
                &Query::concept("land_cover_concept")
                    .at(t0)
                    .with_strategy(QueryStrategy::PreferDerivation),
            )
            .unwrap();
        assert_eq!(out.method, QueryMethod::Derived);
        assert_eq!(out.objects[0].attr("numclass"), Some(&Value::Int4(12)));
    }

    #[test]
    fn unknown_attr_type_rejected() {
        let mut g = Gaea::in_memory();
        let prog = parse("CLASS x ( ATTRIBUTES: a = raster; )").unwrap();
        assert!(lower_program(&mut g, &prog).is_err());
    }

    #[test]
    fn mapping_target_must_name_output() {
        let mut g = Gaea::in_memory();
        let src = r#"
CLASS a ( ATTRIBUTES: data = image; )
CLASS b ( ATTRIBUTES: data = image; DERIVED BY: p )
DEFINE PROCESS p (
  OUTPUT b
  ARGUMENT ( x a )
  TEMPLATE { MAPPINGS: wrong.data = x.data; }
)
"#;
        let prog = parse(src).unwrap();
        let err = lower_program(&mut g, &prog).unwrap_err();
        assert!(err.to_string().contains("wrong.data"));
    }

    #[test]
    fn min_card_variants() {
        let assertions = vec![Expr::Cmp {
            op: CmpOp::Gt,
            lhs: Box::new(Expr::Card(Box::new(Expr::Arg("xs".into())))),
            rhs: Box::new(Expr::int(2)),
        }];
        assert_eq!(min_card_of("xs", &assertions), 3); // > 2 means at least 3
        assert_eq!(min_card_of("ys", &assertions), 1); // unconstrained
    }
}
