//! Lowering: register a parsed program into the kernel catalog.
//!
//! Classes are registered first (processes reference output classes), then
//! processes, then concepts (which reference classes). A `SETOF` argument's
//! minimum cardinality is recovered from `card(arg) = N` / `card(arg) > N`
//! assertions, defaulting to 1 — exactly how Figure 3's `card(bands) = 3`
//! induces the Petri-net threshold of 3.

use crate::ast::{ClassItem, ConceptItem, Item, ProcessItem, Program};
use gaea_adt::TypeTag;
use gaea_core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea_core::schema::ClassKind;
use gaea_core::template::{CmpOp, Expr, Mapping, Template};
use gaea_core::{ClassId, ConceptId, KernelError, KernelResult, ProcessId};

/// Everything a lowering registered.
#[derive(Debug, Default)]
pub struct Lowered {
    /// Classes in definition order.
    pub classes: Vec<ClassId>,
    /// Processes in definition order.
    pub processes: Vec<ProcessId>,
    /// Concepts in definition order.
    pub concepts: Vec<ConceptId>,
}

/// Lower a whole program into the kernel.
pub fn lower_program(gaea: &mut Gaea, program: &Program) -> KernelResult<Lowered> {
    let mut out = Lowered::default();
    // Pass 1: classes.
    for item in &program.items {
        if let Item::Class(c) = item {
            out.classes.push(lower_class(gaea, c)?);
        }
    }
    // Pass 2: processes.
    for item in &program.items {
        if let Item::Process(p) = item {
            out.processes.push(lower_process(gaea, p)?);
        }
    }
    // Pass 3: concepts.
    for item in &program.items {
        if let Item::Concept(c) = item {
            out.concepts.push(lower_concept(gaea, c)?);
        }
    }
    Ok(out)
}

fn lower_class(gaea: &mut Gaea, item: &ClassItem) -> KernelResult<ClassId> {
    let kind = if item.derived_by.is_empty() {
        ClassKind::Base
    } else {
        ClassKind::Derived
    };
    let mut spec = ClassSpec {
        name: item.name.clone(),
        kind,
        attrs: vec![],
        ref_attrs: vec![],
        spatial: item.spatial,
        temporal: item.temporal,
        doc: item.doc.clone(),
    };
    for (name, type_name, comment) in &item.attrs {
        let tag = TypeTag::parse(type_name).ok_or_else(|| {
            KernelError::Schema(format!(
                "class {}: unknown attribute type {type_name:?} for {name:?}",
                item.name
            ))
        })?;
        spec.attrs
            .push(gaea_core::schema::AttrDef::with_doc(name, tag, comment));
    }
    for (name, class, _comment) in &item.ref_attrs {
        spec.ref_attrs.push((name.clone(), class.clone()));
    }
    gaea.define_class(spec)
}

/// Extract `card(arg) = N` (or `> N`) thresholds from assertions.
fn min_card_of(arg: &str, assertions: &[Expr]) -> u64 {
    for a in assertions {
        if let Expr::Cmp { op, lhs, rhs } = a {
            if let Expr::Card(inner) = lhs.as_ref() {
                if let Expr::Arg(name) = inner.as_ref() {
                    if name == arg {
                        if let Expr::Const(v) = rhs.as_ref() {
                            if let Some(n) = v.as_f64() {
                                let n = n.max(0.0) as u64;
                                return match op {
                                    CmpOp::Eq => n,
                                    CmpOp::Gt => n + 1,
                                    CmpOp::Lt => 1,
                                };
                            }
                        }
                    }
                }
            }
        }
    }
    1
}

fn lower_process(gaea: &mut Gaea, item: &ProcessItem) -> KernelResult<ProcessId> {
    // NONAPPLICATIVE processes carry no template at all (§5 extension).
    if let Some(procedure) = &item.nonapplicative {
        if !item.assertions.is_empty()
            || !item.mappings.is_empty()
            || !item.interactions.is_empty()
            || item.external_site.is_some()
        {
            return Err(KernelError::Schema(format!(
                "process {}: NONAPPLICATIVE excludes TEMPLATE/INTERACTIONS/EXTERNAL",
                item.name
            )));
        }
        let args: Vec<(String, String, bool, u64)> = item
            .args
            .iter()
            .map(|a| (a.name.clone(), a.class.clone(), a.setof, 1))
            .collect();
        return gaea.define_nonapplicative_process(&item.name, &item.output, &args, procedure, "");
    }
    let mut spec = ProcessSpec::new(&item.name, &item.output);
    for arg in &item.args {
        if arg.setof {
            let min = min_card_of(&arg.name, &item.assertions);
            spec = spec.setof_arg(&arg.name, &arg.class, min);
        } else {
            spec = spec.arg(&arg.name, &arg.class);
        }
    }
    let mut mappings = Vec::new();
    for (target, attr, expr) in &item.mappings {
        if target != &item.output {
            return Err(KernelError::Schema(format!(
                "process {}: mapping target {target}.{attr} does not name the output class {}",
                item.name, item.output
            )));
        }
        mappings.push(Mapping {
            attr: attr.clone(),
            expr: expr.clone(),
        });
    }
    spec = spec.template(Template {
        assertions: item.assertions.clone(),
        mappings,
    });
    for i in &item.interactions {
        let expected = TypeTag::parse(&i.type_name).ok_or_else(|| {
            KernelError::Schema(format!(
                "process {}: unknown interaction type {:?} for PARAM {:?}",
                item.name, i.type_name, i.param
            ))
        })?;
        spec.interactions.push(gaea_core::schema::InteractionPoint {
            param: i.param.clone(),
            prompt: i.prompt.clone(),
            preview: i.preview.clone(),
            expected,
        });
    }
    // EXTERNAL AT routes the definition through the §5 path.
    if let Some(site) = &item.external_site {
        return gaea.define_external_process(spec, site);
    }
    gaea.define_process(spec)
}

fn lower_concept(gaea: &mut Gaea, item: &ConceptItem) -> KernelResult<ConceptId> {
    let members: Vec<&str> = item.members.iter().map(String::as_str).collect();
    let parents: Vec<&str> = item.isa.iter().map(String::as_str).collect();
    gaea.define_concept(&item.name, &members, &parents, &item.doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use gaea_adt::{AbsTime, GeoBox, Image, PixType, Value};
    use gaea_core::{Query, QueryMethod, QueryStrategy};

    const SCHEMA: &str = r#"
CLASS tm ( // Rectified Landsat TM
  ATTRIBUTES:
    data = image;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
)

CLASS landcover ( // Land cover
  ATTRIBUTES:
    data = image;
    numclass = int4;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: P20
)

DEFINE PROCESS P20 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;
      common(bands.spatialextent);
      common(bands.timestamp);
    MAPPINGS:
      landcover.data = unsuperclassify(composite(bands), 12);
      landcover.numclass = 12;
      landcover.spatialextent = ANYOF bands.spatialextent;
      landcover.timestamp = ANYOF bands.timestamp;
  }
)

DEFINE CONCEPT land_cover_concept (
  MEMBERS: landcover;
  DOC: "land cover classification however derived";
)
"#;

    #[test]
    fn lowers_figure3_schema_and_derives_through_it() {
        let mut g = Gaea::in_memory();
        let prog = parse(SCHEMA).unwrap();
        let lowered = lower_program(&mut g, &prog).unwrap();
        assert_eq!(lowered.classes.len(), 2);
        assert_eq!(lowered.processes.len(), 1);
        assert_eq!(lowered.concepts.len(), 1);
        // The card(bands)=3 assertion induced min_card 3.
        let p20 = g.catalog().process_by_name("P20").unwrap();
        assert_eq!(p20.args[0].min_card, 3);
        assert!(p20.args[0].setof);
        // End to end: insert bands, query the concept, get a derivation.
        let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
        let t0 = AbsTime::from_ymd(1986, 1, 15).unwrap();
        for i in 0..3 {
            g.insert_object(
                "tm",
                vec![
                    (
                        "data",
                        Value::image(Image::filled(8, 8, PixType::Float8, 10.0 + i as f64 * 30.0)),
                    ),
                    ("spatialextent", Value::GeoBox(africa)),
                    ("timestamp", Value::AbsTime(t0)),
                ],
            )
            .unwrap();
        }
        let out = g
            .query(
                &Query::concept("land_cover_concept")
                    .at(t0)
                    .with_strategy(QueryStrategy::PreferDerivation),
            )
            .unwrap();
        assert_eq!(out.method, QueryMethod::Derived);
        assert_eq!(out.objects[0].attr("numclass"), Some(&Value::Int4(12)));
    }

    #[test]
    fn unknown_attr_type_rejected() {
        let mut g = Gaea::in_memory();
        let prog = parse("CLASS x ( ATTRIBUTES: a = raster; )").unwrap();
        assert!(lower_program(&mut g, &prog).is_err());
    }

    #[test]
    fn mapping_target_must_name_output() {
        let mut g = Gaea::in_memory();
        let src = r#"
CLASS a ( ATTRIBUTES: data = image; )
CLASS b ( ATTRIBUTES: data = image; DERIVED BY: p )
DEFINE PROCESS p (
  OUTPUT b
  ARGUMENT ( x a )
  TEMPLATE { MAPPINGS: wrong.data = x.data; }
)
"#;
        let prog = parse(src).unwrap();
        let err = lower_program(&mut g, &prog).unwrap_err();
        assert!(err.to_string().contains("wrong.data"));
    }

    #[test]
    fn min_card_variants() {
        let assertions = vec![Expr::Cmp {
            op: CmpOp::Gt,
            lhs: Box::new(Expr::Card(Box::new(Expr::Arg("xs".into())))),
            rhs: Box::new(Expr::int(2)),
        }];
        assert_eq!(min_card_of("xs", &assertions), 3); // > 2 means at least 3
        assert_eq!(min_card_of("ys", &assertions), 1); // unconstrained
    }
}
