//! Lexer for the Gaea definition language.

use std::fmt;

/// A token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind + payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// A `// ...` comment's text (kept: the paper's listings carry
    /// meaningful doc comments).
    Comment(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Semi => write!(f, "';'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::Comment(_) => write!(f, "comment"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

/// Identifier continuation. Hyphens are allowed mid-identifier because the
/// paper spells process names like `unsupervised-classification`.
fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '/'
}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    line,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    line,
                });
                i += 1;
            }
            '<' => {
                tokens.push(Token {
                    kind: TokenKind::Lt,
                    line,
                });
                i += 1;
            }
            '>' => {
                tokens.push(Token {
                    kind: TokenKind::Gt,
                    line,
                });
                i += 1;
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                let mut text = String::new();
                i += 2;
                while i < chars.len() && chars[i] != '\n' {
                    text.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Comment(text.trim().to_string()),
                    line,
                });
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            line,
                        });
                    }
                    if chars[i] == '"' {
                        i += 1;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                i += 1; // sign or first digit
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || (chars[i] == '.'
                            && i + 1 < chars.len()
                            && chars[i + 1].is_ascii_digit()))
                {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float literal {text:?}"),
                        line,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal {text:?}"),
                        line,
                    })?)
                };
                tokens.push(Token { kind, line });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        let ks = kinds("CLASS landcover ( area = char16; )");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("CLASS".into()),
                TokenKind::Ident("landcover".into()),
                TokenKind::LParen,
                TokenKind::Ident("area".into()),
                TokenKind::Eq,
                TokenKind::Ident("char16".into()),
                TokenKind::Semi,
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn hyphenated_process_names() {
        let ks = kinds("unsupervised-classification long/lat");
        assert_eq!(
            ks[0],
            TokenKind::Ident("unsupervised-classification".into())
        );
        assert_eq!(ks[1], TokenKind::Ident("long/lat".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("12 -3 2.5 -0.5"),
            vec![
                TokenKind::Int(12),
                TokenKind::Int(-3),
                TokenKind::Float(2.5),
                TokenKind::Float(-0.5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_preserved() {
        let ks = kinds("area = char16; // area name\n");
        assert!(matches!(&ks[3], TokenKind::Semi));
        assert_eq!(ks[4], TokenKind::Comment("area name".into()));
    }

    #[test]
    fn strings_and_line_tracking() {
        let toks = lex("x\n\"hello world\"\ny").unwrap();
        assert_eq!(toks[1].kind, TokenKind::Str("hello world".into()));
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("@").is_err());
    }
}
