//! Lexer for the Gaea definition and query language.
//!
//! Every token carries its **byte span** in the source alongside the
//! 1-based line, so parse errors can underline the offending token rather
//! than pointing at a bare line number.

use std::fmt;
use std::ops::Range;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind + payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// Byte range of the lexeme in the source text (`src[span]` is the
    /// exact text the token was read from; empty only for [`TokenKind::Eof`]).
    pub span: Range<usize>,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `*` (the `RETRIEVE *` projection).
    Star,
    /// A `// ...` comment's text (kept: the paper's listings carry
    /// meaningful doc comments).
    Comment(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Semi => write!(f, "';'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Comment(_) => write!(f, "comment"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// Byte range of the offending text.
    pub span: Range<usize>,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

/// Identifier continuation. Hyphens are allowed mid-identifier because the
/// paper spells process names like `unsupervised-classification`.
fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '/'
}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    // (byte offset, char) pairs; `i` indexes this vector, spans use the
    // byte offsets so they slice `src` directly.
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let byte_at = |i: usize| {
        if i < chars.len() {
            chars[i].0
        } else {
            src.len()
        }
    };
    let mut i = 0usize;
    while i < chars.len() {
        let (start, c) = chars[i];
        let push1 = |kind: TokenKind, i: &mut usize, tokens: &mut Vec<Token>| {
            *i += 1;
            tokens.push(Token {
                kind,
                line,
                span: start..byte_at(*i),
            });
        };
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '(' => push1(TokenKind::LParen, &mut i, &mut tokens),
            ')' => push1(TokenKind::RParen, &mut i, &mut tokens),
            '{' => push1(TokenKind::LBrace, &mut i, &mut tokens),
            '}' => push1(TokenKind::RBrace, &mut i, &mut tokens),
            ':' => push1(TokenKind::Colon, &mut i, &mut tokens),
            ';' => push1(TokenKind::Semi, &mut i, &mut tokens),
            ',' => push1(TokenKind::Comma, &mut i, &mut tokens),
            '.' => push1(TokenKind::Dot, &mut i, &mut tokens),
            '=' => push1(TokenKind::Eq, &mut i, &mut tokens),
            '<' => push1(TokenKind::Lt, &mut i, &mut tokens),
            '>' => push1(TokenKind::Gt, &mut i, &mut tokens),
            '*' => push1(TokenKind::Star, &mut i, &mut tokens),
            '/' if i + 1 < chars.len() && chars[i + 1].1 == '/' => {
                let mut text = String::new();
                i += 2;
                while i < chars.len() && chars[i].1 != '\n' {
                    text.push(chars[i].1);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Comment(text.trim().to_string()),
                    line,
                    span: start..byte_at(i),
                });
            }
            '"' => {
                let start_line = line;
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            line: start_line,
                            span: start..src.len(),
                        });
                    }
                    if chars[i].1 == '"' {
                        i += 1;
                        break;
                    }
                    if chars[i].1 == '\n' {
                        line += 1;
                    }
                    s.push(chars[i].1);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: start_line,
                    span: start..byte_at(i),
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' && i + 1 < chars.len() && chars[i + 1].1.is_ascii_digit()) =>
            {
                i += 1; // sign or first digit
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].1.is_ascii_digit()
                        || (chars[i].1 == '.'
                            && i + 1 < chars.len()
                            && chars[i + 1].1.is_ascii_digit()))
                {
                    if chars[i].1 == '.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let span = start..byte_at(i);
                let text = &src[span.clone()];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float literal {text:?}"),
                        line,
                        span: span.clone(),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal {text:?}"),
                        line,
                        span: span.clone(),
                    })?)
                };
                tokens.push(Token { kind, line, span });
            }
            c if is_ident_start(c) => {
                while i < chars.len() && is_ident_continue(chars[i].1) {
                    i += 1;
                }
                let span = start..byte_at(i);
                tokens.push(Token {
                    kind: TokenKind::Ident(src[span.clone()].to_string()),
                    line,
                    span,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                    span: start..byte_at(i + 1),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        span: src.len()..src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        let ks = kinds("CLASS landcover ( area = char16; )");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("CLASS".into()),
                TokenKind::Ident("landcover".into()),
                TokenKind::LParen,
                TokenKind::Ident("area".into()),
                TokenKind::Eq,
                TokenKind::Ident("char16".into()),
                TokenKind::Semi,
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn hyphenated_process_names() {
        let ks = kinds("unsupervised-classification long/lat");
        assert_eq!(
            ks[0],
            TokenKind::Ident("unsupervised-classification".into())
        );
        assert_eq!(ks[1], TokenKind::Ident("long/lat".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("12 -3 2.5 -0.5"),
            vec![
                TokenKind::Int(12),
                TokenKind::Int(-3),
                TokenKind::Float(2.5),
                TokenKind::Float(-0.5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn star_token() {
        assert_eq!(
            kinds("RETRIEVE *"),
            vec![
                TokenKind::Ident("RETRIEVE".into()),
                TokenKind::Star,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_preserved() {
        let ks = kinds("area = char16; // area name\n");
        assert!(matches!(&ks[3], TokenKind::Semi));
        assert_eq!(ks[4], TokenKind::Comment("area name".into()));
    }

    #[test]
    fn strings_and_line_tracking() {
        let toks = lex("x\n\"hello world\"\ny").unwrap();
        assert_eq!(toks[1].kind, TokenKind::Str("hello world".into()));
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn spans_slice_the_source_exactly() {
        let src = "CLASS landcover ( area = char16; ) // done\n12 -3 2.5 \"str\"";
        let toks = lex(src).unwrap();
        for t in &toks {
            let text = &src[t.span.clone()];
            match &t.kind {
                TokenKind::Ident(s) => assert_eq!(text, s),
                TokenKind::Int(_) | TokenKind::Float(_) => {
                    assert!(text.parse::<f64>().is_ok(), "{text:?}")
                }
                TokenKind::Str(s) => assert_eq!(text, format!("{s:?}")),
                TokenKind::Comment(c) => {
                    assert!(text.starts_with("//") && text.contains(c.as_str()))
                }
                TokenKind::Eof => assert!(text.is_empty()),
                _ => assert_eq!(text.chars().count(), 1, "{text:?}"),
            }
        }
        // Spot checks: the exact byte ranges of a few tokens.
        assert_eq!(&src[toks[1].span.clone()], "landcover");
        assert_eq!(&src[toks[5].span.clone()], "char16");
    }

    #[test]
    fn errors_carry_spans() {
        let err = lex("\"unterminated").unwrap_err();
        assert_eq!(err.span, 0..13);
        let err = lex("ok @").unwrap_err();
        assert_eq!(err.span, 3..4);
        assert_eq!(&"ok @"[err.span.clone()], "@");
    }
}
