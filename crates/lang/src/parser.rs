//! Recursive-descent parser for the Gaea definition language.

use crate::ast::{ArgItem, ClassItem, ConceptItem, Item, ProcessItem, Program};
use crate::lex::{lex, LexError, Token, TokenKind};
use gaea_adt::Value;
use gaea_core::template::{CmpOp, Expr};
use std::fmt;

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    /// Peek skipping comments.
    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn skip_comments(&mut self) -> String {
        let mut doc = String::new();
        while let TokenKind::Comment(text) = &self.peek().kind {
            if !doc.is_empty() {
                doc.push(' ');
            }
            doc.push_str(text);
            self.bump();
        }
        doc
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.peek().line,
        })
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        self.skip_comments();
        if self.peek_kind() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek_kind()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        self.skip_comments();
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}, found {id:?}"))
        }
    }

    fn at_keyword(&mut self, kw: &str) -> bool {
        self.skip_comments();
        matches!(self.peek_kind(), TokenKind::Ident(s) if s == kw)
    }

    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        loop {
            self.skip_comments();
            match self.peek_kind() {
                TokenKind::Eof => break,
                TokenKind::Ident(s) if s == "CLASS" => {
                    self.bump();
                    items.push(Item::Class(self.class_item()?));
                }
                TokenKind::Ident(s) if s == "DEFINE" => {
                    self.bump();
                    if self.at_keyword("PROCESS") {
                        self.bump();
                        items.push(Item::Process(self.process_item()?));
                    } else if self.at_keyword("CONCEPT") {
                        self.bump();
                        items.push(Item::Concept(self.concept_item()?));
                    } else {
                        return self.err("expected PROCESS or CONCEPT after DEFINE");
                    }
                }
                other => {
                    return self.err(format!(
                        "expected CLASS or DEFINE at top level, found {other}"
                    ))
                }
            }
        }
        Ok(Program { items })
    }

    fn class_item(&mut self) -> Result<ClassItem, ParseError> {
        let name = self.expect_ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let doc = self.skip_comments();
        let mut item = ClassItem {
            name,
            doc,
            attrs: vec![],
            ref_attrs: vec![],
            spatial: false,
            temporal: false,
            derived_by: vec![],
        };
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RParen) {
                self.bump();
                break;
            }
            let section = self.expect_ident()?;
            match section.as_str() {
                "ATTRIBUTES" => {
                    self.expect_kind(&TokenKind::Colon)?;
                    // attr = type ; // comment
                    loop {
                        self.skip_comments();
                        match self.peek_kind() {
                            TokenKind::Ident(s)
                                if ["SPATIAL", "TEMPORAL", "DERIVED", "ATTRIBUTES"]
                                    .contains(&s.as_str()) =>
                            {
                                break
                            }
                            TokenKind::RParen => break,
                            _ => {}
                        }
                        let attr_name = self.expect_ident()?;
                        self.expect_kind(&TokenKind::Eq)?;
                        let type_name = self.expect_ident()?;
                        // `name = ref class;` declares a reference attribute
                        // (§4.3 extension: non-primitive attribute types).
                        let ref_class = if type_name == "ref" {
                            Some(self.expect_ident()?)
                        } else {
                            None
                        };
                        self.expect_kind(&TokenKind::Semi)?;
                        // A trailing comment on the same construct documents
                        // the attribute.
                        let comment = self.skip_comments();
                        match ref_class {
                            Some(class) => item.ref_attrs.push((attr_name, class, comment)),
                            None => item.attrs.push((attr_name, type_name, comment)),
                        }
                    }
                }
                "SPATIAL" => {
                    self.expect_keyword("EXTENT")?;
                    self.expect_kind(&TokenKind::Colon)?;
                    let _name = self.expect_ident()?;
                    self.expect_kind(&TokenKind::Eq)?;
                    self.expect_keyword("box")?;
                    self.expect_kind(&TokenKind::Semi)?;
                    self.skip_comments();
                    item.spatial = true;
                }
                "TEMPORAL" => {
                    self.expect_keyword("EXTENT")?;
                    self.expect_kind(&TokenKind::Colon)?;
                    let _name = self.expect_ident()?;
                    self.expect_kind(&TokenKind::Eq)?;
                    self.expect_keyword("abstime")?;
                    self.expect_kind(&TokenKind::Semi)?;
                    self.skip_comments();
                    item.temporal = true;
                }
                "DERIVED" => {
                    self.expect_keyword("BY")?;
                    self.expect_kind(&TokenKind::Colon)?;
                    item.derived_by.push(self.expect_ident()?);
                    while matches!(self.peek_kind(), TokenKind::Comma) {
                        self.bump();
                        item.derived_by.push(self.expect_ident()?);
                    }
                    self.skip_comments();
                }
                other => return self.err(format!("unknown class section {other:?}")),
            }
        }
        Ok(item)
    }

    fn process_item(&mut self) -> Result<ProcessItem, ParseError> {
        let name = self.expect_ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        self.expect_keyword("OUTPUT")?;
        let output = self.expect_ident()?;
        self.expect_keyword("ARGUMENT")?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut args = Vec::new();
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RParen) {
                self.bump();
                break;
            }
            if !args.is_empty() {
                self.expect_kind(&TokenKind::Comma)?;
            }
            let setof = if self.at_keyword("SETOF") {
                self.bump();
                true
            } else {
                false
            };
            let arg_name = self.expect_ident()?;
            let class = self.expect_ident()?;
            args.push(ArgItem {
                setof,
                name: arg_name,
                class,
            });
        }
        // Optional body sections, in any order: TEMPLATE, INTERACTIONS
        // (§4.3 extension), EXTERNAL AT (§5), NONAPPLICATIVE (§5).
        let mut assertions = Vec::new();
        let mut mappings = Vec::new();
        let mut interactions = Vec::new();
        let mut external_site = None;
        let mut nonapplicative = None;
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RParen) {
                self.bump();
                break;
            }
            let section = self.expect_ident()?;
            match section.as_str() {
                "TEMPLATE" => {
                    self.expect_kind(&TokenKind::LBrace)?;
                    self.template_body(&mut assertions, &mut mappings)?;
                }
                "INTERACTIONS" => {
                    self.expect_kind(&TokenKind::LBrace)?;
                    loop {
                        self.skip_comments();
                        if matches!(self.peek_kind(), TokenKind::RBrace) {
                            self.bump();
                            break;
                        }
                        self.expect_keyword("PARAM")?;
                        let param = self.expect_ident()?;
                        self.expect_kind(&TokenKind::Colon)?;
                        let type_name = self.expect_ident()?;
                        let preview = if self.at_keyword("PREVIEW") {
                            self.bump();
                            Some(self.expr()?)
                        } else {
                            None
                        };
                        self.expect_kind(&TokenKind::Semi)?;
                        let prompt = self.skip_comments();
                        interactions.push(crate::ast::InteractionItem {
                            param,
                            type_name,
                            preview,
                            prompt,
                        });
                    }
                }
                "EXTERNAL" => {
                    self.expect_keyword("AT")?;
                    match self.peek_kind().clone() {
                        TokenKind::Str(s) => {
                            self.bump();
                            external_site = Some(s);
                        }
                        other => {
                            return self.err(format!(
                                "expected quoted site name after EXTERNAL AT, found {other}"
                            ))
                        }
                    }
                }
                "NONAPPLICATIVE" => match self.peek_kind().clone() {
                    TokenKind::Str(s) => {
                        self.bump();
                        nonapplicative = Some(s);
                    }
                    other => {
                        return self.err(format!(
                            "expected quoted procedure after NONAPPLICATIVE, found {other}"
                        ))
                    }
                },
                other => return self.err(format!("unknown process section {other:?}")),
            }
        }
        Ok(ProcessItem {
            name,
            output,
            args,
            assertions,
            mappings,
            interactions,
            external_site,
            nonapplicative,
        })
    }

    /// The `{ ASSERTIONS: ... MAPPINGS: ... }` body (brace already eaten).
    fn template_body(
        &mut self,
        assertions: &mut Vec<Expr>,
        mappings: &mut Vec<(String, String, Expr)>,
    ) -> Result<(), ParseError> {
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RBrace) {
                self.bump();
                return Ok(());
            }
            let section = self.expect_ident()?;
            self.expect_kind(&TokenKind::Colon)?;
            match section.as_str() {
                "ASSERTIONS" => loop {
                    self.skip_comments();
                    match self.peek_kind() {
                        TokenKind::RBrace => break,
                        TokenKind::Ident(s) if s == "MAPPINGS" || s == "ASSERTIONS" => break,
                        _ => {}
                    }
                    let e = self.expr()?;
                    self.expect_kind(&TokenKind::Semi)?;
                    assertions.push(e);
                },
                "MAPPINGS" => loop {
                    self.skip_comments();
                    match self.peek_kind() {
                        TokenKind::RBrace => break,
                        TokenKind::Ident(s) if s == "MAPPINGS" || s == "ASSERTIONS" => break,
                        _ => {}
                    }
                    let target = self.expect_ident()?;
                    self.expect_kind(&TokenKind::Dot)?;
                    let attr = self.expect_ident()?;
                    self.expect_kind(&TokenKind::Eq)?;
                    let e = self.expr()?;
                    self.expect_kind(&TokenKind::Semi)?;
                    mappings.push((target, attr, e));
                },
                other => return self.err(format!("unknown template section {other:?}")),
            }
        }
    }

    fn concept_item(&mut self) -> Result<ConceptItem, ParseError> {
        let name = self.expect_ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut item = ConceptItem {
            name,
            members: vec![],
            isa: vec![],
            doc: String::new(),
        };
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RParen) {
                self.bump();
                break;
            }
            let section = self.expect_ident()?;
            self.expect_kind(&TokenKind::Colon)?;
            match section.as_str() {
                "MEMBERS" => {
                    item.members.push(self.expect_ident()?);
                    while matches!(self.peek_kind(), TokenKind::Comma) {
                        self.bump();
                        item.members.push(self.expect_ident()?);
                    }
                    self.expect_kind(&TokenKind::Semi)?;
                }
                "ISA" => {
                    item.isa.push(self.expect_ident()?);
                    while matches!(self.peek_kind(), TokenKind::Comma) {
                        self.bump();
                        item.isa.push(self.expect_ident()?);
                    }
                    self.expect_kind(&TokenKind::Semi)?;
                }
                "DOC" => {
                    self.skip_comments();
                    match self.peek_kind().clone() {
                        TokenKind::Str(s) => {
                            self.bump();
                            item.doc = s;
                        }
                        other => {
                            return self.err(format!("expected string after DOC:, found {other}"))
                        }
                    }
                    self.expect_kind(&TokenKind::Semi)?;
                }
                other => return self.err(format!("unknown concept section {other:?}")),
            }
        }
        Ok(item)
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// expr := term (('=' | '<' | '>') term)?
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.term()?;
        self.skip_comments();
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Gt => Some(CmpOp::Gt),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.term()?;
            Ok(Expr::Cmp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    /// term := ANYOF term | literal | call | projection | ident
    fn term(&mut self) -> Result<Expr, ParseError> {
        self.skip_comments();
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Const(Value::Int4(v as i32)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Const(Value::Float8(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Const(Value::Text(s)))
            }
            TokenKind::Ident(id) if id == "ANYOF" => {
                self.bump();
                let inner = self.term()?;
                Ok(Expr::AnyOf(Box::new(inner)))
            }
            TokenKind::Ident(id) if id == "PARAM" => {
                self.bump();
                let name = self.expect_ident()?;
                Ok(Expr::Param(name))
            }
            TokenKind::Ident(id) => {
                self.bump();
                self.skip_comments();
                match self.peek_kind() {
                    TokenKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        loop {
                            self.skip_comments();
                            if matches!(self.peek_kind(), TokenKind::RParen) {
                                self.bump();
                                break;
                            }
                            if !args.is_empty() {
                                self.expect_kind(&TokenKind::Comma)?;
                            }
                            args.push(self.expr()?);
                        }
                        // card/common are builtins of the template language.
                        match id.as_str() {
                            "card" if args.len() == 1 => Ok(Expr::Card(Box::new(
                                args.into_iter().next().expect("len 1"),
                            ))),
                            "common" if args.len() == 1 => Ok(Expr::Common(Box::new(
                                args.into_iter().next().expect("len 1"),
                            ))),
                            _ => Ok(Expr::Apply { op: id, args }),
                        }
                    }
                    TokenKind::Dot => {
                        self.bump();
                        let attr = self.expect_ident()?;
                        Ok(Expr::ArgAttr { arg: id, attr })
                    }
                    _ => Ok(Expr::Arg(id)),
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

/// Parse a program source.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's landcover class, verbatim modulo attribute subset.
    const LANDCOVER: &str = r#"
CLASS landcover ( // Land cover
  ATTRIBUTES:
    area = char16;       // area name
    ref_system = char16; // long/lat, UTM ...
    data = image;        // image data type
    numclass = int4;
  SPATIAL EXTENT:
    spatialextent = box; // bounding box
  TEMPORAL EXTENT:
    timestamp = abstime; // absolute time
  DERIVED BY: unsupervised-classification
)
"#;

    const P20: &str = r#"
DEFINE PROCESS P20 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;  // need three bands
      common(bands.spatialextent);
      common(bands.timestamp);
    MAPPINGS:
      landcover.data = unsuperclassify(composite(bands), 12);
      landcover.numclass = 12;
      landcover.spatialextent = ANYOF bands.spatialextent;
      landcover.timestamp = ANYOF bands.timestamp;
  }
)
"#;

    #[test]
    fn parses_the_landcover_class() {
        let prog = parse(LANDCOVER).unwrap();
        assert_eq!(prog.items.len(), 1);
        let Item::Class(c) = &prog.items[0] else {
            panic!("expected class");
        };
        assert_eq!(c.name, "landcover");
        assert_eq!(c.doc, "Land cover");
        assert_eq!(c.attrs.len(), 4);
        assert_eq!(
            c.attrs[0],
            ("area".into(), "char16".into(), "area name".into())
        );
        assert!(c.spatial && c.temporal);
        assert_eq!(c.derived_by, vec!["unsupervised-classification"]);
    }

    #[test]
    fn parses_figure3_process() {
        let prog = parse(P20).unwrap();
        let Item::Process(p) = &prog.items[0] else {
            panic!("expected process");
        };
        assert_eq!(p.name, "P20");
        assert_eq!(p.output, "landcover");
        assert_eq!(p.args.len(), 1);
        assert!(p.args[0].setof);
        assert_eq!(p.args[0].name, "bands");
        assert_eq!(p.args[0].class, "tm");
        assert_eq!(p.assertions.len(), 3);
        assert_eq!(p.assertions[0].to_string(), "card(bands) = 3");
        assert_eq!(p.assertions[1].to_string(), "common(bands.spatialextent)");
        assert_eq!(p.mappings.len(), 4);
        assert_eq!(p.mappings[0].0, "landcover");
        assert_eq!(p.mappings[0].1, "data");
        assert_eq!(
            p.mappings[0].2.to_string(),
            "unsuperclassify(composite(bands), 12)"
        );
        assert_eq!(p.mappings[2].2.to_string(), "ANYOF bands.spatialextent");
    }

    #[test]
    fn parses_concepts() {
        let src = r#"
DEFINE CONCEPT vegetation_change (
  MEMBERS: change_pca, change_spca;
  ISA: remote_sensing_product;
  DOC: "vegetation change however derived";
)
"#;
        let prog = parse(src).unwrap();
        let Item::Concept(c) = &prog.items[0] else {
            panic!("expected concept");
        };
        assert_eq!(c.name, "vegetation_change");
        assert_eq!(c.members, vec!["change_pca", "change_spca"]);
        assert_eq!(c.isa, vec!["remote_sensing_product"]);
        assert_eq!(c.doc, "vegetation change however derived");
    }

    #[test]
    fn multiple_items() {
        let src = format!("{LANDCOVER}\n{P20}");
        let prog = parse(&src).unwrap();
        assert_eq!(prog.items.len(), 2);
    }

    #[test]
    fn error_positions() {
        let err = parse("CLASS x ( BOGUS: )").unwrap_err();
        assert!(err.message.contains("BOGUS"));
        let err = parse("DEFINE WIDGET w ()").unwrap_err();
        assert!(err.message.contains("PROCESS or CONCEPT"));
        let err = parse("42").unwrap_err();
        assert!(err.message.contains("top level"));
        // Lex-level failures surface too ('+' is not a token).
        let err = parse("1 + 2").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn comparison_expressions() {
        let src = r#"
DEFINE PROCESS desert (
  OUTPUT desert_map
  ARGUMENT ( rain rainfall )
  TEMPLATE {
    ASSERTIONS:
      img_mean(rain.data) < 250;
    MAPPINGS:
      desert_map.data = threshold_below(rain.data, 250.0);
  }
)
"#;
        let prog = parse(src).unwrap();
        let Item::Process(p) = &prog.items[0] else {
            panic!()
        };
        assert_eq!(p.assertions[0].to_string(), "img_mean(rain.data) < 250");
        assert_eq!(
            p.mappings[0].2.to_string(),
            "threshold_below(rain.data, 250)"
        );
    }
}
