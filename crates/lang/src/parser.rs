//! Recursive-descent parser for the Gaea definition and query language.

use crate::ast::{
    ArgItem, ClassItem, ConceptItem, DeriveClause, IndexItem, Item, LitValue, OrderByItem,
    ProcessItem, Program, RetrieveItem, TimeLit, WhereItem,
};
use crate::lex::{lex, LexError, Token, TokenKind};
use gaea_adt::Value;
use gaea_core::query::AttrCmp;
use gaea_core::template::{CmpOp, Expr};
use std::fmt;
use std::ops::Range;

/// Parse error with position information: the 1-based line plus the byte
/// span of the offending token, so callers can underline it in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// Byte range of the offending token in the source text.
    pub span: Range<usize>,
}

impl ParseError {
    /// Render the offending source line with the token underlined:
    ///
    /// ```text
    /// line 1: expected identifier, found keyword "WHERE"
    ///   RETRIEVE data FROM WHERE x = 1
    ///                      ^^^^^
    /// ```
    ///
    /// `src` must be the text the error was produced from; a span that
    /// does not fall inside it yields the bare message.
    pub fn underline(&self, src: &str) -> String {
        if self.span.start > src.len() || self.span.end > src.len() {
            return self.to_string();
        }
        let line_start = src[..self.span.start].rfind('\n').map_or(0, |p| p + 1);
        let line_end = src[self.span.start..]
            .find('\n')
            .map_or(src.len(), |p| self.span.start + p);
        let line_text = &src[line_start..line_end];
        let caret_pad = src[line_start..self.span.start].chars().count();
        let caret_len = src[self.span.start..self.span.end.min(line_end)]
            .chars()
            .count()
            .max(1);
        format!(
            "{self}\n  {line_text}\n  {}{}",
            " ".repeat(caret_pad),
            "^".repeat(caret_len)
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
            span: e.span,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    /// Peek skipping comments.
    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn skip_comments(&mut self) -> String {
        let mut doc = String::new();
        while let TokenKind::Comment(text) = &self.peek().kind {
            if !doc.is_empty() {
                doc.push(' ');
            }
            doc.push_str(text);
            self.bump();
        }
        doc
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.peek().line,
            span: self.peek().span.clone(),
        })
    }

    /// Error pointing at the token just consumed — for rejections raised
    /// *after* reading a token (unknown section names, bad keywords), so
    /// the span underlines the offender rather than its successor.
    fn err_prev<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let tok = &self.tokens[self.pos.saturating_sub(1)];
        Err(ParseError {
            message: msg.into(),
            line: tok.line,
            span: tok.span.clone(),
        })
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        self.skip_comments();
        if self.peek_kind() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek_kind()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        self.skip_comments();
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident()?;
        if id == kw {
            Ok(())
        } else {
            self.err_prev(format!("expected keyword {kw}, found {id:?}"))
        }
    }

    fn at_keyword(&mut self, kw: &str) -> bool {
        self.skip_comments();
        matches!(self.peek_kind(), TokenKind::Ident(s) if s == kw)
    }

    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        loop {
            self.skip_comments();
            match self.peek_kind() {
                TokenKind::Eof => break,
                TokenKind::Ident(s) if s == "CLASS" => {
                    self.bump();
                    items.push(Item::Class(self.class_item()?));
                }
                TokenKind::Ident(s) if s == "DEFINE" => {
                    self.bump();
                    if self.at_keyword("PROCESS") {
                        self.bump();
                        items.push(Item::Process(self.process_item()?));
                    } else if self.at_keyword("CONCEPT") {
                        self.bump();
                        items.push(Item::Concept(self.concept_item()?));
                    } else if self.at_keyword("INDEX") {
                        self.bump();
                        items.push(Item::Index(self.index_item()?));
                    } else {
                        return self.err("expected PROCESS, CONCEPT or INDEX after DEFINE");
                    }
                }
                TokenKind::Ident(s) if s == "RETRIEVE" => {
                    self.bump();
                    items.push(Item::Retrieve(self.retrieve_item()?));
                }
                other => {
                    return self.err(format!(
                        "expected CLASS, DEFINE or RETRIEVE at top level, found {other}"
                    ))
                }
            }
        }
        Ok(Program { items })
    }

    fn class_item(&mut self) -> Result<ClassItem, ParseError> {
        let name = self.expect_ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let doc = self.skip_comments();
        let mut item = ClassItem {
            name,
            doc,
            attrs: vec![],
            ref_attrs: vec![],
            spatial: false,
            temporal: false,
            derived_by: vec![],
        };
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RParen) {
                self.bump();
                break;
            }
            let section = self.expect_ident()?;
            match section.as_str() {
                "ATTRIBUTES" => {
                    self.expect_kind(&TokenKind::Colon)?;
                    // attr = type ; // comment
                    loop {
                        self.skip_comments();
                        match self.peek_kind() {
                            TokenKind::Ident(s)
                                if ["SPATIAL", "TEMPORAL", "DERIVED", "ATTRIBUTES"]
                                    .contains(&s.as_str()) =>
                            {
                                break
                            }
                            TokenKind::RParen => break,
                            _ => {}
                        }
                        let attr_name = self.expect_ident()?;
                        self.expect_kind(&TokenKind::Eq)?;
                        let type_name = self.expect_ident()?;
                        // `name = ref class;` declares a reference attribute
                        // (§4.3 extension: non-primitive attribute types).
                        let ref_class = if type_name == "ref" {
                            Some(self.expect_ident()?)
                        } else {
                            None
                        };
                        self.expect_kind(&TokenKind::Semi)?;
                        // A trailing comment on the same construct documents
                        // the attribute.
                        let comment = self.skip_comments();
                        match ref_class {
                            Some(class) => item.ref_attrs.push((attr_name, class, comment)),
                            None => item.attrs.push((attr_name, type_name, comment)),
                        }
                    }
                }
                "SPATIAL" => {
                    self.expect_keyword("EXTENT")?;
                    self.expect_kind(&TokenKind::Colon)?;
                    let _name = self.expect_ident()?;
                    self.expect_kind(&TokenKind::Eq)?;
                    self.expect_keyword("box")?;
                    self.expect_kind(&TokenKind::Semi)?;
                    self.skip_comments();
                    item.spatial = true;
                }
                "TEMPORAL" => {
                    self.expect_keyword("EXTENT")?;
                    self.expect_kind(&TokenKind::Colon)?;
                    let _name = self.expect_ident()?;
                    self.expect_kind(&TokenKind::Eq)?;
                    self.expect_keyword("abstime")?;
                    self.expect_kind(&TokenKind::Semi)?;
                    self.skip_comments();
                    item.temporal = true;
                }
                "DERIVED" => {
                    self.expect_keyword("BY")?;
                    self.expect_kind(&TokenKind::Colon)?;
                    item.derived_by.push(self.expect_ident()?);
                    while matches!(self.peek_kind(), TokenKind::Comma) {
                        self.bump();
                        item.derived_by.push(self.expect_ident()?);
                    }
                    self.skip_comments();
                }
                other => return self.err_prev(format!("unknown class section {other:?}")),
            }
        }
        Ok(item)
    }

    fn process_item(&mut self) -> Result<ProcessItem, ParseError> {
        let name = self.expect_ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        self.expect_keyword("OUTPUT")?;
        let output = self.expect_ident()?;
        self.expect_keyword("ARGUMENT")?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut args = Vec::new();
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RParen) {
                self.bump();
                break;
            }
            if !args.is_empty() {
                self.expect_kind(&TokenKind::Comma)?;
            }
            let setof = if self.at_keyword("SETOF") {
                self.bump();
                true
            } else {
                false
            };
            let arg_name = self.expect_ident()?;
            let class = self.expect_ident()?;
            args.push(ArgItem {
                setof,
                name: arg_name,
                class,
            });
        }
        // Optional body sections, in any order: TEMPLATE, INTERACTIONS
        // (§4.3 extension), EXTERNAL AT (§5), NONAPPLICATIVE (§5),
        // COST (bind-stage hint).
        let mut assertions = Vec::new();
        let mut mappings = Vec::new();
        let mut interactions = Vec::new();
        let mut external_site = None;
        let mut nonapplicative = None;
        let mut cost = None;
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RParen) {
                self.bump();
                break;
            }
            let section = self.expect_ident()?;
            match section.as_str() {
                "TEMPLATE" => {
                    self.expect_kind(&TokenKind::LBrace)?;
                    self.template_body(&mut assertions, &mut mappings)?;
                }
                "INTERACTIONS" => {
                    self.expect_kind(&TokenKind::LBrace)?;
                    loop {
                        self.skip_comments();
                        if matches!(self.peek_kind(), TokenKind::RBrace) {
                            self.bump();
                            break;
                        }
                        self.expect_keyword("PARAM")?;
                        let param = self.expect_ident()?;
                        self.expect_kind(&TokenKind::Colon)?;
                        let type_name = self.expect_ident()?;
                        let preview = if self.at_keyword("PREVIEW") {
                            self.bump();
                            Some(self.expr()?)
                        } else {
                            None
                        };
                        self.expect_kind(&TokenKind::Semi)?;
                        let prompt = self.skip_comments();
                        interactions.push(crate::ast::InteractionItem {
                            param,
                            type_name,
                            preview,
                            prompt,
                        });
                    }
                }
                "EXTERNAL" => {
                    self.expect_keyword("AT")?;
                    match self.peek_kind().clone() {
                        TokenKind::Str(s) => {
                            self.bump();
                            external_site = Some(s);
                        }
                        other => {
                            return self.err(format!(
                                "expected quoted site name after EXTERNAL AT, found {other}"
                            ))
                        }
                    }
                }
                "NONAPPLICATIVE" => match self.peek_kind().clone() {
                    TokenKind::Str(s) => {
                        self.bump();
                        nonapplicative = Some(s);
                    }
                    other => {
                        return self.err(format!(
                            "expected quoted procedure after NONAPPLICATIVE, found {other}"
                        ))
                    }
                },
                "COST" => {
                    cost = Some(self.expect_ident()?);
                }
                other => return self.err_prev(format!("unknown process section {other:?}")),
            }
        }
        Ok(ProcessItem {
            name,
            output,
            args,
            assertions,
            mappings,
            interactions,
            external_site,
            nonapplicative,
            cost,
        })
    }

    /// The `{ ASSERTIONS: ... MAPPINGS: ... }` body (brace already eaten).
    fn template_body(
        &mut self,
        assertions: &mut Vec<Expr>,
        mappings: &mut Vec<(String, String, Expr)>,
    ) -> Result<(), ParseError> {
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RBrace) {
                self.bump();
                return Ok(());
            }
            let section = self.expect_ident()?;
            self.expect_kind(&TokenKind::Colon)?;
            match section.as_str() {
                "ASSERTIONS" => loop {
                    self.skip_comments();
                    match self.peek_kind() {
                        TokenKind::RBrace => break,
                        TokenKind::Ident(s) if s == "MAPPINGS" || s == "ASSERTIONS" => break,
                        _ => {}
                    }
                    let e = self.expr()?;
                    self.expect_kind(&TokenKind::Semi)?;
                    assertions.push(e);
                },
                "MAPPINGS" => loop {
                    self.skip_comments();
                    match self.peek_kind() {
                        TokenKind::RBrace => break,
                        TokenKind::Ident(s) if s == "MAPPINGS" || s == "ASSERTIONS" => break,
                        _ => {}
                    }
                    let target = self.expect_ident()?;
                    self.expect_kind(&TokenKind::Dot)?;
                    let attr = self.expect_ident()?;
                    self.expect_kind(&TokenKind::Eq)?;
                    let e = self.expr()?;
                    self.expect_kind(&TokenKind::Semi)?;
                    mappings.push((target, attr, e));
                },
                other => return self.err_prev(format!("unknown template section {other:?}")),
            }
        }
    }

    fn concept_item(&mut self) -> Result<ConceptItem, ParseError> {
        let name = self.expect_ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut item = ConceptItem {
            name,
            members: vec![],
            isa: vec![],
            doc: String::new(),
        };
        loop {
            self.skip_comments();
            if matches!(self.peek_kind(), TokenKind::RParen) {
                self.bump();
                break;
            }
            let section = self.expect_ident()?;
            self.expect_kind(&TokenKind::Colon)?;
            match section.as_str() {
                "MEMBERS" => {
                    item.members.push(self.expect_ident()?);
                    while matches!(self.peek_kind(), TokenKind::Comma) {
                        self.bump();
                        item.members.push(self.expect_ident()?);
                    }
                    self.expect_kind(&TokenKind::Semi)?;
                }
                "ISA" => {
                    item.isa.push(self.expect_ident()?);
                    while matches!(self.peek_kind(), TokenKind::Comma) {
                        self.bump();
                        item.isa.push(self.expect_ident()?);
                    }
                    self.expect_kind(&TokenKind::Semi)?;
                }
                "DOC" => {
                    self.skip_comments();
                    match self.peek_kind().clone() {
                        TokenKind::Str(s) => {
                            self.bump();
                            item.doc = s;
                        }
                        other => {
                            return self.err(format!("expected string after DOC:, found {other}"))
                        }
                    }
                    self.expect_kind(&TokenKind::Semi)?;
                }
                other => return self.err_prev(format!("unknown concept section {other:?}")),
            }
        }
        Ok(item)
    }

    /// `DEFINE INDEX attr ON class` (keywords `DEFINE INDEX` already
    /// eaten): declare an access path on one class attribute.
    fn index_item(&mut self) -> Result<IndexItem, ParseError> {
        let attr = self.expect_ident()?;
        self.expect_keyword("ON")?;
        let class = self.expect_ident()?;
        Ok(IndexItem { attr, class })
    }

    // ------------------------------------------------------------------
    // Queries (`RETRIEVE`, keyword already eaten)
    // ------------------------------------------------------------------

    fn retrieve_item(&mut self) -> Result<RetrieveItem, ParseError> {
        // Projection: `*` or a comma-separated attribute list.
        let mut projection = Vec::new();
        self.skip_comments();
        if matches!(self.peek_kind(), TokenKind::Star) {
            self.bump();
        } else {
            projection.push(self.expect_ident()?);
            loop {
                self.skip_comments();
                if matches!(self.peek_kind(), TokenKind::Comma) {
                    self.bump();
                    projection.push(self.expect_ident()?);
                } else {
                    break;
                }
            }
            if projection.len() == 1 && projection[0] == "FROM" {
                return self.err("projection must name attributes or be `*`");
            }
        }
        self.expect_keyword("FROM")?;
        let target = self.expect_ident()?;
        let mut where_clauses = Vec::new();
        if self.at_keyword("WHERE") {
            self.bump();
            where_clauses.push(self.where_clause()?);
            while self.at_keyword("AND") {
                self.bump();
                where_clauses.push(self.where_clause()?);
            }
        }
        let derive = if self.at_keyword("DERIVE") {
            self.bump();
            let is_async = if self.at_keyword("ASYNC") {
                self.bump();
                true
            } else {
                false
            };
            let using = if self.at_keyword("USING") {
                self.bump();
                Some(self.expect_ident()?)
            } else {
                None
            };
            let cost = if self.at_keyword("COST") {
                self.bump();
                Some(self.expect_ident()?)
            } else {
                None
            };
            Some(DeriveClause {
                is_async,
                using,
                cost,
            })
        } else {
            None
        };
        let fresh = if self.at_keyword("FRESH") {
            self.bump();
            true
        } else {
            false
        };
        let order_by = if self.at_keyword("ORDER") {
            self.bump();
            self.expect_keyword("BY")?;
            let attr = self.expect_ident()?;
            let desc = if self.at_keyword("DESC") {
                self.bump();
                true
            } else {
                if self.at_keyword("ASC") {
                    self.bump();
                }
                false
            };
            Some(OrderByItem { attr, desc })
        } else {
            None
        };
        let limit = if self.at_keyword("LIMIT") {
            self.bump();
            self.skip_comments();
            match *self.peek_kind() {
                TokenKind::Int(n) if n >= 0 => {
                    self.bump();
                    Some(n as u64)
                }
                ref other => {
                    return self.err(format!(
                        "expected a non-negative integer after LIMIT, found {other}"
                    ))
                }
            }
        } else {
            None
        };
        Ok(RetrieveItem {
            projection,
            target,
            where_clauses,
            derive,
            fresh,
            order_by,
            limit,
        })
    }

    fn where_clause(&mut self) -> Result<WhereItem, ParseError> {
        if self.at_keyword("WITHIN") {
            self.bump();
            self.expect_kind(&TokenKind::LParen)?;
            let xmin = self.number()?;
            self.expect_kind(&TokenKind::Comma)?;
            let ymin = self.number()?;
            self.expect_kind(&TokenKind::Comma)?;
            let xmax = self.number()?;
            self.expect_kind(&TokenKind::Comma)?;
            let ymax = self.number()?;
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(WhereItem::Within {
                xmin,
                ymin,
                xmax,
                ymax,
            });
        }
        if self.at_keyword("AT") {
            self.bump();
            return Ok(WhereItem::At(self.time_lit()?));
        }
        if self.at_keyword("BETWEEN") {
            self.bump();
            let a = self.time_lit()?;
            self.expect_keyword("AND")?;
            let b = self.time_lit()?;
            return Ok(WhereItem::Between(a, b));
        }
        let attr = self.expect_ident()?;
        self.skip_comments();
        let cmp = match self.peek_kind() {
            TokenKind::Eq => AttrCmp::Eq,
            TokenKind::Lt => AttrCmp::Lt,
            TokenKind::Gt => AttrCmp::Gt,
            other => {
                return self.err(format!(
                    "expected '=', '<' or '>' after attribute {attr:?}, found {other}"
                ))
            }
        };
        self.bump();
        let value = self.literal()?;
        Ok(WhereItem::Attr { attr, cmp, value })
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_comments();
        match *self.peek_kind() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v as f64)
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(v)
            }
            ref other => self.err(format!("expected a number, found {other}")),
        }
    }

    fn literal(&mut self) -> Result<LitValue, ParseError> {
        self.skip_comments();
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(LitValue::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(LitValue::Float(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(LitValue::Str(s))
            }
            other => self.err(format!("expected a literal constant, found {other}")),
        }
    }

    fn time_lit(&mut self) -> Result<TimeLit, ParseError> {
        self.skip_comments();
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(TimeLit::Epoch(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(TimeLit::Date(s))
            }
            other => self.err(format!(
                "expected an epoch integer or \"YYYY-MM-DD\" date, found {other}"
            )),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// expr := term (('=' | '<' | '>') term)?
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.term()?;
        self.skip_comments();
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Gt => Some(CmpOp::Gt),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.term()?;
            Ok(Expr::Cmp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    /// term := ANYOF term | literal | call | projection | ident
    fn term(&mut self) -> Result<Expr, ParseError> {
        self.skip_comments();
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Const(Value::Int4(v as i32)))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Const(Value::Float8(v)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Const(Value::Text(s)))
            }
            TokenKind::Ident(id) if id == "ANYOF" => {
                self.bump();
                let inner = self.term()?;
                Ok(Expr::AnyOf(Box::new(inner)))
            }
            TokenKind::Ident(id) if id == "PARAM" => {
                self.bump();
                let name = self.expect_ident()?;
                Ok(Expr::Param(name))
            }
            TokenKind::Ident(id) => {
                self.bump();
                self.skip_comments();
                match self.peek_kind() {
                    TokenKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        loop {
                            self.skip_comments();
                            if matches!(self.peek_kind(), TokenKind::RParen) {
                                self.bump();
                                break;
                            }
                            if !args.is_empty() {
                                self.expect_kind(&TokenKind::Comma)?;
                            }
                            args.push(self.expr()?);
                        }
                        // card/common are builtins of the template language.
                        match id.as_str() {
                            "card" if args.len() == 1 => Ok(Expr::Card(Box::new(
                                args.into_iter().next().expect("len 1"),
                            ))),
                            "common" if args.len() == 1 => Ok(Expr::Common(Box::new(
                                args.into_iter().next().expect("len 1"),
                            ))),
                            _ => Ok(Expr::Apply { op: id, args }),
                        }
                    }
                    TokenKind::Dot => {
                        self.bump();
                        let attr = self.expect_ident()?;
                        Ok(Expr::ArgAttr { arg: id, attr })
                    }
                    _ => Ok(Expr::Arg(id)),
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

/// Parse a program source.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

/// Parse exactly one `RETRIEVE` statement (the `Gaea::retrieve` surface).
pub fn parse_query(src: &str) -> Result<RetrieveItem, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.expect_keyword("RETRIEVE")?;
    let item = p.retrieve_item()?;
    p.skip_comments();
    if !matches!(p.peek_kind(), TokenKind::Eof) {
        return p.err(format!(
            "expected end of query, found {}",
            p.peek_kind().clone()
        ));
    }
    Ok(item)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's landcover class, verbatim modulo attribute subset.
    const LANDCOVER: &str = r#"
CLASS landcover ( // Land cover
  ATTRIBUTES:
    area = char16;       // area name
    ref_system = char16; // long/lat, UTM ...
    data = image;        // image data type
    numclass = int4;
  SPATIAL EXTENT:
    spatialextent = box; // bounding box
  TEMPORAL EXTENT:
    timestamp = abstime; // absolute time
  DERIVED BY: unsupervised-classification
)
"#;

    const P20: &str = r#"
DEFINE PROCESS P20 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;  // need three bands
      common(bands.spatialextent);
      common(bands.timestamp);
    MAPPINGS:
      landcover.data = unsuperclassify(composite(bands), 12);
      landcover.numclass = 12;
      landcover.spatialextent = ANYOF bands.spatialextent;
      landcover.timestamp = ANYOF bands.timestamp;
  }
)
"#;

    #[test]
    fn parses_the_landcover_class() {
        let prog = parse(LANDCOVER).unwrap();
        assert_eq!(prog.items.len(), 1);
        let Item::Class(c) = &prog.items[0] else {
            panic!("expected class");
        };
        assert_eq!(c.name, "landcover");
        assert_eq!(c.doc, "Land cover");
        assert_eq!(c.attrs.len(), 4);
        assert_eq!(
            c.attrs[0],
            ("area".into(), "char16".into(), "area name".into())
        );
        assert!(c.spatial && c.temporal);
        assert_eq!(c.derived_by, vec!["unsupervised-classification"]);
    }

    #[test]
    fn parses_figure3_process() {
        let prog = parse(P20).unwrap();
        let Item::Process(p) = &prog.items[0] else {
            panic!("expected process");
        };
        assert_eq!(p.name, "P20");
        assert_eq!(p.output, "landcover");
        assert_eq!(p.args.len(), 1);
        assert!(p.args[0].setof);
        assert_eq!(p.args[0].name, "bands");
        assert_eq!(p.args[0].class, "tm");
        assert_eq!(p.assertions.len(), 3);
        assert_eq!(p.assertions[0].to_string(), "card(bands) = 3");
        assert_eq!(p.assertions[1].to_string(), "common(bands.spatialextent)");
        assert_eq!(p.mappings.len(), 4);
        assert_eq!(p.mappings[0].0, "landcover");
        assert_eq!(p.mappings[0].1, "data");
        assert_eq!(
            p.mappings[0].2.to_string(),
            "unsuperclassify(composite(bands), 12)"
        );
        assert_eq!(p.mappings[2].2.to_string(), "ANYOF bands.spatialextent");
    }

    #[test]
    fn parses_concepts() {
        let src = r#"
DEFINE CONCEPT vegetation_change (
  MEMBERS: change_pca, change_spca;
  ISA: remote_sensing_product;
  DOC: "vegetation change however derived";
)
"#;
        let prog = parse(src).unwrap();
        let Item::Concept(c) = &prog.items[0] else {
            panic!("expected concept");
        };
        assert_eq!(c.name, "vegetation_change");
        assert_eq!(c.members, vec!["change_pca", "change_spca"]);
        assert_eq!(c.isa, vec!["remote_sensing_product"]);
        assert_eq!(c.doc, "vegetation change however derived");
    }

    #[test]
    fn multiple_items() {
        let src = format!("{LANDCOVER}\n{P20}");
        let prog = parse(&src).unwrap();
        assert_eq!(prog.items.len(), 2);
    }

    #[test]
    fn error_positions() {
        let err = parse("CLASS x ( BOGUS: )").unwrap_err();
        assert!(err.message.contains("BOGUS"));
        let err = parse("DEFINE WIDGET w ()").unwrap_err();
        assert!(err.message.contains("PROCESS, CONCEPT or INDEX"));
        let err = parse("42").unwrap_err();
        assert!(err.message.contains("top level"));
        // Lex-level failures surface too ('+' is not a token).
        let err = parse("1 + 2").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn error_spans_select_the_offending_token() {
        // The span must slice exactly the token the parser choked on.
        let src = "CLASS x ( BOGUS: )";
        let err = parse(src).unwrap_err();
        assert_eq!(&src[err.span.clone()], "BOGUS");
        let src = "DEFINE WIDGET w ()";
        let err = parse(src).unwrap_err();
        assert_eq!(&src[err.span.clone()], "WIDGET");
        // Lex errors carry spans through the From conversion.
        let src = "1 + 2";
        let err = parse(src).unwrap_err();
        assert_eq!(&src[err.span.clone()], "+");
    }

    #[test]
    fn underline_renders_a_caret_line() {
        let src = "RETRIEVE data FROM landcover WHERE numclass ; 12";
        let err = parse_query(src).unwrap_err();
        assert_eq!(&src[err.span.clone()], ";");
        let rendered = err.underline(src);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3, "{rendered}");
        assert_eq!(lines[1].trim_end(), format!("  {src}"));
        assert_eq!(lines[2].find('^'), Some(2 + src.find(';').unwrap()));
        // Out-of-range spans degrade to the bare message.
        let stale = ParseError {
            message: "m".into(),
            line: 1,
            span: 900..901,
        };
        assert_eq!(stale.underline("short"), stale.to_string());
    }

    #[test]
    fn parses_full_retrieve_statement() {
        let src = r#"RETRIEVE data, numclass FROM landcover
  WHERE numclass = 12 AND WITHIN(-20, -35, 55, 38)
    AND AT "1986-01-15"
  DERIVE USING P20 COST newest
  FRESH"#;
        let item = parse_query(src).unwrap();
        assert_eq!(item.projection, vec!["data".to_string(), "numclass".into()]);
        assert_eq!(item.target, "landcover");
        assert_eq!(item.where_clauses.len(), 3);
        assert_eq!(
            item.where_clauses[0],
            WhereItem::Attr {
                attr: "numclass".into(),
                cmp: AttrCmp::Eq,
                value: LitValue::Int(12),
            }
        );
        assert!(matches!(
            item.where_clauses[1],
            WhereItem::Within {
                xmin,
                ymin,
                xmax,
                ymax,
            } if (xmin, ymin, xmax, ymax) == (-20.0, -35.0, 55.0, 38.0)
        ));
        assert_eq!(
            item.where_clauses[2],
            WhereItem::At(TimeLit::Date("1986-01-15".into()))
        );
        let derive = item.derive.unwrap();
        assert_eq!(derive.using.as_deref(), Some("P20"));
        assert_eq!(derive.cost.as_deref(), Some("newest"));
        assert!(item.fresh);
    }

    #[test]
    fn retrieve_star_between_and_defaults() {
        let item = parse_query("RETRIEVE * FROM ndvi WHERE BETWEEN 100 AND 200").unwrap();
        assert!(item.projection.is_empty(), "star keeps all attributes");
        assert_eq!(
            item.where_clauses,
            vec![WhereItem::Between(TimeLit::Epoch(100), TimeLit::Epoch(200))]
        );
        assert!(item.derive.is_none() && !item.fresh);
        // BETWEEN's AND does not swallow a following conjunct.
        let item = parse_query("RETRIEVE * FROM ndvi WHERE BETWEEN 100 AND 200 AND val > 3 DERIVE")
            .unwrap();
        assert_eq!(item.where_clauses.len(), 2);
        assert_eq!(item.derive, Some(DeriveClause::default()));
    }

    #[test]
    fn retrieve_derive_async_parses_in_clause_order() {
        let item =
            parse_query("RETRIEVE * FROM landcover DERIVE ASYNC USING P20 COST newest").unwrap();
        let derive = item.derive.unwrap();
        assert!(derive.is_async);
        assert_eq!(derive.using.as_deref(), Some("P20"));
        assert_eq!(derive.cost.as_deref(), Some("newest"));
        // Bare ASYNC and its absence both parse.
        let bare = parse_query("RETRIEVE * FROM landcover DERIVE ASYNC").unwrap();
        assert!(bare.derive.unwrap().is_async);
        let sync = parse_query("RETRIEVE * FROM landcover DERIVE").unwrap();
        assert!(!sync.derive.unwrap().is_async);
        // An identifier named like the keyword in another position is
        // not swallowed: USING binds the next ident, ASYNC must precede.
        let using_first = parse_query("RETRIEVE * FROM landcover DERIVE USING P20").unwrap();
        assert!(!using_first.derive.unwrap().is_async);
    }

    #[test]
    fn retrieve_rejects_malformed_statements() {
        for bad in [
            "RETRIEVE FROM x",
            "RETRIEVE * x",
            "RETRIEVE * FROM x WHERE",
            "RETRIEVE * FROM x WHERE a ? 3",
            "RETRIEVE * FROM x WHERE AT noquote",
            "RETRIEVE * FROM x trailing",
            "RETRIEVE * FROM x DERIVE COST",
        ] {
            assert!(parse_query(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn retrieve_allowed_in_programs_and_process_cost_parses() {
        let src = format!("{LANDCOVER}\nRETRIEVE * FROM landcover\n{P20}");
        let prog = parse(&src).unwrap();
        assert_eq!(prog.items.len(), 3);
        assert!(matches!(&prog.items[1], Item::Retrieve(r) if r.target == "landcover"));
        // DDL-declared bind-stage hint.
        let src = r#"
DEFINE PROCESS P21 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm )
  COST newest
  TEMPLATE { MAPPINGS: landcover.numclass = 12; }
)
"#;
        let prog = parse(src).unwrap();
        let Item::Process(p) = &prog.items[0] else {
            panic!("expected process");
        };
        assert_eq!(p.cost.as_deref(), Some("newest"));
    }

    #[test]
    fn comparison_expressions() {
        let src = r#"
DEFINE PROCESS desert (
  OUTPUT desert_map
  ARGUMENT ( rain rainfall )
  TEMPLATE {
    ASSERTIONS:
      img_mean(rain.data) < 250;
    MAPPINGS:
      desert_map.data = threshold_below(rain.data, 250.0);
  }
)
"#;
        let prog = parse(src).unwrap();
        let Item::Process(p) = &prog.items[0] else {
            panic!()
        };
        assert_eq!(p.assertions[0].to_string(), "img_mean(rain.data) < 250");
        assert_eq!(
            p.mappings[0].2.to_string(),
            "threshold_below(rain.data, 250)"
        );
    }
}
