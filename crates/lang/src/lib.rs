//! # gaea-lang — the Gaea definition language
//!
//! The paper presents class and process definitions in a textual DDL
//! (§2.1.2 `CLASS landcover (...)`, Figure 3 `DEFINE PROCESS ...
//! TEMPLATE { ASSERTIONS: ... MAPPINGS: ... }`). This crate parses that
//! surface syntax and lowers it onto the kernel catalog:
//!
//! ```text
//! CLASS landcover (            // Land cover
//!   ATTRIBUTES:
//!     area = char16;           // area name
//!     data = image;            // image data type
//!   SPATIAL EXTENT:
//!     spatialextent = box;
//!   TEMPORAL EXTENT:
//!     timestamp = abstime;
//!   DERIVED BY: unsupervised-classification
//! )
//!
//! DEFINE PROCESS P20 (
//!   OUTPUT landcover
//!   ARGUMENT ( SETOF bands tm )
//!   TEMPLATE {
//!     ASSERTIONS:
//!       card(bands) = 3;
//!       common(bands.spatialextent);
//!       common(bands.timestamp);
//!     MAPPINGS:
//!       landcover.data = unsuperclassify(composite(bands), 12);
//!       landcover.numclass = 12;
//!       landcover.spatialextent = ANYOF bands.spatialextent;
//!       landcover.timestamp = ANYOF bands.timestamp;
//!   }
//! )
//!
//! DEFINE CONCEPT vegetation_change (
//!   MEMBERS: change_pca, change_spca;
//!   ISA: remote_sensing_product;
//! )
//! ```
//!
//! [`parse`] produces an AST; [`lower::lower_program`] registers it into a
//! [`gaea_core::Gaea`] kernel; [`pretty::pretty_program`] round-trips the
//! AST back to text.

pub mod ast;
pub mod lex;
pub mod lower;
pub mod parser;
pub mod pretty;

pub use ast::{ClassItem, ConceptItem, Item, ProcessItem, Program};
pub use lower::lower_program;
pub use parser::{parse, ParseError};
pub use pretty::pretty_program;
