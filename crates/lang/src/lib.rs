//! # gaea-lang — the Gaea definition language
//!
//! The paper presents class and process definitions in a textual DDL
//! (§2.1.2 `CLASS landcover (...)`, Figure 3 `DEFINE PROCESS ...
//! TEMPLATE { ASSERTIONS: ... MAPPINGS: ... }`). This crate parses that
//! surface syntax and lowers it onto the kernel catalog:
//!
//! ```text
//! CLASS landcover (            // Land cover
//!   ATTRIBUTES:
//!     area = char16;           // area name
//!     data = image;            // image data type
//!   SPATIAL EXTENT:
//!     spatialextent = box;
//!   TEMPORAL EXTENT:
//!     timestamp = abstime;
//!   DERIVED BY: unsupervised-classification
//! )
//!
//! DEFINE PROCESS P20 (
//!   OUTPUT landcover
//!   ARGUMENT ( SETOF bands tm )
//!   TEMPLATE {
//!     ASSERTIONS:
//!       card(bands) = 3;
//!       common(bands.spatialextent);
//!       common(bands.timestamp);
//!     MAPPINGS:
//!       landcover.data = unsuperclassify(composite(bands), 12);
//!       landcover.numclass = 12;
//!       landcover.spatialextent = ANYOF bands.spatialextent;
//!       landcover.timestamp = ANYOF bands.timestamp;
//!   }
//! )
//!
//! DEFINE CONCEPT vegetation_change (
//!   MEMBERS: change_pca, change_spca;
//!   ISA: remote_sensing_product;
//! )
//! ```
//!
//! [`parse`] produces an AST; [`lower::lower_program`] registers it into a
//! [`gaea_core::Gaea`] kernel; [`pretty::pretty_program`] round-trips the
//! AST back to text.
//!
//! ## The query surface
//!
//! Beyond the DDL, the crate implements the paper's declarative query
//! statement and lowers it onto the kernel's plan/bind/fire/project
//! query pipeline (§2.1.5):
//!
//! ```text
//! RETRIEVE data, numclass FROM landcover
//!   WHERE numclass = 12 AND WITHIN(-20, -35, 55, 38) AND AT "1986-01-15"
//!   DERIVE [ASYNC] USING P20 COST newest
//!   FRESH
//! ```
//!
//! [`parser::parse_query`] parses one statement, [`lower::lower_query`]
//! compiles it to a [`gaea_core::Query`] plan, and the [`Retrieve`]
//! extension trait packages both as `gaea.retrieve("RETRIEVE …")`.
//! Without a `DERIVE` clause a statement only retrieves; `DERIVE` permits
//! computation (derivation preferred), `DERIVE ASYNC` submits the
//! derivation as a background job — the statement returns the job id
//! immediately instead of blocking on a slow external site — `USING`
//! pins the goal's producing process, `COST oldest|newest` overrides the
//! bind stage's candidate ordering (processes may declare their own
//! default with a `COST` section), and `FRESH` re-fires stale answers
//! instead of serving them as flagged history.

pub mod ast;
pub mod lex;
pub mod lower;
pub mod parser;
pub mod pretty;

pub use ast::{
    ClassItem, ConceptItem, DeriveClause, Item, LitValue, ProcessItem, Program, RetrieveItem,
    TimeLit, WhereItem,
};
pub use lower::{compile_query, lower_program, lower_query, lower_query_catalog, Retrieve};
pub use parser::{parse, parse_query, ParseError};
pub use pretty::{pretty_program, pretty_retrieve};
