//! Shared benchmark fixtures.
//!
//! Every bench target draws its workloads from here so parameter sweeps
//! stay comparable across experiments. Criterion groups are configured
//! short (≈1 s measurement, 10 samples): the quantities of interest are
//! relative shapes — who wins, by what factor, where crossovers sit — not
//! absolute wall-clock precision.

use gaea_adt::{AbsTime, GeoBox, Value};
use gaea_core::kernel::Gaea;
use gaea_core::ObjectId;
use gaea_workload::{build_figure2_schema, SceneSpec, SyntheticScene};

/// The Africa window used throughout the paper's examples.
pub fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

/// January 1986 (the paper's running task).
pub fn jan86() -> AbsTime {
    AbsTime::from_ymd(1986, 1, 15).expect("valid date")
}

/// A kernel with the Figure 2 schema registered.
pub fn figure2_kernel() -> Gaea {
    let mut g = Gaea::in_memory().with_user("bench");
    build_figure2_schema(&mut g).expect("figure 2 schema registers");
    g
}

/// Store one synthetic 3-band scene into `class` at `t`; returns band ids.
pub fn store_scene(g: &mut Gaea, class: &str, seed: u64, side: u32, t: AbsTime) -> Vec<ObjectId> {
    let scene = SyntheticScene::generate(SceneSpec::small(seed).sized(side, side));
    scene
        .bands
        .iter()
        .map(|band| {
            g.insert_object(
                class,
                vec![
                    ("data", Value::image(band.clone())),
                    ("spatialextent", Value::GeoBox(africa())),
                    ("timestamp", Value::AbsTime(t)),
                ],
            )
            .expect("insert scene band")
        })
        .collect()
}

/// Apply the shared short-run configuration to a Criterion group.
pub fn configure<M: criterion::measurement::Measurement>(
    group: &mut criterion::BenchmarkGroup<'_, M>,
) {
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(900));
    group.warm_up_time(std::time::Duration::from_millis(300));
}
