//! Ablation A1 — the paper's modified firing rule vs classic Petri nets
//! (§2.1.6 modification 1: "tokens are not removed from input places upon
//! the firing of a transition").
//!
//! Two questions: (a) does token preservation cost anything per firing?
//! (b) what does the modification buy? Under classic semantics a base
//! scene is *consumed* by its first derivation, so a second process
//! wanting the same inputs is dead; under Gaea semantics every process
//! over the same base data stays enabled. The sweep fires every enabled
//! transition once, in both modes, and reports the wall cost; the firing
//! counts (printed once) show classic mode starving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_bench::configure;
use gaea_petri::firing::{enabled_transitions, fire, FiringMode};
use gaea_petri::reachability::saturate;
use gaea_workload::{random_derivation_catalog, RandDagSpec};
use std::hint::black_box;

fn spec(depth: usize) -> RandDagSpec {
    RandDagSpec {
        depth,
        width: 4,
        alternatives: 2,
        fan_in: 3,
        threshold_max: 2,
        seed: 7,
    }
}

/// Fire every enabled transition once (skipping ones a previous classic
/// firing starved); returns (fired, starved).
fn sweep(net: &gaea_petri::PetriNet, m0: &gaea_petri::Marking, mode: FiringMode) -> (u64, u64) {
    let mut m = m0.clone();
    let mut fired = 0u64;
    let mut starved = 0u64;
    for t in enabled_transitions(net, m0) {
        match fire(net, &m, t, mode) {
            Ok(next) => {
                m = next;
                fired += 1;
            }
            Err(_) => starved += 1,
        }
    }
    (fired, starved)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_firing_semantics");
    configure(&mut group);

    // (a) per-sweep firing cost, both modes, across net depth.
    for depth in [2usize, 4, 8] {
        let rd = random_derivation_catalog(spec(depth));
        let m0 = rd.base_marking(4);
        // Report the semantic difference once per configuration.
        let (g_fired, g_starved) = sweep(&rd.net, &m0, FiringMode::GaeaPreserving);
        let (c_fired, c_starved) = sweep(&rd.net, &m0, FiringMode::Classic);
        println!(
            "depth {depth}: gaea fires {g_fired} (starved {g_starved}); \
             classic fires {c_fired} (starved {c_starved})"
        );
        group.bench_with_input(BenchmarkId::new("sweep_gaea", depth), &depth, |b, _| {
            b.iter(|| black_box(sweep(&rd.net, &m0, FiringMode::GaeaPreserving)))
        });
        group.bench_with_input(BenchmarkId::new("sweep_classic", depth), &depth, |b, _| {
            b.iter(|| black_box(sweep(&rd.net, &m0, FiringMode::Classic)))
        });
    }

    // (b) forward saturation (the reachability analysis §2.1.6 proposes)
    // under the preserving rule, by depth.
    for depth in [2usize, 4, 8] {
        let rd = random_derivation_catalog(spec(depth));
        let m0 = rd.base_marking(4);
        group.bench_with_input(BenchmarkId::new("saturate", depth), &depth, |b, _| {
            b.iter(|| black_box(saturate(&rd.net, &m0, 64)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
