//! Experiment Q8 — interpolation as a generic derivation (§2.1.5 step 2).
//!
//! Measures bare temporal interpolation across raster sizes, series
//! bracketing over growing series, and the full kernel interpolation path
//! (query → bracket search → synthesis → task record). Also prints an
//! accuracy sweep: linear interpolation error against the synthetic NDVI
//! ground truth as the gap between stored snapshots widens — the shape
//! that justifies §2.1.5's ordering (interpolate before deriving when
//! snapshots are dense).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::{AbsTime, Value};
use gaea_bench::{africa, configure, figure2_kernel};
use gaea_core::{Query, QueryMethod};
use gaea_raster::interp::{series_interp, temporal_interp};
use gaea_raster::stats::mean;
use gaea_workload::ndvi_series;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q8_interpolation");
    configure(&mut group);
    // Bare interpolation, size sweep.
    for side in [16u32, 64, 128] {
        let series = ndvi_series(
            side,
            side,
            2,
            AbsTime::from_ymd(1988, 1, 1).unwrap(),
            0.0,
            1,
        );
        let (t1, i1) = &series[0];
        let (t2, i2) = &series[1];
        let mid = AbsTime((t1.0 + t2.0) / 2);
        group.bench_with_input(
            BenchmarkId::new("bare_temporal_interp", side * side),
            &side,
            |b, _| b.iter(|| black_box(temporal_interp(i1, *t1, i2, *t2, mid).expect("ok"))),
        );
    }
    // Bracket search over growing series.
    for months in [12usize, 60, 240] {
        let series = ndvi_series(
            16,
            16,
            months,
            AbsTime::from_ymd(1988, 1, 1).unwrap(),
            0.0,
            2,
        );
        let target = AbsTime((series[months / 2].0 .0 + series[months / 2 + 1].0 .0) / 2);
        group.bench_with_input(
            BenchmarkId::new("series_bracket_search", months),
            &months,
            |b, _| b.iter(|| black_box(series_interp(&series, target).expect("ok"))),
        );
    }
    // Full kernel path.
    group.bench_function("kernel_interpolation_query_32x32", |b| {
        b.iter_batched(
            || {
                let mut g = figure2_kernel();
                let series = ndvi_series(32, 32, 2, AbsTime::from_ymd(1988, 1, 1).unwrap(), 0.0, 3);
                for (t, img) in &series {
                    g.insert_object(
                        "ndvi",
                        vec![
                            ("data", Value::image(img.clone())),
                            ("spatialextent", Value::GeoBox(africa())),
                            ("timestamp", Value::AbsTime(*t)),
                        ],
                    )
                    .expect("insert");
                }
                let mid = AbsTime((series[0].0 .0 + series[1].0 .0) / 2);
                (g, Query::class("ndvi").over(africa()).at(mid))
            },
            |(mut g, q)| {
                let out = g.query(&q).expect("interpolates");
                debug_assert_eq!(out.method, QueryMethod::Interpolated);
                black_box(out)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();

    // Accuracy sweep (printed once; recorded in EXPERIMENTS.md).
    let months = 25usize;
    let dense = ndvi_series(
        16,
        16,
        months,
        AbsTime::from_ymd(1988, 1, 1).unwrap(),
        0.05,
        9,
    );
    println!("\nq8_interpolation accuracy: gap (months) vs mean abs error");
    for gap in [2usize, 4, 6, 12] {
        let mut total_err = 0.0;
        let mut count = 0usize;
        for i in (0..months - gap).step_by(gap) {
            let (t1, i1) = &dense[i];
            let (t2, i2) = &dense[i + gap];
            let (tm, truth) = &dense[i + gap / 2];
            let est = temporal_interp(i1, *t1, i2, *t2, *tm).expect("ok");
            let err = est
                .zip_map(truth, gaea_adt::PixType::Float8, |a, b| (a - b).abs())
                .expect("ok");
            total_err += mean(&err);
            count += 1;
        }
        println!("  gap={gap:2}  mae={:.4}", total_err / count as f64);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
