//! Ablation A2 — the binding-search budget.
//!
//! When the planner decides a process must fire, the kernel still has to
//! *choose input objects* satisfying the template's guards (`common` on
//! extents). The kernel walks a bounded cartesian product of candidate
//! bindings, rejecting those the assertions refuse. This ablation varies
//! the bound (`Gaea::binding_budget`) on pools contaminated with
//! off-instant scenes: too small a budget fails good queries; the sweep
//! shows what headroom costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::TypeTag;
use gaea_adt::{AbsTime, Image, PixType, Value};
use gaea_bench::{africa, configure, jan86};
use gaea_core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea_core::template::{Expr, Mapping, Template};
use gaea_core::{Query, QueryStrategy};
use std::hint::black_box;

/// tm --P20--> landcover with `common(timestamp)` + `common(extent)`
/// guards, a 3-band SETOF argument, and trivially cheap image work (the
/// measured cost is binding search, not classification).
fn kernel() -> Gaea {
    let mut g = Gaea::in_memory().with_user("bench");
    g.define_class(ClassSpec::base("tm").attr("data", TypeTag::Image))
        .expect("class");
    g.define_class(
        ClassSpec::derived("landcover")
            .attr("data", TypeTag::Image)
            .attr("numclass", TypeTag::Int4),
    )
    .expect("class");
    let template = Template {
        assertions: vec![
            Expr::eq(
                Expr::Card(Box::new(Expr::Arg("bands".into()))),
                Expr::int(3),
            ),
            Expr::Common(Box::new(Expr::proj("bands", "timestamp"))),
            Expr::Common(Box::new(Expr::proj("bands", "spatialextent"))),
        ],
        mappings: vec![
            Mapping {
                attr: "data".into(),
                expr: Expr::apply("anyof", vec![Expr::Arg("bands".into())]),
            },
            Mapping {
                attr: "numclass".into(),
                expr: Expr::int(1),
            },
            Mapping {
                attr: "spatialextent".into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", "spatialextent"))),
            },
            Mapping {
                attr: "timestamp".into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", "timestamp"))),
            },
        ],
    };
    g.define_process(
        ProcessSpec::new("P20", "landcover")
            .setof_arg("bands", "tm", 3)
            .template(template),
    )
    .expect("process");
    g
}

/// Populate `n_noise` off-instant scenes plus one clean co-temporal
/// triple; the query pins the clean instant.
fn contaminate(g: &mut Gaea, n_noise: usize) {
    let t0 = jan86();
    for i in 0..n_noise {
        let t = AbsTime(t0.0 - 86_400 * (1 + i as i64));
        g.insert_object(
            "tm",
            vec![
                (
                    "data",
                    Value::image(Image::filled(4, 4, PixType::Float8, i as f64)),
                ),
                ("spatialextent", Value::GeoBox(africa())),
                ("timestamp", Value::AbsTime(t)),
            ],
        )
        .expect("insert");
    }
    for i in 0..3 {
        g.insert_object(
            "tm",
            vec![
                (
                    "data",
                    Value::image(Image::filled(4, 4, PixType::Float8, 100.0 + i as f64)),
                ),
                ("spatialextent", Value::GeoBox(africa())),
                ("timestamp", Value::AbsTime(t0)),
            ],
        )
        .expect("insert");
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_binding_budget");
    configure(&mut group);
    for noise in [0usize, 8, 32] {
        for budget in [2usize, 8, 32] {
            let id = format!("noise{noise}_budget{budget}");
            group.bench_with_input(BenchmarkId::new("derive", &id), &id, |b, _| {
                b.iter_batched(
                    || {
                        let mut g = kernel();
                        contaminate(&mut g, noise);
                        g.binding_budget = budget;
                        g
                    },
                    |mut g| {
                        let q = Query::class("landcover")
                            .at(jan86())
                            .with_strategy(QueryStrategy::PreferDerivation);
                        black_box(g.query(&q).expect("co-temporal triple exists"))
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
