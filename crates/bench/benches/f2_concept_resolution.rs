//! Experiment F2 — Figure 2 layer operations.
//!
//! Measures the metadata operations the figure implies: expanding a
//! concept into member classes, walking the ISA DAG, and building the
//! derivation diagram from the catalog. Expected shape: all interactive
//! (µs), with net construction linear in catalog size.

use criterion::{criterion_group, criterion_main, Criterion};
use gaea_bench::{configure, figure2_kernel};
use gaea_core::derivation::DerivationNet;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let g = figure2_kernel();
    let mut group = c.benchmark_group("f2_concept_resolution");
    configure(&mut group);
    group.bench_function("concept_members/hot_trade_wind_desert", |b| {
        b.iter(|| {
            black_box(
                g.catalog()
                    .concept_member_classes("hot_trade_wind_desert")
                    .expect("concept exists"),
            )
        })
    });
    group.bench_function("isa_ancestors/hot_trade_wind_desert", |b| {
        b.iter(|| {
            black_box(
                g.catalog()
                    .concept_ancestors("hot_trade_wind_desert")
                    .expect("ok"),
            )
        })
    });
    group.bench_function("isa_children/desert", |b| {
        let id = g.catalog().concept_by_name("desert").expect("ok").id;
        b.iter(|| black_box(g.catalog().concept_children(id)))
    });
    group.bench_function("derivation_net_build/figure2", |b| {
        b.iter(|| black_box(DerivationNet::build(g.catalog())))
    });
    group.bench_function("process_lookup/P20", |b| {
        b.iter(|| {
            black_box(
                g.catalog()
                    .process_by_name("P20_unsupervised_classification")
                    .expect("ok"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
