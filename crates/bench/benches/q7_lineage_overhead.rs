//! Experiment Q7 — the cost of provenance (task recording overhead).
//!
//! Compares a full kernel firing of a lightweight process (metadata
//! validation + template evaluation + object insert + task record) against
//! the bare operator call, over raster sizes. Expected shape: constant
//! per-task overhead that vanishes relative to any real analysis; lineage
//! queries over deep chains stay interactive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::{Image, TypeTag, Value};
use gaea_bench::configure;
use gaea_core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea_core::template::{Expr, Mapping, Template};
use gaea_raster::img_diff;
use std::hint::black_box;

fn kernel() -> Gaea {
    let mut g = Gaea::in_memory().with_user("q7");
    g.define_class(
        ClassSpec::base("raster")
            .attr("data", TypeTag::Image)
            .no_extents(),
    )
    .expect("class");
    g.define_class(
        ClassSpec::derived("diffmap")
            .attr("data", TypeTag::Image)
            .no_extents(),
    )
    .expect("class");
    g.define_process(
        ProcessSpec::new("diff", "diffmap")
            .arg("a", "raster")
            .arg("b", "raster")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "data".into(),
                    expr: Expr::apply(
                        "img_diff",
                        vec![Expr::proj("a", "data"), Expr::proj("b", "data")],
                    ),
                }],
            }),
    )
    .expect("process");
    g
}

fn image(side: u32, seed: u64) -> Image {
    let n = (side * side) as usize;
    let data: Vec<f64> = (0..n)
        .map(|i| ((i as u64 * 31 + seed) % 251) as f64)
        .collect();
    Image::from_f64(side, side, data).expect("sized")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q7_lineage_overhead");
    configure(&mut group);
    for side in [8u32, 32, 128] {
        let a = image(side, 1);
        let b_img = image(side, 2);
        // Bare algorithm.
        group.bench_with_input(
            BenchmarkId::new("bare_img_diff", side * side),
            &side,
            |bch, _| bch.iter(|| black_box(img_diff(&a, &b_img).expect("ok"))),
        );
        // Kernel task: same computation + full provenance.
        group.bench_with_input(
            BenchmarkId::new("task_img_diff", side * side),
            &side,
            |bch, side| {
                bch.iter_batched(
                    || {
                        let mut g = kernel();
                        let oa = g
                            .insert_object("raster", vec![("data", Value::image(image(*side, 1)))])
                            .expect("insert");
                        let ob = g
                            .insert_object("raster", vec![("data", Value::image(image(*side, 2)))])
                            .expect("insert");
                        (g, oa, ob)
                    },
                    |(mut g, oa, ob)| {
                        black_box(
                            g.run_process("diff", &[("a", vec![oa]), ("b", vec![ob])])
                                .expect("fires"),
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    // Memoized re-firing: the DerivedCache answers an identical firing
    // from its memo — the floor on provenance-preserving deduplication.
    for side in [8u32, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("task_img_diff_memoized", side * side),
            &side,
            |bch, side| {
                let mut g = kernel();
                g.enable_memoization(true);
                let oa = g
                    .insert_object("raster", vec![("data", Value::image(image(*side, 1)))])
                    .expect("insert");
                let ob = g
                    .insert_object("raster", vec![("data", Value::image(image(*side, 2)))])
                    .expect("insert");
                g.run_process("diff", &[("a", vec![oa]), ("b", vec![ob])])
                    .expect("first firing populates the cache");
                bch.iter(|| {
                    black_box(
                        g.run_process("diff", &[("a", vec![oa]), ("b", vec![ob])])
                            .expect("cache hit"),
                    )
                })
            },
        );
    }
    // Lineage queries over a deep chain.
    for depth in [10usize, 100] {
        let mut g = kernel();
        g.define_process(
            ProcessSpec::new("diff_chain", "diffmap")
                .arg("a", "diffmap")
                .arg("b", "raster")
                .template(Template {
                    assertions: vec![],
                    mappings: vec![Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "img_diff",
                            vec![Expr::proj("a", "data"), Expr::proj("b", "data")],
                        ),
                    }],
                }),
        )
        .expect("process");
        let r0 = g
            .insert_object("raster", vec![("data", Value::image(image(8, 1)))])
            .expect("insert");
        let r1 = g
            .insert_object("raster", vec![("data", Value::image(image(8, 2)))])
            .expect("insert");
        let mut last = g
            .run_process("diff", &[("a", vec![r0]), ("b", vec![r1])])
            .expect("fires")
            .outputs[0];
        for _ in 1..depth {
            last = g
                .run_process("diff_chain", &[("a", vec![last]), ("b", vec![r1])])
                .expect("fires")
                .outputs[0];
        }
        group.bench_with_input(BenchmarkId::new("lineage_tree", depth), &depth, |bch, _| {
            bch.iter(|| black_box(g.lineage(last).expect("tree")))
        });
        group.bench_with_input(BenchmarkId::new("ancestors", depth), &depth, |bch, _| {
            bch.iter(|| black_box(g.ancestors(last).expect("set")))
        });
        // Staleness classification over the same chain: one version
        // comparison per ancestor task (the MVCC fingerprint check).
        group.bench_with_input(BenchmarkId::new("is_stale", depth), &depth, |bch, _| {
            bch.iter(|| black_box(g.is_stale(last)))
        });
        group.bench_with_input(
            BenchmarkId::new("staleness_report", depth),
            &depth,
            |bch, _| bch.iter(|| black_box(g.staleness_report(last).expect("report"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
