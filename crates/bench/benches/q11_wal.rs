//! Experiment Q11 — write-ahead log costs: group commit and replay.
//!
//! Two questions the durability tentpole raises, quantified:
//!
//! * `wal_append_fsync_1` vs `wal_append_fsync_64` — the price of the
//!   strict default (fsync every committed event) against batched
//!   group commit (one sync per 64 events). Each iteration commits 64
//!   object inserts on a durable kernel; the gap between the rows is
//!   the pure fsync amplification a scientist pays for zero-loss
//!   acknowledgement.
//! * `wal_replay_10k` — crash-recovery time: reopening a directory
//!   whose log holds 10 000 committed insert events, i.e. a full
//!   decode → verify → reapply pass with no snapshot to shortcut it.
//!
//! CI condenses the rows into `BENCH_q11_wal.json` via
//! `scripts/bench_summary.sh q11_wal wal_`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use gaea_adt::{TypeTag, Value};
use gaea_core::kernel::{ClassSpec, DurabilityOptions, Gaea};
use std::hint::black_box;
use std::path::{Path, PathBuf};

/// Events committed per append iteration.
const EVENTS: u32 = 64;
/// Log length for the replay row.
const REPLAY_EVENTS: u32 = 10_000;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gaea-q11-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable kernel with the single `obs {v}` class, snapshots off so
/// every event stays in the log.
fn durable_kernel(dir: &Path, fsync_every: u64) -> Gaea {
    let mut g = Gaea::open_with(
        dir,
        DurabilityOptions {
            fsync_every,
            snapshot_every: 0,
        },
    )
    .expect("open durable kernel");
    if g.catalog().class_by_name("obs").is_err() {
        g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4).no_extents())
            .expect("obs class");
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q11_wal");
    gaea_bench::configure(&mut group);

    // Group-commit sweep: the same 64-event commit burst under the
    // strict and the batched sync policy. The log grows across
    // iterations — appends are O(1), replay is not measured here.
    for fsync_every in [1u64, 64] {
        let dir = fresh_dir(&format!("append-{fsync_every}"));
        let mut g = durable_kernel(&dir, fsync_every);
        let mut v = 0i32;
        group.bench_with_input(
            BenchmarkId::new(format!("wal_append_fsync_{fsync_every}"), EVENTS),
            &EVENTS,
            |b, n| {
                b.iter(|| {
                    for _ in 0..*n {
                        v = v.wrapping_add(1);
                        g.insert_object("obs", vec![("v", Value::Int4(v))])
                            .expect("durable insert");
                    }
                })
            },
        );
        drop(g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Replay: reopen a 10k-event log from scratch each iteration.
    let dir = fresh_dir("replay");
    {
        // Build the log once; batched sync keeps setup quick.
        let mut g = durable_kernel(&dir, 1024);
        for v in 0..REPLAY_EVENTS {
            g.insert_object("obs", vec![("v", Value::Int4(v as i32))])
                .expect("seed insert");
        }
    }
    group.bench_with_input(
        BenchmarkId::new("wal_replay_10k", REPLAY_EVENTS),
        &REPLAY_EVENTS,
        |b, _| {
            b.iter(|| {
                let g = durable_kernel(&dir, 1024);
                let replayed = g.recovery_stats().expect("recovery stats").events_replayed;
                assert!(replayed >= u64::from(REPLAY_EVENTS));
                black_box(g)
            })
        },
    );
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    // GAEA_METRICS_JSON: dump the process-wide metrics snapshot so
    // scripts/bench_summary.sh can merge the counters behind the
    // latency numbers into the published artifact.
    if let Some(path) = gaea_obs::dump_snapshot_to_env_path() {
        println!("metrics snapshot written to {path}");
    }
}
