//! Experiment Q11 — write-ahead log costs: group commit, record codec
//! and replay.
//!
//! Three questions the durability tentpole raises, quantified:
//!
//! * `wal_append_fsync_1` vs `wal_append_fsync_64` — the price of the
//!   strict default (fsync every committed event) against batched
//!   group commit (one sync per 64 events). Each iteration commits 64
//!   object inserts on a durable kernel; the gap between the rows is
//!   the pure fsync amplification a scientist pays for zero-loss
//!   acknowledgement.
//! * `wal_append_fsync_64` vs `wal_append_json_fsync_64` — the encode
//!   side of the binary record codec against the legacy JSON
//!   envelopes, with the sync cost batched out of the way.
//! * `wal_replay_10k` vs `wal_replay_10k_json` — crash-recovery time:
//!   reopening a directory whose log holds 10 000 committed insert
//!   events, i.e. a full decode → verify → reapply pass with no
//!   snapshot to shortcut it, under each codec.
//!
//! CI condenses the rows into `BENCH_q11_wal.json` via
//! `scripts/bench_summary.sh q11_wal wal_` — including the
//! binary-over-JSON speedup ratios under `deltas`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use gaea_adt::{TypeTag, Value};
use gaea_core::kernel::{ClassSpec, DurabilityOptions, Gaea, WalCodec};
use std::hint::black_box;
use std::path::{Path, PathBuf};

/// Events committed per append iteration.
const EVENTS: u32 = 64;
/// Log length for the replay rows.
const REPLAY_EVENTS: u32 = 10_000;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gaea-q11-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable kernel with the single `obs {v}` class, snapshots off so
/// every event stays in the log.
fn durable_kernel(dir: &Path, fsync_every: u64, codec: WalCodec) -> Gaea {
    let mut g = Gaea::open_with(
        dir,
        DurabilityOptions {
            fsync_every,
            snapshot_every: 0,
            codec,
            ..Default::default()
        },
    )
    .expect("open durable kernel");
    if g.catalog().class_by_name("obs").is_err() {
        g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4).no_extents())
            .expect("obs class");
    }
    g
}

fn codec_suffix(codec: WalCodec) -> &'static str {
    match codec {
        WalCodec::Binary => "",
        WalCodec::Json => "_json",
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q11_wal");
    gaea_bench::configure(&mut group);

    // Group-commit sweep: the same 64-event commit burst under the
    // strict and the batched sync policy (binary codec), plus the
    // batched policy under the legacy JSON codec for the encode delta.
    // The log grows across iterations — appends are O(1), replay is
    // not measured here.
    for (fsync_every, codec) in [
        (1u64, WalCodec::Binary),
        (64, WalCodec::Binary),
        (64, WalCodec::Json),
    ] {
        let suffix = codec_suffix(codec);
        let dir = fresh_dir(&format!("append{suffix}-{fsync_every}"));
        let mut g = durable_kernel(&dir, fsync_every, codec);
        let mut v = 0i32;
        group.bench_with_input(
            BenchmarkId::new(format!("wal_append{suffix}_fsync_{fsync_every}"), EVENTS),
            &EVENTS,
            |b, n| {
                b.iter(|| {
                    for _ in 0..*n {
                        v = v.wrapping_add(1);
                        g.insert_object("obs", vec![("v", Value::Int4(v))])
                            .expect("durable insert");
                    }
                })
            },
        );
        drop(g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Replay: reopen a 10k-event log from scratch each iteration, once
    // per codec. Same logical events, different bytes on disk.
    for codec in [WalCodec::Binary, WalCodec::Json] {
        let suffix = codec_suffix(codec);
        let dir = fresh_dir(&format!("replay{suffix}"));
        {
            // Build the log once; batched sync keeps setup quick.
            let mut g = durable_kernel(&dir, 1024, codec);
            for v in 0..REPLAY_EVENTS {
                g.insert_object("obs", vec![("v", Value::Int4(v as i32))])
                    .expect("seed insert");
            }
        }
        group.bench_with_input(
            BenchmarkId::new(format!("wal_replay_10k{suffix}"), REPLAY_EVENTS),
            &REPLAY_EVENTS,
            |b, _| {
                b.iter(|| {
                    let g = durable_kernel(&dir, 1024, codec);
                    let replayed = g.recovery_stats().expect("recovery stats").events_replayed;
                    assert!(replayed >= u64::from(REPLAY_EVENTS));
                    black_box(g)
                })
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    // GAEA_METRICS_JSON: dump the process-wide metrics snapshot so
    // scripts/bench_summary.sh can merge the counters behind the
    // latency numbers into the published artifact.
    if let Some(path) = gaea_obs::dump_snapshot_to_env_path() {
        println!("metrics snapshot written to {path}");
    }
}
