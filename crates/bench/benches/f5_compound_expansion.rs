//! Experiment F5 — Figure 5's compound land-change-detection process.
//!
//! Measures the compound firing end to end (expansion + three primitive
//! tasks) against the manually sequenced primitives, isolating the cost of
//! the compound abstraction (§2.1.4: expansion is bookkeeping only, so the
//! difference should be in the noise).

use criterion::{criterion_group, criterion_main, Criterion};
use gaea_adt::AbsTime;
use gaea_bench::{configure, figure2_kernel, jan86, store_scene};
use gaea_core::kernel::Gaea;
use gaea_core::schema::StepSource;
use gaea_core::ObjectId;
use std::hint::black_box;

fn kernel_with_compound() -> Gaea {
    let mut g = figure2_kernel();
    g.define_compound_process(
        "land_change_detection",
        "land_cover_changes",
        &[
            ("tm_t1".into(), "rectified_tm".into(), true, 3),
            ("tm_t2".into(), "rectified_tm".into(), true, 3),
        ],
        &[
            (
                "P20_unsupervised_classification".into(),
                vec![StepSource::OuterArg(0)],
            ),
            (
                "P20_unsupervised_classification".into(),
                vec![StepSource::OuterArg(1)],
            ),
            (
                "P21_change".into(),
                vec![StepSource::StepOutput(0), StepSource::StepOutput(1)],
            ),
        ],
        "Figure 5",
    )
    .expect("compound registers");
    g
}

fn two_epochs(g: &mut Gaea, side: u32) -> (Vec<ObjectId>, Vec<ObjectId>) {
    let t1 = jan86();
    let t2 = AbsTime(t1.0 + 5 * 365 * 86_400);
    let b1 = store_scene(g, "rectified_tm", 31, side, t1);
    let b2 = store_scene(g, "rectified_tm", 32, side, t2);
    (b1, b2)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f5_compound_expansion");
    configure(&mut group);
    group.bench_function("compound_fire_32x32", |b| {
        b.iter_batched(
            || {
                let mut g = kernel_with_compound();
                let (b1, b2) = two_epochs(&mut g, 32);
                (g, b1, b2)
            },
            |(mut g, b1, b2)| {
                black_box(
                    g.run_process("land_change_detection", &[("tm_t1", b1), ("tm_t2", b2)])
                        .expect("fires"),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("manual_primitives_32x32", |b| {
        b.iter_batched(
            || {
                let mut g = kernel_with_compound();
                let (b1, b2) = two_epochs(&mut g, 32);
                (g, b1, b2)
            },
            |(mut g, b1, b2)| {
                let lc1 = g
                    .run_process("P20_unsupervised_classification", &[("bands", b1)])
                    .expect("fires");
                let lc2 = g
                    .run_process("P20_unsupervised_classification", &[("bands", b2)])
                    .expect("fires");
                black_box(
                    g.run_process(
                        "P21_change",
                        &[("earlier", lc1.outputs), ("later", lc2.outputs)],
                    )
                    .expect("fires"),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    // Pure definition/validation cost of the compound (no execution).
    group.bench_function("compound_definition", |b| {
        b.iter_batched(
            figure2_kernel,
            |mut g| {
                black_box(
                    g.define_compound_process(
                        "lcd_bench",
                        "land_cover_changes",
                        &[
                            ("tm_t1".into(), "rectified_tm".into(), true, 3),
                            ("tm_t2".into(), "rectified_tm".into(), true, 3),
                        ],
                        &[
                            (
                                "P20_unsupervised_classification".into(),
                                vec![StepSource::OuterArg(0)],
                            ),
                            (
                                "P20_unsupervised_classification".into(),
                                vec![StepSource::OuterArg(1)],
                            ),
                            (
                                "P21_change".into(),
                                vec![StepSource::StepOutput(0), StepSource::StepOutput(1)],
                            ),
                        ],
                        "bench",
                    )
                    .expect("registers"),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
