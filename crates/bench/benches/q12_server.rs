//! Experiment Q12 — multi-session server: reader latency under
//! concurrency, with and without a writer continuously committing.
//!
//! The tentpole claim quantified: snapshot-pinned reads run off the
//! kernel mutex, so K concurrent readers should see flat latency
//! whether the commit path is idle or saturated by a writer.
//!
//! Rows (all via an in-process server over loopback TCP):
//!
//! * `server_roundtrip_ping` — one session's request/response floor
//!   (frame codec + syscalls, no kernel work), a criterion row.
//! * `server_read_k{1,4,16,64}_idle` — K reader sessions, no writer:
//!   per-read p50/p99 and aggregate throughput.
//! * `server_read_k{1,4,16,64}_busy` — the same with one writer
//!   session committing inserts continuously. The acceptance gate
//!   compares `k16_busy` p99 against `k16_idle` p99 (≤ 3× — see
//!   `scripts/server_smoke.sh`).
//!
//! The K-sweep rows carry real percentiles, which criterion's
//! iteration model cannot express, so this bench appends them to
//! `GAEA_BENCH_JSON` itself in the same JSONL shape the vendored
//! criterion uses (`median_ns` = p50 so downstream tooling reads every
//! row uniformly); `scripts/bench_summary.sh q12_server server_`
//! condenses the trail into `BENCH_q12_server.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use gaea_adt::{TypeTag, Value};
use gaea_core::kernel::{ClassSpec, Gaea};
use gaea_server::{Client, Server, ServerConfig};
use gaea_workload::driver::{drive, DriveReport, DriveSpec};
use std::io::Write as _;

const SWEEP: [usize; 4] = [1, 4, 16, 64];
const READS_PER_SESSION: usize = 40;

/// A kernel with the read target (`obs {v}`, 32 fixed rows) and the
/// writer's scratch class (`wlog {v}`) — separate, so the busy writer
/// saturates the commit path without changing what the readers scan.
fn seeded() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4).no_extents())
        .expect("obs class");
    g.define_class(
        ClassSpec::base("wlog")
            .attr("v", TypeTag::Int4)
            .no_extents(),
    )
    .expect("wlog class");
    for v in 0..32 {
        g.insert_object("obs", vec![("v", Value::Int4(v))])
            .expect("seed insert");
    }
    g
}

/// Start an in-process server sized for the sweep; returns its address
/// and the thread driving it.
fn start_server() -> (String, std::thread::JoinHandle<gaea_server::ServerReport>) {
    let server = Server::bind(
        seeded(),
        "127.0.0.1:0",
        ServerConfig {
            max_sessions: 80,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let thread = std::thread::spawn(move || server.run());
    (addr, thread)
}

/// Append one sweep row to the same JSONL trail the vendored criterion
/// writes (no-op when GAEA_BENCH_JSON is unset).
fn emit_row(id: &str, report: &DriveReport) {
    let Ok(path) = std::env::var("GAEA_BENCH_JSON") else {
        return;
    };
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    let _ = writeln!(
        f,
        "{{\"group\":\"q12_server\",\"id\":\"{id}\",\
         \"median_ns\":{p50:.1},\"mean_ns\":{p50:.1},\"samples\":{n},\
         \"p50_ns\":{p50},\"p99_ns\":{p99},\"reads_per_sec\":{tput:.1},\
         \"errors\":{errs},\"writer_commits\":{writes}}}",
        p50 = report.p50.as_nanos(),
        p99 = report.p99.as_nanos(),
        n = report.reads,
        tput = report.throughput(),
        errs = report.errors,
        writes = report.writes,
    );
}

fn bench(c: &mut Criterion) {
    let (addr, server_thread) = start_server();

    // Criterion row: the protocol floor, one session pinging.
    {
        let mut group = c.benchmark_group("q12_server");
        gaea_bench::configure(&mut group);
        let mut client = Client::connect(&addr, "bench-ping").expect("connect");
        group.bench_function("server_roundtrip_ping", |b| {
            b.iter(|| client.ping().expect("ping"))
        });
        group.finish();
    }

    // The K-sweep: idle writer, then busy writer, for each K.
    for k in SWEEP {
        for (mode, writer) in [("idle", false), ("busy", true)] {
            let report = drive(&DriveSpec {
                addr: addr.clone(),
                sessions: k,
                reads_per_session: READS_PER_SESSION,
                query: "RETRIEVE * FROM obs".into(),
                writer,
                writer_class: "wlog".into(),
            });
            assert_eq!(
                report.errors, 0,
                "sweep k={k} {mode}: driver errors: {report:?}"
            );
            emit_row(&format!("server_read_k{k}_{mode}"), &report);
            eprintln!(
                "q12_server k={k:>2} {mode}: p50={:?} p99={:?} ({:.0} reads/s, {} writer commits)",
                report.p50,
                report.p99,
                report.throughput(),
                report.writes,
            );
        }
    }

    let shutdown = Client::connect(&addr, "bench-shutdown").expect("connect for shutdown");
    shutdown.shutdown_server().expect("shutdown");
    let report = server_thread.join().expect("server thread");
    assert!(report.wal_flush.is_ok());
    assert_eq!(report.stats.protocol_errors, 0);
}

criterion_group!(benches, bench);
criterion_main!(benches);
