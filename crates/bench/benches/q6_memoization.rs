//! Experiment Q6 — precomputed vs re-derived retrieval (task memoization).
//!
//! §2.1.5's point of recording tasks: a previously derived object answers
//! later queries by retrieval. Measures the first (deriving) query against
//! subsequent (retrieving) queries, the `DerivedCache` memo on repeated
//! identical firings against from-scratch re-derivation, and the
//! amortization over k queries. Expected shape: retrieval and the memo
//! beat re-derivation by orders of magnitude after the first use; the
//! crossover is immediate (reuse ≥ 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_bench::{africa, configure, figure2_kernel, jan86, store_scene};
use gaea_core::{Query, QueryMethod, QueryStrategy};
use std::hint::black_box;

fn query() -> Query {
    Query::class("land_cover")
        .over(africa())
        .at(jan86())
        .with_strategy(QueryStrategy::PreferDerivation)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q6_memoization");
    configure(&mut group);
    for side in [32u32, 64] {
        // Cold: derivation fires P20.
        group.bench_with_input(
            BenchmarkId::new("first_query_derives", side * side),
            &side,
            |b, side| {
                b.iter_batched(
                    || {
                        let mut g = figure2_kernel();
                        store_scene(&mut g, "rectified_tm", 6, *side, jan86());
                        g
                    },
                    |mut g| {
                        let out = g.query(&query()).expect("derives");
                        debug_assert_eq!(out.method, QueryMethod::Derived);
                        black_box(out)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        // Warm: the derived object is stored; the same query retrieves.
        group.bench_with_input(
            BenchmarkId::new("repeat_query_retrieves", side * side),
            &side,
            |b, side| {
                let mut g = figure2_kernel();
                store_scene(&mut g, "rectified_tm", 6, *side, jan86());
                g.query(&query()).expect("derives once");
                b.iter(|| {
                    let out = g.query(&query()).expect("hits");
                    debug_assert_eq!(out.method, QueryMethod::Retrieved);
                    black_box(out)
                })
            },
        );
    }
    // DerivedCache: repeated identical firings answered from the memo vs
    // executed from scratch. The memoized rerun skips binding validation,
    // input loading, and template evaluation entirely.
    for side in [32u32, 64] {
        group.bench_with_input(
            BenchmarkId::new("rerun_process_memoized", side * side),
            &side,
            |b, side| {
                let mut g = figure2_kernel();
                g.enable_memoization(true);
                let bands = store_scene(&mut g, "rectified_tm", 6, *side, jan86());
                g.run_process(
                    "P20_unsupervised_classification",
                    &[("bands", bands.clone())],
                )
                .expect("first derivation populates the cache");
                b.iter(|| {
                    black_box(
                        g.run_process(
                            "P20_unsupervised_classification",
                            &[("bands", bands.clone())],
                        )
                        .expect("cache hit"),
                    )
                });
                debug_assert!(g.memoization_stats().hits > 0);
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rerun_process_unmemoized", side * side),
            &side,
            |b, side| {
                b.iter_batched(
                    || {
                        let mut g = figure2_kernel();
                        let bands = store_scene(&mut g, "rectified_tm", 6, *side, jan86());
                        g.run_process(
                            "P20_unsupervised_classification",
                            &[("bands", bands.clone())],
                        )
                        .expect("first derivation");
                        (g, bands)
                    },
                    |(mut g, bands)| {
                        black_box(
                            g.run_process("P20_unsupervised_classification", &[("bands", bands)])
                                .expect("re-derives"),
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    // Amortization series: total cost of k queries (1 derive + k-1 hits).
    for k in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("k_queries_total_32x32", k), &k, |b, k| {
            b.iter_batched(
                || {
                    let mut g = figure2_kernel();
                    store_scene(&mut g, "rectified_tm", 6, 32, jan86());
                    g
                },
                |mut g| {
                    for _ in 0..*k {
                        black_box(g.query(&query()).expect("ok"));
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
