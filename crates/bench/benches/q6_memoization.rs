//! Experiment Q6 — precomputed vs re-derived retrieval (task memoization).
//!
//! §2.1.5's point of recording tasks: a previously derived object answers
//! later queries by retrieval. Measures the first (deriving) query against
//! subsequent (retrieving) queries, the `DerivedCache` memo on repeated
//! identical firings against from-scratch re-derivation, and the
//! amortization over k queries. Expected shape: retrieval and the memo
//! beat re-derivation by orders of magnitude after the first use; the
//! crossover is immediate (reuse ≥ 1).
//!
//! The `invalidation_*` scenarios cover the write side of memoization:
//! `update_object` cost as recorded history grows (MVCC version counters
//! make it O(1) in the number of recorded tasks — the curve must stay
//! flat from 4 to 256 tasks), the cached-hit cost after a long history,
//! and the full invalidate-then-re-derive cycle. CI condenses these three
//! into `BENCH_q6_invalidation.json` (see `scripts/bench_summary.sh`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use gaea_adt::{AbsTime, Image, PixType, Value};
use gaea_bench::{africa, configure, figure2_kernel, jan86, store_scene};
use gaea_core::kernel::Gaea;
use gaea_core::{ObjectId, Query, QueryMethod, QueryStrategy};
use std::hint::black_box;

/// A kernel with `tasks` recorded P20 derivations (one per synthetic
/// scene, each at its own instant) and a warm memo. Returns the first
/// scene's bands: mutating one of them invalidates exactly one entry, so
/// the dependent-entry count stays constant while history length varies.
fn kernel_with_history(tasks: usize) -> (Gaea, Vec<ObjectId>) {
    let mut g = figure2_kernel();
    g.enable_memoization(true);
    let mut first_bands = Vec::new();
    for i in 0..tasks {
        let t = AbsTime::from_ymd(1900 + i as i64, 1, 15).expect("valid date");
        let bands = store_scene(&mut g, "rectified_tm", 6 + i as u64, 8, t);
        g.run_process(
            "P20_unsupervised_classification",
            &[("bands", bands.clone())],
        )
        .expect("history derivation");
        if i == 0 {
            first_bands = bands;
        }
    }
    (g, first_bands)
}

fn query() -> Query {
    Query::class("land_cover")
        .over(africa())
        .at(jan86())
        .with_strategy(QueryStrategy::PreferDerivation)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q6_memoization");
    configure(&mut group);
    for side in [32u32, 64] {
        // Cold: derivation fires P20.
        group.bench_with_input(
            BenchmarkId::new("first_query_derives", side * side),
            &side,
            |b, side| {
                b.iter_batched(
                    || {
                        let mut g = figure2_kernel();
                        store_scene(&mut g, "rectified_tm", 6, *side, jan86());
                        g
                    },
                    |mut g| {
                        let out = g.query(&query()).expect("derives");
                        debug_assert_eq!(out.method, QueryMethod::Derived);
                        black_box(out)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        // Warm: the derived object is stored; the same query retrieves.
        group.bench_with_input(
            BenchmarkId::new("repeat_query_retrieves", side * side),
            &side,
            |b, side| {
                let mut g = figure2_kernel();
                store_scene(&mut g, "rectified_tm", 6, *side, jan86());
                g.query(&query()).expect("derives once");
                b.iter(|| {
                    let out = g.query(&query()).expect("hits");
                    debug_assert_eq!(out.method, QueryMethod::Retrieved);
                    black_box(out)
                })
            },
        );
    }
    // DerivedCache: repeated identical firings answered from the memo vs
    // executed from scratch. The memoized rerun skips binding validation,
    // input loading, and template evaluation entirely.
    for side in [32u32, 64] {
        group.bench_with_input(
            BenchmarkId::new("rerun_process_memoized", side * side),
            &side,
            |b, side| {
                let mut g = figure2_kernel();
                g.enable_memoization(true);
                let bands = store_scene(&mut g, "rectified_tm", 6, *side, jan86());
                g.run_process(
                    "P20_unsupervised_classification",
                    &[("bands", bands.clone())],
                )
                .expect("first derivation populates the cache");
                b.iter(|| {
                    black_box(
                        g.run_process(
                            "P20_unsupervised_classification",
                            &[("bands", bands.clone())],
                        )
                        .expect("cache hit"),
                    )
                });
                debug_assert!(g.memoization_stats().hits > 0);
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rerun_process_unmemoized", side * side),
            &side,
            |b, side| {
                b.iter_batched(
                    || {
                        let mut g = figure2_kernel();
                        let bands = store_scene(&mut g, "rectified_tm", 6, *side, jan86());
                        g.run_process(
                            "P20_unsupervised_classification",
                            &[("bands", bands.clone())],
                        )
                        .expect("first derivation");
                        (g, bands)
                    },
                    |(mut g, bands)| {
                        black_box(
                            g.run_process("P20_unsupervised_classification", &[("bands", bands)])
                                .expect("re-derives"),
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    // Invalidation scaling: update_object cost against recorded-history
    // length. One task depends on the touched band at every size, so a
    // flat curve demonstrates invalidation is O(dependents), not
    // O(recorded tasks) — the former implementation rebuilt an adjacency
    // over the entire task history on every update.
    for tasks in [4usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("invalidation_update_object", tasks),
            &tasks,
            |b, tasks| {
                let (mut g, bands) = kernel_with_history(*tasks);
                let patch = Value::image(Image::filled(8, 8, PixType::Float8, 1.5));
                b.iter(|| {
                    g.update_object(bands[0], vec![("data", patch.clone())])
                        .expect("update");
                });
            },
        );
    }
    // Cached hit with a long history behind it (the memo must not slow
    // down as tasks accumulate).
    group.bench_function("invalidation_cached_rerun", |b| {
        let (mut g, bands) = kernel_with_history(64);
        b.iter(|| {
            black_box(
                g.run_process(
                    "P20_unsupervised_classification",
                    &[("bands", bands.clone())],
                )
                .expect("cache hit"),
            )
        });
        debug_assert!(g.memoization_stats().hits > 0);
    });
    // The full cycle: mutate an input (eviction), then re-fire (miss +
    // re-derivation + re-memoization) — the price of freshness.
    group.bench_function("invalidation_rederive", |b| {
        let (mut g, bands) = kernel_with_history(64);
        let mut fill = 2.0;
        b.iter(|| {
            fill += 1.0;
            let patch = Value::image(Image::filled(8, 8, PixType::Float8, fill));
            g.update_object(bands[0], vec![("data", patch)])
                .expect("update");
            black_box(
                g.run_process(
                    "P20_unsupervised_classification",
                    &[("bands", bands.clone())],
                )
                .expect("re-derives"),
            )
        });
    });

    // Amortization series: total cost of k queries (1 derive + k-1 hits).
    for k in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("k_queries_total_32x32", k), &k, |b, k| {
            b.iter_batched(
                || {
                    let mut g = figure2_kernel();
                    store_scene(&mut g, "rectified_tm", 6, 32, jan86());
                    g
                },
                |mut g| {
                    for _ in 0..*k {
                        black_box(g.query(&query()).expect("ok"));
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    // GAEA_METRICS_JSON: dump the process-wide metrics snapshot so
    // scripts/bench_summary.sh can merge the counters behind the
    // latency numbers into the published artifact.
    if let Some(path) = gaea_obs::dump_snapshot_to_env_path() {
        println!("metrics snapshot written to {path}");
    }
}
