//! Experiment Q8p — parallel derivation scheduling (`gaea-sched`).
//!
//! The acceptance workload for the dependency-DAG scheduler: a
//! 64-firing fan-out plan (64 independent P20 classifications, all
//! staled by mutating one band of each scene) re-derived through
//! `Gaea::refresh_all` at 1 / 2 / 4 / 8 workers. Every firing is
//! independent, so the whole impact set levels into a single wave and
//! the speedup curve measures the prepare/commit split directly: wave
//! prepares (template evaluation — the k-means classification) fan out
//! across the worker pool while the store/catalog commits serialize.
//!
//! Expected shape on a multi-core host: ≥2× at 4 workers over the
//! 1-worker schedule (the 1-worker mode is the plain serial loop — no
//! threads, no locks). On a single-core container the workers time-slice
//! one CPU and the curve stays flat; the `workers_1` row is then the
//! honest baseline. CI condenses the rows into `BENCH_q8_parallel.json`
//! via `scripts/bench_summary.sh` and the `GAEA_BENCH_JSON` hook.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::Value;
use gaea_bench::{configure, figure2_kernel, jan86, store_scene};
use gaea_core::kernel::Gaea;
use gaea_core::ObjectId;
use gaea_workload::{SceneSpec, SyntheticScene};
use std::hint::black_box;

/// Independent firings in the fan-out plan.
const FIRINGS: usize = 64;
/// Scene side length (each firing classifies 3 bands of this size).
const SIDE: u32 = 24;

/// A kernel with 64 recorded P20 classifications, every one of them
/// staled by mutating the first band of its scene. `refresh_all` on
/// this kernel is exactly the 64-firing fan-out wave.
fn staled_kernel() -> (Gaea, Vec<ObjectId>) {
    let mut g = figure2_kernel();
    let mut first_bands = Vec::with_capacity(FIRINGS);
    for i in 0..FIRINGS {
        let bands = store_scene(&mut g, "rectified_tm", 1 + i as u64, SIDE, jan86());
        g.run_process(
            "P20_unsupervised_classification",
            &[("bands", bands.clone())],
        )
        .expect("fan-out derivation");
        first_bands.push(bands[0]);
    }
    // Mutate one band per scene with fresh synthetic data: all 64
    // derivations drift stale at once.
    for (i, band) in first_bands.iter().enumerate() {
        let scene = SyntheticScene::generate(SceneSpec::small(1_000 + i as u64).sized(SIDE, SIDE));
        g.update_object(*band, vec![("data", Value::image(scene.bands[0].clone()))])
            .expect("stale the derivation");
    }
    (g, first_bands)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q8_parallel");
    configure(&mut group);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("refresh_all_fanout64_workers", workers),
            &workers,
            |b, workers| {
                b.iter_batched(
                    || {
                        let (mut g, _) = staled_kernel();
                        g.set_workers(*workers);
                        g
                    },
                    |mut g| {
                        let report = g.refresh_all().expect("refresh schedules cleanly");
                        debug_assert_eq!(report.refreshed(), FIRINGS);
                        debug_assert_eq!(report.waves, 1);
                        black_box(report)
                    },
                    criterion::BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
