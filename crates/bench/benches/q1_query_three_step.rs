//! Experiment Q1 — the §2.1.5 three-step query mechanism.
//!
//! Measures the latency of each answer path on the same schema and
//! comparable data: step 1 retrieval (stored hit), step 2 interpolation
//! (bracketed instant), step 3 derivation (P20 firing). Expected shape:
//! retrieval ≪ interpolation ≪ derivation, the gap between 2 and 3
//! widening with raster size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::AbsTime;
use gaea_bench::{africa, configure, figure2_kernel, jan86, store_scene};
use gaea_core::{Query, QueryMethod, QueryStrategy};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q1_query_three_step");
    configure(&mut group);
    for side in [32u32, 64] {
        // Step 1: retrieval of a stored band.
        group.bench_with_input(
            BenchmarkId::new("step1_retrieve", side * side),
            &side,
            |b, side| {
                let mut g = figure2_kernel();
                store_scene(&mut g, "rectified_tm", 1, *side, jan86());
                let q = Query::class("rectified_tm").over(africa()).at(jan86());
                b.iter(|| {
                    let out = g.query(&q).expect("hit");
                    debug_assert_eq!(out.method, QueryMethod::Retrieved);
                    black_box(out)
                })
            },
        );
        // Step 2: interpolation between two epochs (fresh kernel per
        // iteration: interpolation materializes its output).
        group.bench_with_input(
            BenchmarkId::new("step2_interpolate", side * side),
            &side,
            |b, side| {
                b.iter_batched(
                    || {
                        let mut g = figure2_kernel();
                        let t1 = jan86();
                        let t2 = AbsTime(t1.0 + 60 * 86_400);
                        store_scene(&mut g, "rectified_tm", 2, *side, t1);
                        store_scene(&mut g, "rectified_tm", 3, *side, t2);
                        let q = Query::class("rectified_tm")
                            .over(africa())
                            .at(AbsTime(t1.0 + 30 * 86_400));
                        (g, q)
                    },
                    |(mut g, q)| {
                        let out = g.query(&q).expect("interpolates");
                        debug_assert_eq!(out.method, QueryMethod::Interpolated);
                        black_box(out)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        // Step 3: derivation through P20.
        group.bench_with_input(
            BenchmarkId::new("step3_derive", side * side),
            &side,
            |b, side| {
                b.iter_batched(
                    || {
                        let mut g = figure2_kernel();
                        store_scene(&mut g, "rectified_tm", 4, *side, jan86());
                        let q = Query::class("land_cover")
                            .over(africa())
                            .at(jan86())
                            .with_strategy(QueryStrategy::PreferDerivation);
                        (g, q)
                    },
                    |(mut g, q)| {
                        let out = g.query(&q).expect("derives");
                        debug_assert_eq!(out.method, QueryMethod::Derived);
                        black_box(out)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    // Retrieval scaling with stored-object count (the hit-ratio axis).
    for n in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::new("retrieval_vs_population", n),
            &n,
            |b, n| {
                let mut g = figure2_kernel();
                for i in 0..*n {
                    let t = AbsTime(jan86().0 + i as i64 * 86_400);
                    store_scene(&mut g, "rectified_tm", i as u64, 8, t);
                }
                let q = Query::class("rectified_tm").over(africa()).at(jan86());
                b.iter(|| black_box(g.query(&q).expect("hit")))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
