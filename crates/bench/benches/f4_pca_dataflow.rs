//! Experiment F4 — Figure 4's PCA compound-operator network.
//!
//! Compares the dataflow-network execution of `pca` against the fused
//! library implementation (network overhead should be a small constant),
//! sweeps band count and raster size, and measures SPCA alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::{Image, OperatorRegistry, Value};
use gaea_bench::configure;
use gaea_raster::{pca, register_raster_ops, spca};
use gaea_workload::{SceneSpec, SyntheticScene};
use std::hint::black_box;

fn registry() -> OperatorRegistry {
    let mut r = OperatorRegistry::with_builtins();
    register_raster_ops(&mut r).expect("ok");
    r
}

fn scene_value(bands: usize, side: u32, seed: u64) -> (SyntheticScene, Value) {
    let scene =
        SyntheticScene::generate(SceneSpec::small(seed).sized(side, side).with_bands(bands));
    let v = Value::Set(scene.bands.iter().cloned().map(Value::image).collect());
    (scene, v)
}

fn bench(c: &mut Criterion) {
    let r = registry();
    let mut group = c.benchmark_group("f4_pca_dataflow");
    configure(&mut group);
    // Size sweep at 3 bands: network vs fused.
    for side in [16u32, 32, 64] {
        let (scene, input) = scene_value(3, side, 5);
        group.bench_with_input(
            BenchmarkId::new("network_pca_3band", side * side),
            &input,
            |b, input| {
                b.iter(|| black_box(r.invoke("pca", std::slice::from_ref(input)).expect("ok")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fused_pca_3band", side * side),
            &scene,
            |b, scene| {
                b.iter(|| {
                    let refs: Vec<&Image> = scene.bands.iter().collect();
                    black_box(pca(&refs).expect("ok"))
                })
            },
        );
    }
    // Band sweep at 32x32.
    for bands in [2usize, 4, 6] {
        let (scene, input) = scene_value(bands, 32, 11);
        group.bench_with_input(
            BenchmarkId::new("network_pca_32x32", bands),
            &input,
            |b, input| {
                b.iter(|| black_box(r.invoke("pca", std::slice::from_ref(input)).expect("ok")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fused_spca_32x32", bands),
            &scene,
            |b, scene| {
                b.iter(|| {
                    let refs: Vec<&Image> = scene.bands.iter().collect();
                    black_box(spca(&refs).expect("ok"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
