//! Experiment Q4 — Gaea vs the file-based baseline (§4.1 vs §4.2).
//!
//! The paper's architectural argument, quantified: provenance lookup in
//! Gaea is a task-record query, in the baseline a transcript scan; full
//! lineage is a tree walk vs repeated scans; re-derivation in Gaea is
//! task-grained while the baseline replays the whole transcript. Expected
//! shape: the baseline's provenance costs grow linearly with history
//! length while Gaea's stay flat-ish; replay is strictly coarser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::{Image, TypeTag, Value};
use gaea_baseline::FileGis;
use gaea_bench::configure;
use gaea_core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea_core::template::{Expr, Mapping, Template};
use gaea_core::ObjectId;
use std::hint::black_box;

fn raster(seed: u64) -> Image {
    let data: Vec<f64> = (0..64)
        .map(|i| ((i as u64 * 31 + seed * 17) % 251) as f64)
        .collect();
    Image::from_f64(8, 8, data).expect("sized")
}

/// Build a history of `n` chained diff derivations in the baseline.
fn baseline_history(n: usize, tag: &str) -> FileGis {
    let dir = std::env::temp_dir().join(format!("gaea-q4-{tag}-{n}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let gis = FileGis::open(&dir).expect("open");
    gis.put_raster("r0", &raster(0)).expect("put");
    gis.put_raster("r1", &raster(1)).expect("put");
    for i in 0..n {
        let out = format!("d{i}");
        let (a, b) = if i == 0 {
            ("r0".to_string(), "r1".to_string())
        } else {
            (format!("d{}", i - 1), "r1".to_string())
        };
        gis.run("diff", &[&a, &b], &out).expect("run");
    }
    gis
}

/// The same history in Gaea: n chained diff tasks.
fn gaea_history(n: usize) -> (Gaea, ObjectId) {
    let mut g = Gaea::in_memory().with_user("q4");
    g.define_class(
        ClassSpec::base("raster")
            .attr("data", TypeTag::Image)
            .no_extents(),
    )
    .expect("class");
    g.define_class(
        ClassSpec::derived("diffmap")
            .attr("data", TypeTag::Image)
            .no_extents(),
    )
    .expect("class");
    for (name, first_class) in [("diff_base", "raster"), ("diff_chain", "diffmap")] {
        g.define_process(
            ProcessSpec::new(name, "diffmap")
                .arg("a", first_class)
                .arg("b", "raster")
                .template(Template {
                    assertions: vec![],
                    mappings: vec![Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "img_diff",
                            vec![Expr::proj("a", "data"), Expr::proj("b", "data")],
                        ),
                    }],
                }),
        )
        .expect("process");
    }
    let r0 = g
        .insert_object("raster", vec![("data", Value::image(raster(0)))])
        .expect("insert");
    let r1 = g
        .insert_object("raster", vec![("data", Value::image(raster(1)))])
        .expect("insert");
    let mut last = g
        .run_process("diff_base", &[("a", vec![r0]), ("b", vec![r1])])
        .expect("fires")
        .outputs[0];
    for _ in 1..n {
        last = g
            .run_process("diff_chain", &[("a", vec![last]), ("b", vec![r1])])
            .expect("fires")
            .outputs[0];
    }
    (g, last)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q4_gaea_vs_filegis");
    configure(&mut group);
    for n in [10usize, 100, 1000] {
        let gis = baseline_history(n, "prov");
        let newest = format!("d{}", n - 1);
        group.bench_with_input(
            BenchmarkId::new("baseline_provenance_one", n),
            &n,
            |b, _| b.iter(|| black_box(gis.provenance(&newest).expect("scan").expect("hit"))),
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_provenance_tree", n),
            &n,
            |b, _| b.iter(|| black_box(gis.provenance_tree(&newest).expect("scan"))),
        );
        let (g, last) = gaea_history(n);
        group.bench_with_input(BenchmarkId::new("gaea_provenance_one", n), &n, |b, _| {
            b.iter(|| black_box(g.catalog().producing_task(last).expect("recorded")))
        });
        group.bench_with_input(BenchmarkId::new("gaea_provenance_tree", n), &n, |b, _| {
            b.iter(|| black_box(g.lineage(last).expect("tree")))
        });
        // Reproduction: Gaea replays ONE task; the baseline can only
        // replay the whole transcript.
        group.bench_with_input(BenchmarkId::new("gaea_reproduce_one", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let (mut g, last) = gaea_history(n);
                    let task = g.catalog().producing_task(last).expect("recorded").id;
                    g.record_experiment("e", "bench", vec![task]).expect("exp");
                    g
                },
                |g| black_box(g.reproduce_experiment("e").expect("ok")),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("baseline_replay_all", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let src = baseline_history(n, "replay-src");
                    let dst_dir = std::env::temp_dir()
                        .join(format!("gaea-q4-replay-dst-{n}-{}", std::process::id()));
                    let _ = std::fs::remove_dir_all(&dst_dir);
                    (src, FileGis::open(&dst_dir).expect("open"))
                },
                |(src, dst)| black_box(src.replay(&dst).expect("replays")),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
