//! Ablation A4 — supervised vs unsupervised classification cost.
//!
//! Backing the §4.3 interactive-process extension: supervised
//! classification needs a scientist (training signatures) but is a single
//! pass over the pixels, while unsupervised k-means needs nobody but
//! iterates to convergence. The sweep quantifies that trade so the
//! EXPERIMENTS.md discussion of "what the interaction buys" has numbers:
//! the interactive path's *computation* is cheaper; its cost is the
//! scientist, which is exactly why the answers must be recorded for
//! reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_bench::configure;
use gaea_raster::classify::kmeans_classify;
use gaea_raster::composite::composite;
use gaea_raster::supervised::{
    min_distance_classify, parallelepiped_classify, signatures_from_training, training_boxes,
    TrainingSite,
};
use gaea_workload::{SceneSpec, SyntheticScene};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4_classifiers");
    configure(&mut group);
    for side in [32u32, 64, 128] {
        let scene = SyntheticScene::generate(SceneSpec::small(4).sized(side, side));
        let refs: Vec<&gaea_adt::Image> = scene.bands.iter().collect();
        let stack = composite(&refs).expect("co-registered bands");
        let k = scene.spec.classes;
        // Training sites: 16 pixels per true class.
        let mut sites: Vec<TrainingSite> = (0..k).map(|c| TrainingSite::new(c, vec![])).collect();
        for (p, label) in scene.truth.iter().enumerate() {
            if sites[*label as usize].pixels.len() < 16 {
                sites[*label as usize].pixels.push(p);
            }
        }
        let signatures = signatures_from_training(&stack, k, &sites).expect("signatures");
        let (lo, hi) = training_boxes(&stack, k, &sites, 3.0).expect("boxes");

        group.bench_with_input(
            BenchmarkId::new("unsupervised_kmeans", side),
            &side,
            |b, _| b.iter(|| black_box(kmeans_classify(&stack, k, 100, 0x6AEA).expect("kmeans"))),
        );
        group.bench_with_input(
            BenchmarkId::new("supervised_mindist", side),
            &side,
            |b, _| {
                b.iter(|| black_box(min_distance_classify(&stack, &signatures).expect("mindist")))
            },
        );
        group.bench_with_input(BenchmarkId::new("supervised_piped", side), &side, |b, _| {
            b.iter(|| black_box(parallelepiped_classify(&stack, &lo, &hi).expect("piped")))
        });
        // The signature-extraction step itself (the scientist's answer
        // turned into numbers) is trivial next to any classification.
        group.bench_with_input(
            BenchmarkId::new("signature_extraction", side),
            &side,
            |b, _| b.iter(|| black_box(signatures_from_training(&stack, k, &sites).expect("sig"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
