//! Experiment F3 — Figure 3's P20 (unsupervised classification) end to end.
//!
//! Sweeps raster size for the full process firing (template evaluation +
//! k-means + task recording) and isolates the assertion-checking guard
//! cost. Expected shape: cost scales ~linearly in pixel count; the guard
//! (card/common checks) is a negligible constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::Value;
use gaea_bench::{configure, figure2_kernel, jan86, store_scene};
use gaea_raster::{composite, kmeans_classify};
use gaea_workload::{SceneSpec, SyntheticScene};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_p20_classification");
    configure(&mut group);
    for side in [16u32, 32, 64, 96] {
        // Full kernel path: P20 as a recorded task.
        group.bench_with_input(
            BenchmarkId::new("task_p20", side * side),
            &side,
            |b, side| {
                b.iter_batched(
                    || {
                        let mut g = figure2_kernel();
                        let bands = store_scene(&mut g, "rectified_tm", 7, *side, jan86());
                        (g, bands)
                    },
                    |(mut g, bands)| {
                        black_box(
                            g.run_process("P20_unsupervised_classification", &[("bands", bands)])
                                .expect("p20 fires"),
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        // Bare algorithm: the k-means kernel without any metadata
        // machinery (the overhead baseline).
        group.bench_with_input(
            BenchmarkId::new("bare_kmeans", side * side),
            &side,
            |b, side| {
                let scene = SyntheticScene::generate(SceneSpec::small(7).sized(*side, *side));
                let refs: Vec<&gaea_adt::Image> = scene.bands.iter().collect();
                let stack = composite(&refs).expect("co-registered");
                b.iter(|| black_box(kmeans_classify(&stack, 12, 100, 0x6AEA).expect("ok")))
            },
        );
    }
    // Guard cost in isolation: evaluate the P20 assertions on a bound
    // context without running the mappings.
    group.bench_function("assertions_only", |b| {
        use gaea_core::template::{Binding, EvalContext};
        let mut g = figure2_kernel();
        let bands = store_scene(&mut g, "rectified_tm", 3, 32, jan86());
        let def = g
            .catalog()
            .process_by_name("P20_unsupervised_classification")
            .expect("ok")
            .clone();
        let loaded: Vec<gaea_core::DataObject> =
            bands.iter().map(|o| g.object(*o).expect("ok")).collect();
        let mut bound = std::collections::BTreeMap::new();
        bound.insert("bands".to_string(), Binding::Many(loaded));
        b.iter(|| {
            let ctx = EvalContext {
                bindings: &bound,
                registry: g.registry(),
                params: &gaea_core::template::NO_PARAMS,
            };
            ctx.check_assertions(&def.name, &def.template)
                .expect("pass");
            black_box(())
        })
    });
    // The k parameter from the paper's template (12) versus alternatives.
    for k in [4i32, 12, 24] {
        group.bench_with_input(BenchmarkId::new("k_sweep_32x32", k), &k, |b, k| {
            let scene = SyntheticScene::generate(SceneSpec::small(9).sized(32, 32));
            let refs: Vec<&gaea_adt::Image> = scene.bands.iter().collect();
            let stack = composite(&refs).expect("ok");
            b.iter(|| black_box(kmeans_classify(&stack, *k as usize, 100, 0x6AEA).expect("ok")))
        });
    }
    group.finish();
    let _ = Value::Int4(0);
}

criterion_group!(benches, bench);
criterion_main!(benches);
