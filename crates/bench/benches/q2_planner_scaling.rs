//! Experiment Q2 — §2.1.6 backward-chaining planner scaling.
//!
//! Sweeps derivation-net depth, width and alternative-producer fan-in on
//! random layered DAGs. Expected shape: planning cost grows with net size
//! but stays well inside interactive budgets (µs–ms) at schema scales far
//! beyond Figure 2; failure diagnosis costs about as much as success.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_bench::configure;
use gaea_petri::backward::plan_derivation;
use gaea_petri::reachability::{derivable, saturate};
use gaea_petri::Marking;
use gaea_workload::{random_derivation_catalog, RandDagSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q2_planner_scaling");
    configure(&mut group);
    // Depth sweep.
    for depth in [2usize, 4, 8, 16] {
        let rd = random_derivation_catalog(RandDagSpec {
            depth,
            width: 4,
            alternatives: 2,
            fan_in: 3,
            threshold_max: 2,
            seed: 42,
        });
        let marking = rd.base_marking(8);
        group.bench_with_input(BenchmarkId::new("plan_by_depth", depth), &depth, |b, _| {
            b.iter(|| black_box(plan_derivation(&rd.net, &marking, rd.goal, 1).expect("ok")))
        });
    }
    // Width sweep.
    for width in [2usize, 8, 16, 32] {
        let rd = random_derivation_catalog(RandDagSpec {
            depth: 4,
            width,
            alternatives: 2,
            fan_in: 3,
            threshold_max: 2,
            seed: 43,
        });
        let marking = rd.base_marking(8);
        group.bench_with_input(BenchmarkId::new("plan_by_width", width), &width, |b, _| {
            b.iter(|| black_box(plan_derivation(&rd.net, &marking, rd.goal, 1).expect("ok")))
        });
    }
    // Alternatives sweep (how many competing processes per class).
    for alts in [1usize, 2, 4] {
        let rd = random_derivation_catalog(RandDagSpec {
            depth: 4,
            width: 4,
            alternatives: alts,
            fan_in: 3,
            threshold_max: 2,
            seed: 44,
        });
        let marking = rd.base_marking(8);
        group.bench_with_input(
            BenchmarkId::new("plan_by_alternatives", alts),
            &alts,
            |b, _| {
                b.iter(|| black_box(plan_derivation(&rd.net, &marking, rd.goal, 1).expect("ok")))
            },
        );
    }
    // Failure diagnosis (empty database).
    let rd = random_derivation_catalog(RandDagSpec {
        depth: 8,
        width: 4,
        alternatives: 2,
        fan_in: 3,
        threshold_max: 2,
        seed: 45,
    });
    let empty = rd.base_marking(0);
    group.bench_function("diagnose_failure_depth8", |b| {
        b.iter(|| black_box(plan_derivation(&rd.net, &empty, rd.goal, 1).expect_err("fails")))
    });
    // Pure reachability (the decision problem without plan extraction).
    let marking = rd.base_marking(8);
    let want = Marking::from_counts(&rd.net, &[(rd.goal, 1)]);
    group.bench_function("reachability_only_depth8", |b| {
        b.iter(|| black_box(derivable(&rd.net, &marking, &want)))
    });
    group.bench_function("saturation_depth8", |b| {
        b.iter(|| black_box(saturate(&rd.net, &marking, 4)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
