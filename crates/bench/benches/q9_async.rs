//! Experiment Q9 — interactive latency under asynchronous derivation jobs.
//!
//! The §5 scenario the job subsystem exists for: K external firings
//! whose mappings run at a slow remote site (simulated with a 5 ms
//! round-trip) while a scientist keeps querying. Two schedules of the
//! same work — K derivations plus one interactive query:
//!
//! * `latency_interactive_async` — the K firings are *submitted* as
//!   background jobs (`Gaea::submit_derivation`) and the interactive
//!   query runs immediately; the measured latency is microseconds, the
//!   round-trips overlap on the job workers.
//! * `latency_interactive_blocking` — the old synchronous executor:
//!   each firing blocks the session for its full round-trip, so the
//!   interactive query waits ≈ K × 5 ms.
//!
//! CI condenses both rows into `BENCH_q9_async.json` via
//! `scripts/bench_summary.sh q9_async latency`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::{AbsTime, TypeTag, Value};
use gaea_core::external::SimulatedSite;
use gaea_core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea_core::{ObjectId, Query};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// Concurrent slow firings per schedule.
const K: u32 = 4;
/// Simulated remote round-trip.
const ROUND_TRIP: Duration = Duration::from_millis(5);

fn day(d: u32) -> AbsTime {
    AbsTime::from_ymd(1986, 1, d).unwrap()
}

/// A kernel with K timestamped observations, a slow external process
/// `REMOTE: obs → remote_out`, and an unrelated `local` class the
/// interactive query reads.
fn kernel() -> (Gaea, Vec<ObjectId>) {
    let site = Arc::new(
        SimulatedSite::new("deep_space", |_def, inputs| {
            let v = inputs["x"][0]
                .attr("v")
                .and_then(Value::as_i64)
                .unwrap_or(0);
            let mut out = BTreeMap::new();
            out.insert("v".to_string(), Value::Int4((v as i32) * 2));
            Ok(out)
        })
        .with_latency(ROUND_TRIP),
    );
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4))
        .expect("obs class");
    g.define_class(ClassSpec::derived("remote_out").attr("v", TypeTag::Int4))
        .expect("remote_out class");
    g.define_class(
        ClassSpec::base("local")
            .attr("v", TypeTag::Int4)
            .no_extents(),
    )
    .expect("local class");
    g.define_external_process(
        ProcessSpec::new("REMOTE", "remote_out").arg("x", "obs"),
        "deep_space",
    )
    .expect("REMOTE process");
    g.register_site("deep_space", site);
    g.set_job_workers(K as usize);
    let mut obs = Vec::new();
    for i in 0..K {
        obs.push(
            g.insert_object(
                "obs",
                vec![
                    ("v", Value::Int4(10 + i as i32)),
                    ("timestamp", Value::AbsTime(day(1 + i))),
                ],
            )
            .expect("insert obs"),
        );
    }
    for i in 0..16 {
        g.insert_object("local", vec![("v", Value::Int4(i))])
            .expect("insert local");
    }
    (g, obs)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("q9_async");
    gaea_bench::configure(&mut group);

    // K background submissions, then the interactive query: the session
    // never waits on a round-trip.
    group.bench_with_input(
        BenchmarkId::new("latency_interactive_async", K),
        &K,
        |b, k| {
            b.iter_batched(
                || kernel().0,
                |mut g| {
                    for i in 0..*k {
                        g.submit_derivation(&Query::class("remote_out").at(day(1 + i)))
                            .expect("submit background firing");
                    }
                    let out = g.query(&Query::class("local")).expect("interactive query");
                    black_box(out)
                },
                criterion::BatchSize::PerIteration,
            )
        },
    );

    // The blocking baseline: each firing holds the session for its full
    // round-trip before the interactive query gets a turn.
    group.bench_with_input(
        BenchmarkId::new("latency_interactive_blocking", K),
        &K,
        |b, _| {
            b.iter_batched(
                kernel,
                |(mut g, obs)| {
                    for o in &obs {
                        g.run_process("REMOTE", &[("x", vec![*o])])
                            .expect("blocking external firing");
                    }
                    let out = g.query(&Query::class("local")).expect("interactive query");
                    black_box(out)
                },
                criterion::BatchSize::PerIteration,
            )
        },
    );

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
