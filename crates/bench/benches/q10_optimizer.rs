//! Q10 — cost-based access paths vs full scans on a 100k-object extent.
//!
//! The optimizer's claim is quantitative: a selective equality should
//! answer ≥100× faster through the ordered index than through a heap
//! walk, and a `WITHIN` window ≥10× faster through the uniform grid —
//! both including the residual re-check that keeps indexed answers
//! identical to heap answers. This target measures exactly those pairs
//! on one 100 000-tuple relation, plus the predicate-compilation
//! micro-costs that justify compiling once per scan (name→position
//! resolution out of the per-tuple loop).
//!
//! Summarized for the CI artifact trail via `scripts/bench_summary.sh`
//! and the `GAEA_BENCH_JSON` hook.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::{GeoBox, TypeTag, Value};
use gaea_bench::configure;
use gaea_store::{Database, Field, Predicate, Schema, Tuple};
use std::hint::black_box;

const N: i32 = 100_000;
/// Distinct `val` keys: equality selects ~N/1000 = 100 rows (0.1%).
const KEYS: i32 = 1_000;
/// Scene edge; extents tile a ~3160-unit square, so a 30-unit window
/// covers ~0.01% of the plane.
const EDGE: f64 = 8.0;

fn extent(i: i32) -> GeoBox {
    let x = f64::from(i % 316) * 10.0;
    let y = f64::from((i / 316) % 316) * 10.0;
    GeoBox::new(x, y, x + EDGE, y + EDGE)
}

/// 100k tuples with an ordered index on `val` and a grid on `ext` —
/// the same access paths the kernel auto-creates past the threshold.
fn filled_db() -> Database {
    let mut db = Database::new();
    let schema = Schema::new(vec![
        Field::required("val", TypeTag::Int4),
        Field::required("ext", TypeTag::GeoBox),
    ])
    .expect("schema");
    db.create_relation("objects", schema).expect("relation");
    for i in 0..N {
        db.insert(
            "objects",
            Tuple::new(vec![Value::Int4(i % KEYS), Value::GeoBox(extent(i))]),
        )
        .expect("insert");
    }
    let rel = db.relation_mut("objects").expect("relation");
    rel.create_index("val").expect("index");
    rel.create_grid("ext", EDGE).expect("grid");
    db
}

fn bench(c: &mut Criterion) {
    let db = filled_db();
    let rel = db.relation("objects").expect("relation");
    let schema = rel.schema();
    let eq = Predicate::Eq("val".into(), Value::Int4(KEYS / 2));
    let window = GeoBox::new(1000.0, 1000.0, 1030.0, 1030.0);
    let within = Predicate::BoxOverlaps("ext".into(), window);

    let mut group = c.benchmark_group("q10_optimizer");
    configure(&mut group);

    // Selective equality: heap walk vs index lookup + residual re-check
    // (the full driving-path discipline the kernel's scan_class applies).
    group.bench_with_input(BenchmarkId::new("opt_eq_full_scan", N), &N, |b, _| {
        b.iter(|| black_box(rel.scan_oids(&eq).expect("scan")))
    });
    group.bench_with_input(BenchmarkId::new("opt_eq_index", N), &N, |b, _| {
        let compiled = eq.compile(schema).expect("compile");
        b.iter(|| {
            let mut oids = rel
                .index_lookup("val", &Value::Int4(KEYS / 2))
                .expect("lookup");
            oids.retain(|oid| rel.get(*oid).map(|t| compiled.matches(t)).unwrap_or(false));
            oids.sort_unstable();
            black_box(oids)
        })
    });

    // Spatial window: heap walk vs grid probe + residual re-check.
    group.bench_with_input(BenchmarkId::new("opt_within_full_scan", N), &N, |b, _| {
        b.iter(|| black_box(rel.scan_oids(&within).expect("scan")))
    });
    group.bench_with_input(BenchmarkId::new("opt_within_grid", N), &N, |b, _| {
        let compiled = within.compile(schema).expect("compile");
        b.iter(|| {
            let mut oids = rel.grid_probe("ext", &window).expect("probe");
            oids.retain(|oid| rel.get(*oid).map(|t| compiled.matches(t)).unwrap_or(false));
            black_box(oids)
        })
    });

    // Predicate compilation: the once-per-scan cost, vs what per-tuple
    // name resolution adds over a full heap pass.
    let conj = eq.clone().and(within.clone());
    group.bench_with_input(BenchmarkId::new("opt_compile_once", N), &N, |b, _| {
        b.iter(|| black_box(conj.compile(schema).expect("compile")))
    });
    group.bench_with_input(BenchmarkId::new("opt_match_compiled", N), &N, |b, _| {
        let compiled = conj.compile(schema).expect("compile");
        b.iter(|| black_box(rel.iter().filter(|(_, t)| compiled.matches(t)).count()))
    });
    group.bench_with_input(BenchmarkId::new("opt_match_uncompiled", N), &N, |b, _| {
        b.iter(|| {
            black_box(
                rel.iter()
                    .filter(|(_, t)| conj.matches(schema, t).unwrap_or(false))
                    .count(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
