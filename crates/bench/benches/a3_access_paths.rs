//! Ablation A3 — store access paths: predicate scan vs ordered index.
//!
//! The paper leans on Postgres for "standard database management
//! features" (§4.1 criticizes file-based GIS for lacking them). The
//! substitute store provides both full-relation predicate scans and
//! ordered secondary indexes; this ablation shows the crossover that
//! justifies maintaining indexes on catalog-queried columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaea_adt::{TypeTag, Value};
use gaea_bench::configure;
use gaea_store::{Database, Field, Predicate, Schema, Tuple};
use std::hint::black_box;

fn filled_db(n: i32) -> Database {
    let mut db = Database::new();
    let schema = Schema::new(vec![
        Field::required("seq", TypeTag::Int4),
        Field::required("name", TypeTag::Text),
    ])
    .expect("schema");
    db.create_relation("objects", schema).expect("relation");
    for i in 0..n {
        db.insert(
            "objects",
            Tuple::new(vec![Value::Int4(i), Value::Text(format!("obj{i}"))]),
        )
        .expect("insert");
    }
    db.relation_mut("objects")
        .expect("relation")
        .create_index("seq")
        .expect("index");
    db
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_access_paths");
    configure(&mut group);
    for n in [100i32, 1_000, 10_000] {
        let db = filled_db(n);
        let key = n / 2;
        // Point lookup: scan vs index.
        group.bench_with_input(BenchmarkId::new("scan_eq", n), &n, |b, _| {
            b.iter(|| {
                let pred = Predicate::Eq("seq".into(), Value::Int4(key));
                black_box(db.scan("objects", &pred).expect("scan"))
            })
        });
        group.bench_with_input(BenchmarkId::new("index_eq", n), &n, |b, _| {
            let rel = db.relation("objects").expect("relation");
            b.iter(|| black_box(rel.index_lookup("seq", &Value::Int4(key)).expect("lookup")))
        });
        // 1% range: scan with And-predicate vs index range.
        let lo = key;
        let hi = key + n / 100;
        group.bench_with_input(BenchmarkId::new("scan_range", n), &n, |b, _| {
            b.iter(|| {
                let pred = Predicate::Gt("seq".into(), Value::Int4(lo - 1))
                    .and(Predicate::Lt("seq".into(), Value::Int4(hi)));
                black_box(db.scan("objects", &pred).expect("scan"))
            })
        });
        group.bench_with_input(BenchmarkId::new("index_range", n), &n, |b, _| {
            let rel = db.relation("objects").expect("relation");
            b.iter(|| {
                black_box(
                    rel.index_range("seq", Some(&Value::Int4(lo)), Some(&Value::Int4(hi - 1)))
                        .expect("range"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
