//! # Gaea — a reproduction of the VLDB 1993 Gaea scientific DBMS
//!
//! This facade crate re-exports the whole workspace so that examples,
//! integration tests, and downstream users can depend on a single crate.
//!
//! The system reproduces Hachem, Qiu, Gennert & Ward, *Managing Derived Data
//! in the Gaea Scientific DBMS* (VLDB 1993):
//!
//! * [`adt`] — system-level semantics: primitive classes (value-identified
//!   ADTs such as `image`), operators, and compound-operator dataflow
//!   networks (paper §2.1.3, Figure 4).
//! * [`raster`] — the GIS analysis algorithms used by every worked example:
//!   unsupervised classification, PCA/SPCA, NDVI, change detection,
//!   interpolation (Figures 3–5).
//! * [`store`] — the Postgres-substitute storage substrate (catalog
//!   relations, heaps, indexes, snapshots).
//! * [`petri`] — derivation diagrams: Petri nets with the paper's modified
//!   firing rules and backward-chaining derivation planning (§2.1.6).
//! * [`core`] — the Gaea kernel itself: concepts, processes, tasks, the
//!   three-layer metadata manager, the retrieve→interpolate→derive query
//!   mechanism, lineage and experiment management (§2).
//! * [`lang`] — the `CLASS` / `DEFINE PROCESS` definition language from the
//!   paper's listings.
//! * [`server`] — the multi-session network front-end: length-prefixed
//!   wire protocol, admission control, snapshot-isolation reads.
//! * [`obs`] — the observability layer underneath everything: the
//!   process-wide metrics registry and the structured span tracer.
//! * [`baseline`] — an IDRISI/GRASS-style file-based comparator (§4.1).
//! * [`workload`] — synthetic Landsat-TM scenes, NDVI series, and the full
//!   Figure 2 schema.
//!
//! ## Quickstart
//!
//! ```
//! use gaea::core::kernel::Gaea;
//! let gaea = Gaea::in_memory();
//! // See examples/quickstart.rs for a full worked session.
//! let _ = gaea;
//! ```

pub use gaea_adt as adt;
pub use gaea_baseline as baseline;
pub use gaea_core as core;
pub use gaea_lang as lang;
pub use gaea_obs as obs;
pub use gaea_petri as petri;
pub use gaea_raster as raster;
pub use gaea_sched as sched;
pub use gaea_server as server;
pub use gaea_store as store;
pub use gaea_workload as workload;

/// Workspace version, shared by all crates.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
