//! Non-local processes: derivation across site boundaries (paper §5).
//!
//! "The need to deal with processes that are not locally available will
//! be essential in the future." This example defines an NDVI process whose
//! mapping runs at a simulated remote processing facility, lets the
//! three-step query mechanism derive through it automatically, injects an
//! outage, and shows that reproduction degrades to an audit — the history
//! survives even when the computation cannot be repeated.
//!
//! ```sh
//! cargo run --example distributed_derivation
//! ```

use gaea::adt::{AbsTime, GeoBox, TypeTag, Value};
use gaea::core::external::SimulatedSite;
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Template};
use gaea::core::{Query, QueryStrategy};
use gaea::workload::{SceneSpec, SyntheticScene};
use std::collections::BTreeMap;
use std::sync::Arc;

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut g = Gaea::in_memory().with_user("ward");

    g.define_class(ClassSpec::base("avhrr").attr("data", TypeTag::Image))?;
    g.define_class(ClassSpec::derived("ndvi_map").attr("data", TypeTag::Image))?;

    // The external process: guard assertions run locally; the mapping runs
    // at "eros_data_center".
    g.define_external_process(
        ProcessSpec::new("P_ndvi_remote", "ndvi_map")
            .arg("nir", "avhrr")
            .arg("red", "avhrr")
            .template(Template {
                assertions: vec![Expr::eq(
                    Expr::proj("nir", TEMPORAL),
                    Expr::proj("red", TEMPORAL),
                )],
                mappings: vec![],
            })
            .doc("NDVI computed at the EROS Data Center"),
        "eros_data_center",
    )?;
    println!("{}", g.catalog().process_by_name("P_ndvi_remote")?);

    // The simulated facility: computes NDVI and transfers extents — the
    // identical contract a local template would implement.
    let site = Arc::new(SimulatedSite::new("eros_data_center", |_def, inputs| {
        let nir = &inputs["nir"][0];
        let red = &inputs["red"][0];
        let img = gaea::raster::ndvi(
            nir.attr("data").and_then(Value::as_image).expect("nir"),
            red.attr("data").and_then(Value::as_image).expect("red"),
        )
        .map_err(gaea::core::KernelError::from)?;
        let mut out = BTreeMap::new();
        out.insert("data".to_string(), Value::image(img));
        for attr in [SPATIAL, TEMPORAL] {
            if let Some(v) = nir.attr(attr) {
                out.insert(attr.to_string(), v.clone());
            }
        }
        Ok(out)
    }));
    g.register_site("eros_data_center", site.clone());
    println!("registered sites: {:?}", g.sites());

    // Base data: NIR + red bands of one scene.
    let scene = SyntheticScene::generate(SceneSpec::small(88).sized(32, 32).with_bands(2));
    let bbox = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let t = AbsTime::from_ymd(1988, 6, 1)?;
    for b in &scene.bands {
        g.insert_object(
            "avhrr",
            vec![
                ("data", Value::image(b.clone())),
                (SPATIAL, Value::GeoBox(bbox)),
                (TEMPORAL, Value::AbsTime(t)),
            ],
        )?;
    }

    // The ordinary query mechanism derives straight through the site: the
    // planner sees the external process because its site is reachable.
    let q = Query::class("ndvi_map")
        .over(bbox)
        .with_strategy(QueryStrategy::PreferDerivation);
    let out = g.query(&q)?;
    let task = g.task(out.tasks[0])?.clone();
    println!("\nquery answered by {:?}; {task}", out.method);

    g.record_experiment("ndvi_via_eros", "NDVI offloaded to EROS", vec![task.id])?;
    let rep = g.reproduce_experiment("ndvi_via_eros")?;
    println!(
        "site up:   rerun {}, matching {}, not replayable {}",
        rep.tasks_rerun,
        rep.matching,
        rep.not_replayable.len()
    );

    // Outage: the derivation history stands, the computation cannot be
    // repeated — reproduction reports an audit note, not a divergence.
    site.set_reachable(false);
    let rep = g.reproduce_experiment("ndvi_via_eros")?;
    println!(
        "site down: rerun {}, matching {}, not replayable {} ({})",
        rep.tasks_rerun,
        rep.matching,
        rep.not_replayable.len(),
        rep.not_replayable.first().map(String::as_str).unwrap_or("")
    );
    assert!(rep.is_faithful());

    // And new derivations through the dead site fail cleanly...
    let q2 = Query::class("ndvi_map")
        .at(AbsTime::from_ymd(1989, 6, 1)?)
        .with_strategy(QueryStrategy::PreferDerivation);
    match g.query(&q2) {
        Err(e) => println!("derivation during outage: {e}"),
        Ok(_) => unreachable!("no data for 1989 and the site is down"),
    }
    // ...until the service recovers.
    site.set_reachable(true);
    println!("service restored; sites: {:?}", g.sites());
    Ok(())
}
