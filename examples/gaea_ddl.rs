//! The Gaea definition language: parse the paper's listings, lower them
//! into a kernel, run a query through the parsed schema.
//!
//! ```sh
//! cargo run --example gaea_ddl
//! ```

use gaea::adt::{AbsTime, GeoBox, Value};
use gaea::core::kernel::Gaea;
use gaea::core::{Query, QueryStrategy};
use gaea::lang::{lower_program, parse, pretty_program};
use gaea::workload::{SceneSpec, SyntheticScene};

const SCHEMA: &str = r#"
CLASS tm ( // Rectified Landsat TM
  ATTRIBUTES:
    area = char16;       // area name
    ref_system = char16; // long/lat, UTM ...
    data = image;        // image data type
  SPATIAL EXTENT:
    spatialextent = box; // bounding box
  TEMPORAL EXTENT:
    timestamp = abstime; // absolute time
)

CLASS landcover ( // Land cover
  ATTRIBUTES:
    area = char16;
    data = image;
    numclass = int4;
  SPATIAL EXTENT:
    spatialextent = box;
  TEMPORAL EXTENT:
    timestamp = abstime;
  DERIVED BY: P20
)

DEFINE PROCESS P20 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;  // need three bands
      common(bands.spatialextent);
      common(bands.timestamp);
    MAPPINGS:
      landcover.data = unsuperclassify(composite(bands), 12);
      landcover.numclass = 12;
      landcover.spatialextent = ANYOF bands.spatialextent;
      landcover.timestamp = ANYOF bands.timestamp;
  }
)

DEFINE CONCEPT land_cover_concept (
  MEMBERS: landcover;
  DOC: "land cover classification however derived";
)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse & echo back (the pretty-printer round-trips the AST).
    let program = parse(SCHEMA)?;
    println!(
        "parsed {} definition(s); canonical form:\n",
        program.items.len()
    );
    println!("{}", pretty_program(&program));

    // Lower onto a fresh kernel.
    let mut g = Gaea::in_memory().with_user("ddl-user");
    let lowered = lower_program(&mut g, &program)?;
    println!(
        "registered {} class(es), {} process(es), {} concept(s)",
        lowered.classes.len(),
        lowered.processes.len(),
        lowered.concepts.len()
    );
    // The card(bands) = 3 assertion became the Petri-net threshold.
    let p20 = g.catalog().process_by_name("P20")?;
    println!(
        "P20 argument '{}': SETOF {} with minimum cardinality {}",
        p20.args[0].name,
        g.catalog().class(p20.args[0].class)?.name,
        p20.args[0].min_card
    );

    // Use the parsed schema end to end.
    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let jan86 = AbsTime::from_ymd(1986, 1, 15)?;
    let scene = SyntheticScene::generate(SceneSpec::small(3).sized(32, 32));
    for band in &scene.bands {
        g.insert_object(
            "tm",
            vec![
                ("area", Value::Char16("africa".into())),
                ("data", Value::image(band.clone())),
                ("spatialextent", Value::GeoBox(africa)),
                ("timestamp", Value::AbsTime(jan86)),
            ],
        )?;
    }
    let outcome = g.query(
        &Query::concept("land_cover_concept")
            .over(africa)
            .at(jan86)
            .with_strategy(QueryStrategy::PreferDerivation),
    )?;
    println!(
        "\nconcept query through the parsed schema: {:?}, numclass = {}",
        outcome.method,
        outcome.objects[0].attr("numclass").expect("mapped")
    );
    assert_eq!(outcome.method, gaea::core::QueryMethod::Derived);
    Ok(())
}
