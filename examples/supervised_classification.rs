//! Interactive processes: supervised classification (paper §4.3).
//!
//! The paper names supervised classification as the process it cannot
//! express: "this process requires interaction with the scientist before
//! a task completes the derivation of the output land cover
//! classification data." This example drives the extension that expresses
//! it — an interactive session in which the scientist inspects a composite
//! preview, digitizes training sites, and supplies the spectral signatures
//! the template consumes as `PARAM signatures`.
//!
//! ```sh
//! cargo run --example supervised_classification
//! ```

use gaea::adt::{AbsTime, GeoBox, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::raster::composite;
use gaea::raster::supervised::signatures_from_training;
use gaea::workload::{SceneSpec, SyntheticScene};

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut g = Gaea::in_memory().with_user("gennert");

    // Schema: rectified TM scenes, and a land-cover class derived by the
    // *interactive* process P_super.
    g.define_class(ClassSpec::base("tm").attr("data", TypeTag::Image))?;
    g.define_class(
        ClassSpec::derived("landcover_sup")
            .attr("data", TypeTag::Image)
            .attr("numclass", TypeTag::Int4),
    )?;
    let template = Template {
        assertions: vec![
            Expr::eq(
                Expr::Card(Box::new(Expr::Arg("bands".into()))),
                Expr::int(3),
            ),
            Expr::Common(Box::new(Expr::proj("bands", TEMPORAL))),
            Expr::Common(Box::new(Expr::proj("bands", SPATIAL))),
        ],
        mappings: vec![
            Mapping {
                attr: "data".into(),
                expr: Expr::apply(
                    "superclassify",
                    vec![
                        Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                        Expr::param("signatures"),
                    ],
                ),
            },
            Mapping {
                attr: "numclass".into(),
                expr: Expr::int(4),
            },
            Mapping {
                attr: SPATIAL.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", SPATIAL))),
            },
            Mapping {
                attr: TEMPORAL.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", TEMPORAL))),
            },
        ],
    };
    g.define_process(
        ProcessSpec::new("P_super", "landcover_sup")
            .setof_arg("bands", "tm", 3)
            .template(template)
            .interact_preview(
                "signatures",
                "inspect the composite; digitize one training site per cover class",
                TypeTag::Matrix,
                Expr::apply("composite", vec![Expr::Arg("bands".into())]),
            )
            .doc("supervised min-distance classification (paper §4.3 example)"),
    )?;
    println!("{}", g.catalog().process_by_name("P_super")?);

    // A synthetic 3-band scene with 4 known cover classes.
    let scene = SyntheticScene::generate(SceneSpec::small(1993).sized(48, 48));
    let bbox = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let t = AbsTime::from_ymd(1986, 1, 15)?;
    let bands: Vec<_> = scene
        .bands
        .iter()
        .map(|b| {
            g.insert_object(
                "tm",
                vec![
                    ("data", Value::image(b.clone())),
                    (SPATIAL, Value::GeoBox(bbox)),
                    (TEMPORAL, Value::AbsTime(t)),
                ],
            )
        })
        .collect::<Result<_, _>>()?;

    // --- The interactive session -------------------------------------
    let mut session = g.begin_interactive("P_super", &[("bands", bands)])?;
    println!(
        "\nsession opened: {} interaction(s) pending",
        session.remaining()
    );
    let point = session.pending().expect("one point declared").clone();
    println!("prompt: {}", point.prompt);

    // The kernel renders the preview ("temporary result visualized on the
    // screen"); the scripted scientist digitizes training sites from it.
    let preview = g
        .interaction_preview(&session)?
        .expect("P_super declares a composite preview");
    println!("preview: {preview}");
    let imgs: Vec<_> = preview
        .as_set()
        .expect("composite band set")
        .iter()
        .map(|v| v.as_image().expect("band").as_ref().clone())
        .collect();
    let refs: Vec<&gaea::adt::Image> = imgs.iter().collect();
    let stack = composite(&refs)?;
    let k = scene.spec.classes;
    let sites = scene.training_sites(16);
    let signatures = signatures_from_training(&stack, k, &sites)?;
    println!(
        "scientist digitized {} training sites -> {}x{} signature matrix",
        sites.len(),
        signatures.rows(),
        signatures.cols()
    );
    session.supply(Value::matrix(signatures))?;

    // Completing the session fires the template with the answers bound.
    let run = g.finish_interactive(session)?;
    let task = g.task(run.task)?.clone();
    println!("\nrecorded {task}");
    let out = g.object(run.outputs[0])?;
    let labels = out
        .attr("data")
        .expect("class map")
        .as_image()
        .expect("image");
    println!(
        "classification purity vs ground truth: {:.3}",
        scene.score(labels)
    );

    // The interaction is on record: the experiment replays without the
    // scientist present.
    g.record_experiment(
        "supervised_jan86",
        "supervised land cover, Africa Jan 1986",
        vec![run.task],
    )?;
    let rep = g.reproduce_experiment("supervised_jan86")?;
    println!(
        "reproduction: {}/{} tasks match (faithful: {})",
        rep.matching,
        rep.tasks_rerun,
        rep.is_faithful()
    );
    Ok(())
}
