//! The derived-result cache at work: memoized re-derivation and
//! invalidation on input mutation.
//!
//! Builds the Figure 3 schema (tm --P20--> landcover), derives once,
//! re-runs the identical derivation against the memo, then mutates an
//! input band and shows the cache dropping the stale entry and the next
//! firing deriving afresh.

use gaea::adt::{AbsTime, GeoBox, Image, PixType, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::KernelError;

fn main() -> Result<(), KernelError> {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("tm").attr("data", TypeTag::Image))?;
    g.define_class(
        ClassSpec::derived("landcover")
            .attr("data", TypeTag::Image)
            .attr("numclass", TypeTag::Int4),
    )?;
    g.define_process(
        ProcessSpec::new("P20", "landcover")
            .setof_arg("bands", "tm", 3)
            .template(Template {
                assertions: vec![Expr::Common(Box::new(Expr::proj("bands", "timestamp")))],
                mappings: vec![
                    Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "unsuperclassify",
                            vec![
                                Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                                Expr::int(12),
                            ],
                        ),
                    },
                    Mapping {
                        attr: "numclass".into(),
                        expr: Expr::int(12),
                    },
                    Mapping {
                        attr: "spatialextent".into(),
                        expr: Expr::AnyOf(Box::new(Expr::proj("bands", "spatialextent"))),
                    },
                    Mapping {
                        attr: "timestamp".into(),
                        expr: Expr::AnyOf(Box::new(Expr::proj("bands", "timestamp"))),
                    },
                ],
            }),
    )?;

    g.enable_memoization(true);

    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let jan86 = AbsTime::from_ymd(1986, 1, 15).expect("valid date");
    let bands: Vec<_> = (0..3)
        .map(|i| {
            g.insert_object(
                "tm",
                vec![
                    (
                        "data",
                        Value::image(Image::filled(16, 16, PixType::Float8, 10.0 * i as f64)),
                    ),
                    ("spatialextent", Value::GeoBox(africa)),
                    ("timestamp", Value::AbsTime(jan86)),
                ],
            )
            .expect("insert band")
        })
        .collect();

    let first = g.run_process("P20", &[("bands", bands.clone())])?;
    println!(
        "first firing:  task {:?}, outputs {:?}  (stats {:?})",
        first.task,
        first.outputs,
        g.memoization_stats()
    );

    let again = g.run_process("P20", &[("bands", bands.clone())])?;
    println!(
        "second firing: task {:?} — {}  (stats {:?})",
        again.task,
        if again.task == first.task {
            "served from the DerivedCache"
        } else {
            "UNEXPECTED re-derivation"
        },
        g.memoization_stats()
    );

    // Mutate one input band: the memo must drop.
    g.update_object(
        bands[0],
        vec![(
            "data",
            Value::image(Image::filled(16, 16, PixType::Float8, 99.0)),
        )],
    )?;
    println!(
        "after update_object(band 0): stats {:?}",
        g.memoization_stats()
    );

    let fresh = g.run_process("P20", &[("bands", bands)])?;
    println!(
        "third firing:  task {:?} — {}  (stats {:?})",
        fresh.task,
        if fresh.task != first.task {
            "derived afresh against the mutated input"
        } else {
            "UNEXPECTED stale reuse"
        },
        g.memoization_stats()
    );
    Ok(())
}
