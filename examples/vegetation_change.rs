//! The paper's §1 motivating scenario, end to end.
//!
//! "Two scientists are working on detecting the changes in vegetation index
//! in Africa between 1988 and 1989. One may subtract the NDVI of 1988 from
//! that of 1989, while another divides the NDVI of 1989 by that of 1988.
//! In this case, if only the resultant images are stored (as in common GIS
//! such as IDRISI and GRASS), there is no way to share and compare the
//! produced data unless the derivation procedures are known to both
//! scientists."
//!
//! We run the scenario twice: once in the file-based baseline (where the
//! two products are indistinguishable in kind), once in Gaea (where the
//! derivation semantics layer tells them apart mechanically).
//!
//! ```sh
//! cargo run --example vegetation_change
//! ```

use gaea::adt::{AbsTime, GeoBox, TypeTag, Value};
use gaea::baseline::FileGis;
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::workload::ndvi_series;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    // Two annual NDVI composites from the synthetic AVHRR series.
    let series = ndvi_series(32, 32, 24, AbsTime::from_ymd(1988, 1, 1)?, -0.05, 7);
    let (t88, ndvi88) = series[6].clone(); // mid-1988
    let (t89, ndvi89) = series[18].clone(); // mid-1989

    // ---------------- the baseline view (IDRISI/GRASS style) -------------
    let dir = std::env::temp_dir().join("gaea-example-vegchange");
    let _ = std::fs::remove_dir_all(&dir);
    let gis = FileGis::open(&dir)?;
    gis.put_raster("ndvi88", &ndvi88)?;
    gis.put_raster("ndvi89", &ndvi89)?;
    gis.run("diff", &["ndvi89", "ndvi88"], "change_hachem")?;
    gis.run("ratio", &["ndvi89", "ndvi88"], "change_qiu")?;
    println!("baseline directory now holds: {:?}", gis.list()?);
    println!(
        "from the files alone, 'change_hachem' and 'change_qiu' are just rasters; \
         the only derivation record is the transcript:"
    );
    for entry in gis.transcript()? {
        println!(
            "  {} = {}({})",
            entry.output,
            entry.command,
            entry.inputs.join(", ")
        );
    }

    // ---------------- the Gaea view ---------------------------------------
    let mut g = Gaea::in_memory().with_user("hachem");
    g.define_class(
        ClassSpec::base("ndvi")
            .attr("data", TypeTag::Image)
            .doc("annual NDVI"),
    )?;
    g.define_class(
        ClassSpec::derived("veg_change")
            .attr("data", TypeTag::Image)
            .doc("vegetation change 1988→1989"),
    )?;
    // Scientist A's process: subtraction.
    g.define_process(
        ProcessSpec::new("change_by_difference", "veg_change")
            .arg("earlier", "ndvi")
            .arg("later", "ndvi")
            .template(change_template("img_diff"))
            .doc("subtract the NDVI of 1988 from that of 1989"),
    )?;
    // Scientist B's process: division.
    g.define_process(
        ProcessSpec::new("change_by_ratio", "veg_change")
            .arg("earlier", "ndvi")
            .arg("later", "ndvi")
            .template(change_template("img_ratio"))
            .doc("divide the NDVI of 1989 by that of 1988"),
    )?;
    let o88 = g.insert_object(
        "ndvi",
        vec![
            ("data", Value::image(ndvi88)),
            ("spatialextent", Value::GeoBox(africa)),
            ("timestamp", Value::AbsTime(t88)),
        ],
    )?;
    let o89 = g.insert_object(
        "ndvi",
        vec![
            ("data", Value::image(ndvi89)),
            ("spatialextent", Value::GeoBox(africa)),
            ("timestamp", Value::AbsTime(t89)),
        ],
    )?;
    // Scientist A derives by difference.
    let run_a = g.run_process(
        "change_by_difference",
        &[("earlier", vec![o88]), ("later", vec![o89])],
    )?;
    // Scientist B derives by ratio.
    g.set_user("qiu");
    let run_b = g.run_process(
        "change_by_ratio",
        &[("earlier", vec![o88]), ("later", vec![o89])],
    )?;

    let a = run_a.outputs[0];
    let b = run_b.outputs[0];
    println!("\nGaea stored two veg_change objects: {a} and {b}");
    println!("same inputs?     {}", g.ancestors(a)? == g.ancestors(b)?);
    println!("same derivation? {}", g.same_derivation(a, b)?);
    println!("\nscientist A's history:\n{}", g.lineage(a)?.render());
    println!("scientist B's history:\n{}", g.lineage(b)?.render());
    println!("signature A: {}", g.lineage(a)?.signature());
    println!("signature B: {}", g.lineage(b)?.signature());

    assert!(
        !g.same_derivation(a, b)?,
        "the derivations must be distinguishable"
    );
    assert_eq!(
        g.ancestors(a)?,
        g.ancestors(b)?,
        "built from the same inputs"
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn change_template(op: &str) -> Template {
    Template {
        assertions: vec![],
        mappings: vec![
            Mapping {
                attr: "data".into(),
                expr: Expr::apply(
                    op,
                    vec![Expr::proj("later", "data"), Expr::proj("earlier", "data")],
                ),
            },
            Mapping {
                attr: "spatialextent".into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("later", "spatialextent"))),
            },
            Mapping {
                attr: "timestamp".into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("later", "timestamp"))),
            },
        ],
    }
}
