//! The Petri-net derivation planner (paper §2.1.6).
//!
//! "Based on the PN representation, we can apply reachability analysis on
//! the network to decide if a non-existing object could be derived from
//! existing data. [...] The procedure is recursively applied until the
//! needed data are generated or back propagation stops at some base class
//! and we fail to find the needed data."
//!
//! This example builds the Figure 2 derivation diagram, prints it, and
//! walks through planning under increasingly stocked databases.
//!
//! ```sh
//! cargo run --example derivation_planner
//! ```

use gaea::adt::{AbsTime, GeoBox, Value};
use gaea::core::kernel::Gaea;
use gaea::core::{Query, QueryStrategy};
use gaea::petri::backward::plan_derivation;
use gaea::petri::Marking;
use gaea::workload::{build_figure2_schema, SceneSpec, SyntheticScene};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut g = Gaea::in_memory().with_user("ward");
    build_figure2_schema(&mut g)?;
    let dnet = g.derivation_net();
    println!("the Figure 2 derivation diagram:\n{}", dnet.net);

    let goal_class = g.catalog().class_by_name("land_cover_changes")?.id;
    let goal = dnet.place_of[&goal_class];

    // Case 1: empty database — back propagation stops at base classes.
    let empty = Marking::empty(&dnet.net);
    match plan_derivation(&dnet.net, &empty, goal, 1) {
        Ok(_) => unreachable!("nothing is derivable from nothing"),
        Err(failure) => {
            let missing: Vec<String> = failure
                .missing_base
                .iter()
                .filter_map(|p| dnet.net.place(*p).ok().map(|pl| pl.name.clone()))
                .collect();
            println!("empty DB: derivation impossible; back propagation stopped at base classes {missing:?}");
        }
    }

    // Case 2: raw TM only — the plan chains rectification, two
    // classifications, and the change process.
    let tm_place = dnet.net.place_by_name("landsat_tm").expect("schema class");
    let stocked = Marking::from_counts(&dnet.net, &[(tm_place, 6)]);
    let plan = plan_derivation(&dnet.net, &stocked, goal, 1).expect("derivable from 6 scenes");
    println!(
        "\nwith 6 raw TM scenes, the planner proposes {} firing(s):",
        plan.cost()
    );
    for (t, times) in &plan.firings {
        println!("  fire {} ×{}", dnet.net.transition(*t)?.name, times);
    }
    let end = plan.execute(&dnet.net, &stocked);
    println!(
        "after execution the goal place holds {} token(s)",
        end.get(goal)
    );

    // Case 3: the same question asked through the kernel with real data —
    // the query machinery runs the plan with actual bindings, records
    // tasks, and returns the change map.
    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    for (seed, y) in [(21, 1986), (22, 1991)] {
        let scene = SyntheticScene::generate(SceneSpec::small(seed).sized(32, 32));
        let t = AbsTime::from_ymd(y, 1, 15)?;
        for band in &scene.bands {
            g.insert_object(
                "landsat_tm",
                vec![
                    ("data", Value::image(band.clone())),
                    ("spatialextent", Value::GeoBox(africa)),
                    ("timestamp", Value::AbsTime(t)),
                ],
            )?;
        }
    }
    let outcome = g.query(
        &Query::class("land_cover_changes")
            .over(africa)
            .with_strategy(QueryStrategy::PreferDerivation),
    )?;
    println!(
        "\nkernel query: answered by {:?}, {} task(s) fired:",
        outcome.method,
        outcome.tasks.len()
    );
    for t in &outcome.tasks {
        println!("  {}", g.task(*t)?);
    }
    assert_eq!(outcome.method, gaea::core::QueryMethod::Derived);
    assert!(!outcome.objects.is_empty());
    Ok(())
}
