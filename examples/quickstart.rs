//! Quickstart: define a schema, store base data, run a derivation, inspect
//! the provenance — the whole Gaea loop in one sitting.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gaea::adt::{AbsTime, GeoBox, Image, PixType, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::{Query, QueryStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gaea = Gaea::in_memory().with_user("quickstart");

    // 1. Define classes: base Landsat TM scenes, derived land cover.
    gaea.define_class(
        ClassSpec::base("tm")
            .attr("data", TypeTag::Image)
            .doc("rectified Landsat TM band"),
    )?;
    gaea.define_class(
        ClassSpec::derived("landcover")
            .attr("data", TypeTag::Image)
            .attr("numclass", TypeTag::Int4)
            .doc("unsupervised land-cover classification"),
    )?;

    // 2. Define the paper's P20 process (Figure 3), template and all.
    gaea.define_process(
        ProcessSpec::new("P20", "landcover")
            .setof_arg("bands", "tm", 3)
            .template(Template {
                assertions: vec![
                    Expr::eq(
                        Expr::Card(Box::new(Expr::Arg("bands".into()))),
                        Expr::int(3),
                    ),
                    Expr::Common(Box::new(Expr::proj("bands", "spatialextent"))),
                    Expr::Common(Box::new(Expr::proj("bands", "timestamp"))),
                ],
                mappings: vec![
                    Mapping {
                        attr: "data".into(),
                        expr: Expr::apply(
                            "unsuperclassify",
                            vec![
                                Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                                Expr::int(12),
                            ],
                        ),
                    },
                    Mapping {
                        attr: "numclass".into(),
                        expr: Expr::int(12),
                    },
                    Mapping {
                        attr: "spatialextent".into(),
                        expr: Expr::AnyOf(Box::new(Expr::proj("bands", "spatialextent"))),
                    },
                    Mapping {
                        attr: "timestamp".into(),
                        expr: Expr::AnyOf(Box::new(Expr::proj("bands", "timestamp"))),
                    },
                ],
            })
            .doc("unsupervised classification (paper Figure 3)"),
    )?;

    // 3. Store three co-registered bands over Africa, January 1986.
    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let jan86 = AbsTime::from_ymd(1986, 1, 15)?;
    let scene = gaea::workload::SyntheticScene::generate(
        gaea::workload::SceneSpec::small(42).sized(64, 64),
    );
    for band in &scene.bands {
        gaea.insert_object(
            "tm",
            vec![
                ("data", Value::image(band.clone())),
                ("spatialextent", Value::GeoBox(africa)),
                ("timestamp", Value::AbsTime(jan86)),
            ],
        )?;
    }
    println!("stored {} tm bands", gaea.count_objects("tm")?);

    // 4. Query land cover for Africa, Jan 1986. Nothing is stored, so the
    //    kernel plans a derivation and fires P20 (paper §2.1.5 step 3).
    let query = Query::class("landcover")
        .over(africa)
        .at(jan86)
        .with_strategy(QueryStrategy::PreferDerivation);
    let outcome = gaea.query(&query)?;
    println!(
        "query answered by {:?}: {} object(s), {} task(s) recorded",
        outcome.method,
        outcome.objects.len(),
        outcome.tasks.len()
    );
    let landcover = &outcome.objects[0];
    println!(
        "landcover numclass = {}",
        landcover.attr("numclass").expect("mapped by P20")
    );

    // 5. Provenance: how was this object derived?
    let tree = gaea.lineage(landcover.id)?;
    println!("\nderivation history:\n{}", tree.render());
    println!("derivation signature: {}", tree.signature());

    // 6. Ask again: the derived object is now stored, so the same query is
    //    a plain retrieval.
    let again = gaea.query(&query)?;
    println!("\nsecond query answered by {:?}", again.method);

    // 7. Record and reproduce the experiment.
    gaea.record_experiment("jan86_africa", "land cover for Jan 1986", outcome.tasks)?;
    let rep = gaea.reproduce_experiment("jan86_africa")?;
    println!(
        "reproduction: {}/{} tasks regenerate identical outputs (faithful: {})",
        rep.matching,
        rep.tasks_rerun,
        rep.is_faithful()
    );

    // Sanity for CI: this example must demonstrate a faithful loop.
    assert!(rep.is_faithful());
    assert_eq!(again.method, gaea::core::QueryMethod::Retrieved);
    let img = Image::zeros(1, 1, PixType::Char);
    let _ = img; // silence unused-import pedantry in some toolchains
    Ok(())
}
