//! Fault-injection harness for the durability CI lane.
//!
//! Three subcommands over a durable kernel directory:
//!
//! * `workload <dir>` — open (or reopen) the kernel at `<dir>` and
//!   commit a deterministic batch of events: sequential `obs {v: i}`
//!   inserts interleaved with `COPY` firings and updates, with
//!   automatic snapshots every 8 events (folded by the background
//!   compactor, as in production). With `GAEA_CRASH_POINT={append,
//!   fsync,truncate,snapshot-write,manifest-flip,
//!   post-flip-pre-truncate,truncate-rewrite}` and
//!   `GAEA_CRASH_AFTER=<n>` set, the
//!   store's crash injector aborts the process mid-commit (or mid
//!   background compaction — drop settles the compactor, so an armed
//!   worker-side point always fires before a clean exit) — that *is*
//!   the test. `GAEA_FSYNC_EVERY=<n>` sets the group-commit batch.
//! * `shutdown <dir>` — the workload followed by an explicit *checked*
//!   close ([`Gaea::close`]): run with a large `GAEA_FSYNC_EVERY` the
//!   batch tail is unsynced until that final flush, so a clean exit
//!   plus `dropped_bytes=0` on verify proves shutdown really synced.
//!   A flush failure surfaces as a nonzero exit with the error printed
//!   — never a silent best-effort `Drop`. With `GAEA_CRASH_POINT=fsync`
//!   armed the abort fires before the close can flush, and recovery
//!   must still reconstruct the committed prefix.
//! * `verify <dir>` — reopen with injection off and check the
//!   recovered state is a clean prefix of the workload: `obs` values
//!   are exactly `0..n` with no gap and no phantom, every `dbl` object
//!   is the copy of a committed `obs`, task records match the derived
//!   objects, and the log reports no corruption.
//!
//! `scripts/crash_matrix.sh` drives the matrix: every crash point ×
//! several positions, asserting a crash happens and recovery then
//! succeeds. Exit status is the verdict (workload exits 134 on the
//! injected abort; verify exits 0 only if every invariant holds).

use gaea::adt::{TypeTag, Value};
use gaea::core::kernel::{ClassSpec, DurabilityOptions, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::KernelResult;
use std::collections::BTreeSet;
use std::path::Path;
use std::process::ExitCode;

/// Events per workload invocation — comfortably past every
/// `GAEA_CRASH_AFTER` the matrix arms, so an armed run always crashes.
const BATCH: i32 = 30;

fn open(dir: &Path) -> KernelResult<Gaea> {
    let fsync_every = std::env::var("GAEA_FSYNC_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    Gaea::open_with(
        dir,
        DurabilityOptions {
            fsync_every,
            snapshot_every: 8,
            ..Default::default()
        },
    )
}

fn define_schema(g: &mut Gaea) -> KernelResult<()> {
    // Re-entrant: a crashed run may have committed any prefix of the
    // three definitions, so each is guarded individually.
    if g.catalog().class_by_name("obs").is_err() {
        g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4).no_extents())?;
    }
    if g.catalog().class_by_name("dbl").is_err() {
        g.define_class(
            ClassSpec::derived("dbl")
                .attr("v", TypeTag::Int4)
                .no_extents(),
        )?;
    }
    if g.catalog().process_by_name("COPY").is_err() {
        g.define_process(
            ProcessSpec::new("COPY", "dbl")
                .arg("x", "obs")
                .template(Template {
                    assertions: vec![],
                    mappings: vec![Mapping {
                        attr: "v".into(),
                        expr: Expr::proj("x", "v"),
                    }],
                }),
        )?;
    }
    Ok(())
}

fn int_values(g: &Gaea, class: &str) -> KernelResult<Vec<i64>> {
    // A crash may land mid-schema: a class whose definition never
    // committed is simply the empty prefix.
    if g.catalog().class_by_name(class).is_err() {
        return Ok(Vec::new());
    }
    let mut vals = Vec::new();
    for oid in g.objects_of(class)? {
        let obj = g.object(oid)?;
        vals.push(obj.attr("v").and_then(Value::as_i64).unwrap_or(i64::MIN));
    }
    vals.sort_unstable();
    Ok(vals)
}

/// Commit `BATCH` more events on top of whatever state survives at
/// `dir`. Values continue from the recovered object count, so a
/// crashed-then-resumed history is indistinguishable from an
/// uninterrupted one.
fn workload(dir: &Path) -> KernelResult<()> {
    let mut g = open(dir)?;
    define_schema(&mut g)?;
    let start = g.objects_of("obs")?.len() as i32;
    for i in start..start + BATCH {
        let oid = g.insert_object("obs", vec![("v", Value::Int4(i))])?;
        if i % 5 == 0 {
            g.run_process("COPY", &[("x", vec![oid])])?;
        }
        if i % 7 == 0 {
            // Same value: the event exercises the update path without
            // disturbing the prefix invariant verify checks.
            g.update_object(oid, vec![("v", Value::Int4(i))])?;
        }
    }
    println!("WORKLOAD COMPLETE obs={}", start + BATCH);
    Ok(())
}

/// The workload plus an explicit checked close — the graceful-shutdown
/// path the server takes, minus the sockets.
fn shutdown(dir: &Path) -> KernelResult<()> {
    let mut g = open(dir)?;
    define_schema(&mut g)?;
    let start = g.objects_of("obs")?.len() as i32;
    for i in start..start + BATCH {
        let oid = g.insert_object("obs", vec![("v", Value::Int4(i))])?;
        if i % 5 == 0 {
            g.run_process("COPY", &[("x", vec![oid])])?;
        }
    }
    // The checked flush: with group commit batched, the log tail is
    // only durable after this succeeds. Its error is the exit status.
    g.close()?;
    println!("SHUTDOWN CLEAN obs={}", start + BATCH);
    Ok(())
}

fn verify(dir: &Path) -> KernelResult<()> {
    let g = open(dir)?;
    let stats = g
        .recovery_stats()
        .cloned()
        .expect("a durable kernel always reports recovery stats");
    assert!(
        !stats.wal_corrupt,
        "a crash may tear the log tail but must never corrupt a committed record"
    );

    // obs is an exact prefix: values 0..n, no gap, no phantom.
    let obs = int_values(&g, "obs")?;
    let expect: Vec<i64> = (0..obs.len() as i64).collect();
    assert_eq!(
        obs, expect,
        "recovered obs values must be the exact committed prefix"
    );

    // Every derived object is the copy of a committed obs from a
    // multiple-of-5 firing, and each has its task record.
    let obs_set: BTreeSet<i64> = obs.into_iter().collect();
    let dbl = int_values(&g, "dbl")?;
    for v in &dbl {
        assert!(
            v % 5 == 0 && obs_set.contains(v),
            "derived value {v} has no committed source observation"
        );
    }
    let tasks = g.catalog().tasks.len();
    assert_eq!(
        tasks,
        dbl.len(),
        "every derived object must have exactly one recovered task record"
    );

    println!(
        "RECOVERY OK events_replayed={} snapshot_seq={} dropped_bytes={} obs={} tasks={}",
        stats.events_replayed,
        stats.snapshot_seq,
        stats.wal_dropped_bytes,
        obs_set.len(),
        tasks
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, dir) = match args.as_slice() {
        [_, cmd, dir] => (cmd.as_str(), Path::new(dir)),
        _ => {
            eprintln!("usage: crash_harness <workload|shutdown|verify> <dir>");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "workload" => workload(dir),
        "shutdown" => shutdown(dir),
        "verify" => verify(dir),
        _ => {
            eprintln!("unknown subcommand {cmd}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{cmd} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
