//! Non-applicative processes: recording fieldwork (paper §5).
//!
//! "A process may be in general non-applicative, that is a process may
//! consist of a mapping which is described by experimental procedures
//! that do not follow a well known algorithm." Ground-truth collection is
//! the GIS archetype: a scientist visits the footprint of a scene and
//! samples vegetation in quadrats. No operator network can compute that —
//! but the *derivation relationship* (survey derived from scene) is
//! exactly what Gaea's metadata layers must capture, or the provenance of
//! every validation statistic built on the survey is lost.
//!
//! ```sh
//! cargo run --example field_survey
//! ```

use gaea::adt::{AbsTime, GeoBox, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea};
use gaea::workload::{SceneSpec, SyntheticScene};

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut g = Gaea::in_memory().with_user("qiu");

    g.define_class(ClassSpec::base("tm").attr("data", TypeTag::Image))?;
    // The survey references the scene it ground-truths — a non-primitive
    // attribute (§4.3 extension) — alongside the observed values.
    g.define_class(
        ClassSpec::derived("site_survey")
            .attr("vegetation_pct", TypeTag::Float8)
            .attr("quadrats", TypeTag::Int4)
            .attr("surveyor", TypeTag::Text)
            .ref_attr("scene_ref", "tm"),
    )?;
    g.define_nonapplicative_process(
        "P_field_survey",
        "site_survey",
        &[("scene".to_string(), "tm".to_string(), false, 1)],
        "visit the scene footprint, sample 20 quadrats along two transects, \
         record canopy cover per quadrat",
        "ground-truthing for land-cover classifier validation",
    )?;
    println!("{}", g.catalog().process_by_name("P_field_survey")?);

    // One TM scene of the study area.
    let scene = SyntheticScene::generate(SceneSpec::small(7).sized(24, 24));
    let bbox = GeoBox::new(33.0, -3.0, 37.0, 1.0); // around Lake Victoria
    let t = AbsTime::from_ymd(1992, 2, 10)?;
    let scene_obj = g.insert_object(
        "tm",
        vec![
            ("data", Value::image(scene.bands[0].clone())),
            (SPATIAL, Value::GeoBox(bbox)),
            (TEMPORAL, Value::AbsTime(t)),
        ],
    )?;

    // Automatic firing is refused — there is no algorithm to fire.
    match g.run_process("P_field_survey", &[("scene", vec![scene_obj])]) {
        Err(e) => println!("\nautomatic firing refused: {e}"),
        Ok(_) => unreachable!("non-applicative processes cannot fire"),
    }

    // The scientist performs the procedure and records what was observed.
    let run = g.record_manual_task(
        "P_field_survey",
        &[("scene", vec![scene_obj])],
        vec![
            ("vegetation_pct", Value::Float8(42.5)),
            ("quadrats", Value::Int4(18)),
            ("surveyor", Value::Text("qiu".into())),
            ("scene_ref", Value::ObjRef(scene_obj.raw())),
            (SPATIAL, Value::GeoBox(bbox)),
            (TEMPORAL, Value::AbsTime(AbsTime::from_ymd(1992, 2, 17)?)),
        ],
        "two quadrats flooded and skipped; cover estimated visually",
    )?;
    let task = g.task(run.task)?.clone();
    println!("\nrecorded {task}");
    println!("procedure: {}", task.params["procedure"]);
    println!("notes:     {}", task.params["notes"]);

    // The observation has full lineage, like any computed object.
    let survey = run.outputs[0];
    println!("\nlineage of the survey object:");
    println!("{}", g.lineage(survey)?.render());
    let referenced = g.deref_attr(survey, "scene_ref")?;
    println!(
        "scene_ref dereferences to object {} at {}",
        referenced.id,
        referenced
            .timestamp()
            .map(|t| t.to_string())
            .unwrap_or_default()
    );

    // Reproduction is an audit: nothing to recompute, nothing diverged,
    // the unreplayable work is reported.
    g.record_experiment(
        "victoria_survey_92",
        "Feb 1992 ground truth",
        vec![run.task],
    )?;
    let rep = g.reproduce_experiment("victoria_survey_92")?;
    println!(
        "\nreproduction: faithful={}, rerun={}, audit notes={:?}",
        rep.is_faithful(),
        rep.tasks_rerun,
        rep.not_replayable
    );
    Ok(())
}
