//! Concepts with imprecise definitions: the desert example (paper §2.1.1,
//! §2.1.2, Figure 2).
//!
//! "Can we define what a DESERT or DESERTIC REGION is? [...] one scientist
//! may choose to derive a desertic region based on rainfall less than
//! 250mm, while another one choses 200mm for the same parameter. We make
//! the assumption that the same derivation method with different
//! parameters represents different processes."
//!
//! This example builds the Figure 2 schema, derives desert masks under both
//! parameterizations and compares them through the concept layer.
//!
//! ```sh
//! cargo run --example desert_classification
//! ```

use gaea::adt::{AbsTime, GeoBox, Image, Value};
use gaea::core::kernel::Gaea;
use gaea::core::{Query, QueryStrategy};
use gaea::workload::build_figure2_schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut g = Gaea::in_memory().with_user("yogneva");
    let names = build_figure2_schema(&mut g)?;
    println!(
        "Figure 2 schema: {} classes, {} processes, {} concepts",
        names.base_classes.len() + names.derived_classes.len(),
        names.processes.len(),
        names.concepts.len()
    );

    // Browse the concept hierarchy (§2.1.1's specialization DAG).
    let desert = g.catalog().concept_by_name("desert")?;
    println!("\nconcept 'desert': {}", desert.doc);
    for child in g.catalog().concept_children(desert.id) {
        println!("  ISA child: {} — {}", child.name, child.doc);
        for class in g.catalog().concept_member_classes(&child.name)? {
            println!("    member class: {} ({})", class.name, class.doc);
        }
    }

    // A synthetic rainfall grid over North Africa: a wet coast gradient
    // down to hyper-arid interior.
    let sahara = GeoBox::new(-15.0, 15.0, 35.0, 32.0);
    let t = AbsTime::from_ymd(1986, 6, 1)?;
    let rows = 48u32;
    let cols = 96u32;
    let rainfall: Vec<f64> = (0..rows * cols)
        .map(|i| {
            let r = (i / cols) as f64 / rows as f64; // 0 north → 1 south
            600.0 - 560.0 * r + ((i % 7) as f64) * 4.0
        })
        .collect();
    let rain_img = Image::from_f64(rows, cols, rainfall)?;
    g.insert_object(
        "rainfall",
        vec![
            ("data", Value::image(rain_img)),
            ("spatialextent", Value::GeoBox(sahara)),
            ("timestamp", Value::AbsTime(t)),
        ],
    )?;

    // Querying the *concept* derives through whichever member class has a
    // viable derivation; here both thresholds do.
    let q = Query::concept("hot_trade_wind_desert")
        .over(sahara)
        .with_strategy(QueryStrategy::PreferDerivation);
    let outcome = g.query(&q)?;
    println!(
        "\nconcept query answered by {:?} with {} object(s)",
        outcome.method,
        outcome.objects.len()
    );

    // Now derive explicitly under both parameterizations and compare.
    let rain_oid = g.objects_of("rainfall")?[0];
    let run250 = g.run_process("P2_desert_250", &[("rain", vec![rain_oid])])?;
    let run200 = g.run_process("P3_desert_200", &[("rain", vec![rain_oid])])?;
    let m250 = g.object(run250.outputs[0])?;
    let m200 = g.object(run200.outputs[0])?;
    let area = |o: &gaea::core::DataObject| {
        let img = o.attr("data").unwrap().as_image().unwrap().clone();
        (0..img.len()).filter(|i| img.get_flat(*i) > 0.0).count()
    };
    println!("\ndesert area at 250 mm threshold: {} px", area(&m250));
    println!("desert area at 200 mm threshold: {} px", area(&m200));
    println!(
        "same derivation? {} (different processes: {} vs {})",
        g.same_derivation(m250.id, m200.id)?,
        g.lineage(m250.id)?.signature(),
        g.lineage(m200.id)?.signature(),
    );

    // The looser threshold must classify at least as much desert.
    assert!(area(&m250) >= area(&m200));
    assert!(!g.same_derivation(m250.id, m200.id)?);
    // Both masks realize the same concept.
    let concept = g.catalog().concept_by_name("hot_trade_wind_desert")?;
    assert!(concept.has_member(m250.class));
    assert!(concept.has_member(m200.class));
    println!("\nboth masks are members of 'hot_trade_wind_desert'; the concept layer\nunifies them while the derivation layer keeps them distinct.");
    Ok(())
}
