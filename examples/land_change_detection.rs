//! Figure 5: the compound process `land-change-detection`.
//!
//! "A compound process is merely an abstraction [...] a compound process
//! cannot be directly applied, but must be expanded into its primitive
//! processes before actual derivation takes place."
//!
//! The pipeline: rectified TM at t₁ → unsupervised classification;
//! rectified TM at t₂ → unsupervised classification; the two land-cover
//! maps → change detection. One compound task records the umbrella, three
//! child tasks record the expansion.
//!
//! ```sh
//! cargo run --example land_change_detection
//! ```

use gaea::adt::{AbsTime, GeoBox, Value};
use gaea::core::kernel::Gaea;
use gaea::core::schema::StepSource;
use gaea::workload::{build_figure2_schema, SceneSpec, SyntheticScene};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut g = Gaea::in_memory().with_user("gennert");
    build_figure2_schema(&mut g)?;

    // Define the Figure 5 compound over the already-registered primitives:
    //   step0: P20(bands = outer arg 0)   → land_cover (t1)
    //   step1: P20(bands = outer arg 1)   → land_cover (t2)
    //   step2: P21(earlier = step0, later = step1) → land_cover_changes
    g.define_compound_process(
        "land_change_detection",
        "land_cover_changes",
        &[
            ("tm_t1".into(), "rectified_tm".into(), true, 3),
            ("tm_t2".into(), "rectified_tm".into(), true, 3),
        ],
        &[
            (
                "P20_unsupervised_classification".into(),
                vec![StepSource::OuterArg(0)],
            ),
            (
                "P20_unsupervised_classification".into(),
                vec![StepSource::OuterArg(1)],
            ),
            (
                "P21_change".into(),
                vec![StepSource::StepOutput(0), StepSource::StepOutput(1)],
            ),
        ],
        "Figure 5: land-change detection as a network of processes",
    )?;

    // Two epochs of the same scene, the second with a perturbed landscape.
    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let t1 = AbsTime::from_ymd(1986, 1, 15)?;
    let t2 = AbsTime::from_ymd(1991, 1, 15)?;
    let scene1 = SyntheticScene::generate(SceneSpec::small(10).sized(48, 48));
    let scene2 = SyntheticScene::generate(SceneSpec::small(11).sized(48, 48));
    let mut bands_t1 = Vec::new();
    let mut bands_t2 = Vec::new();
    for (epoch, scene, t, out) in [
        (1, &scene1, t1, &mut bands_t1),
        (2, &scene2, t2, &mut bands_t2),
    ] {
        for band in &scene.bands {
            out.push(g.insert_object(
                "rectified_tm",
                vec![
                    ("data", Value::image(band.clone())),
                    ("spatialextent", Value::GeoBox(africa)),
                    ("timestamp", Value::AbsTime(t)),
                ],
            )?);
        }
        println!("epoch {epoch}: stored {} rectified bands", out.len());
    }

    // Fire the compound process.
    let run = g.run_process(
        "land_change_detection",
        &[("tm_t1", bands_t1), ("tm_t2", bands_t2)],
    )?;
    let umbrella = g.task(run.task)?.clone();
    println!(
        "\ncompound task {} expanded into {} primitive task(s):",
        umbrella.id,
        umbrella.children.len()
    );
    for child in &umbrella.children {
        println!("  {}", g.task(*child)?);
    }

    let change = g.object(run.outputs[0])?;
    let img = change.attr("data").unwrap().as_image().unwrap().clone();
    let changed = (0..img.len()).filter(|i| img.get_flat(*i) != 0.0).count();
    println!(
        "\nchange map: {}x{} px, {:.1}% classified differently",
        img.nrow(),
        img.ncol(),
        100.0 * changed as f64 / img.len() as f64
    );

    // Lineage of the change map reaches all six TM bands through both
    // classifications.
    let tree = g.lineage(change.id)?;
    println!(
        "\nderivation tree ({} nodes, depth {}):",
        tree.size(),
        tree.depth()
    );
    println!("{}", tree.render());
    assert_eq!(tree.depth(), 3); // change ← landcover ← tm
    assert_eq!(g.ancestors(change.id)?.len(), 8); // 2 landcover + 6 bands
    assert_eq!(umbrella.children.len(), 3);
    Ok(())
}
