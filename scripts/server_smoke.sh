#!/usr/bin/env bash
# End-to-end smoke of the multi-session server (CI `server` job).
#
# Default mode: build the release `gaea-server` and `session_driver`,
# start a durable server on an ephemeral port, drive K=16 reader
# sessions racing a continuous writer for a bounded run, scrape the
# live `--stats` introspection endpoint mid-run (mandatory keys —
# sessions_live, reads_pinned, wal_appends, cache hit/miss — must be
# present, and the workload-driven ones nonzero), then shut the server
# down over the wire. The run fails on any protocol or statement
# error, on a nonzero server exit (the checked WAL flush is part of the
# exit status), or if `gaea-server --check` finds the log dirty after
# shutdown.
#
#   scripts/server_smoke.sh                 # live smoke (from repo root)
#   scripts/server_smoke.sh gate FILE.json  # only the bench p99 gate
#
# Gate mode reads a BENCH_q12_server.json produced by
# `scripts/bench_summary.sh q12_server server_` and enforces the
# tentpole's acceptance bound: with one writer continuously committing,
# K=16 reader p99 must stay within 3x the idle-writer baseline —
# snapshot-pinned reads must not block behind the commit path.

set -u

# ---- gate mode -------------------------------------------------------

gate() {
    local file="$1"
    python3 - "$file" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
rows = {s["id"]: s for s in doc["scenarios"]}
idle = rows["server_read_k16_idle"]["p99_ns"]
busy = rows["server_read_k16_busy"]["p99_ns"]
ratio = busy / idle if idle else float("inf")
print(f"q12 gate: k16 reader p99 idle={idle}ns busy={busy}ns ratio={ratio:.2f}")
if ratio > 3.0:
    print("q12 gate: FAIL — a busy writer blocks snapshot-pinned readers "
          "(p99 ratio > 3x)", file=sys.stderr)
    sys.exit(1)
print("q12 gate: ok (within 3x)")
EOF
}

if [ "${1:-}" = "gate" ]; then
    gate "${2:?usage: server_smoke.sh gate BENCH_q12_server.json}"
    exit $?
fi

# ---- live smoke ------------------------------------------------------

SERVER="target/release/gaea-server"
DRIVER="target/release/session_driver"
SCRATCH="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
    rm -rf "$SCRATCH"
}
trap cleanup EXIT

echo "building server and driver..."
cargo build --release --quiet --bin gaea-server --bin session_driver || exit 1

DATA="$SCRATCH/db"
LOG="$SCRATCH/server.log"

"$SERVER" --addr 127.0.0.1:0 --data "$DATA" --seed --max-sessions 32 \
    >"$LOG" 2>"$SCRATCH/server.err" &
SERVER_PID=$!

# The server prints "gaea-server listening on HOST:PORT" once bound.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^gaea-server listening on //p' "$LOG")"
    [ -n "$ADDR" ] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited before binding"
        cat "$SCRATCH/server.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL: server never reported its address"
    exit 1
fi
echo "server up at $ADDR (pid $SERVER_PID)"

# K=16 readers racing a continuous writer, backgrounded so the live
# stats endpoint can be scraped mid-run. The driver exits nonzero on
# any statement error.
"$DRIVER" --addr "$ADDR" --sessions 16 --reads 50 --writer &
DRIVER_PID=$!

# Mid-run introspection: one Stats round-trip must answer with the
# session counters and the process-wide metrics registry merged in.
STATS=""
for _ in $(seq 1 50); do
    if STATS="$("$DRIVER" --addr "$ADDR" --stats)"; then
        break
    fi
    STATS=""
    sleep 0.1
done
if [ -z "$STATS" ]; then
    echo "FAIL: could not scrape --stats from the live server"
    kill "$DRIVER_PID" 2>/dev/null
    exit 1
fi
printf '%s\n' "$STATS" | sed 's/^/stats: /'
for key in sessions_live reads_pinned wal_appends cache_hits cache_misses; do
    if ! printf '%s\n' "$STATS" | grep -q "^$key: "; then
        echo "FAIL: --stats output is missing mandatory key \"$key\""
        kill "$DRIVER_PID" 2>/dev/null
        exit 1
    fi
done
for key in reads_pinned wal_appends cache_hits cache_misses; do
    if printf '%s\n' "$STATS" | grep -q "^$key: 0$"; then
        echo "FAIL: --stats reports $key = 0 under a live workload"
        kill "$DRIVER_PID" 2>/dev/null
        exit 1
    fi
done
echo "stats scrape: ok (mandatory keys present and nonzero)"

if ! wait "$DRIVER_PID"; then
    echo "FAIL: session driver reported errors"
    exit 1
fi

# Graceful wire shutdown (one more tiny session, then Shutdown).
if ! "$DRIVER" --addr "$ADDR" --sessions 1 --reads 1 --shutdown; then
    echo "FAIL: shutdown driver reported errors"
    exit 1
fi

# The server's exit status carries the checked WAL flush verdict.
if ! wait "$SERVER_PID"; then
    echo "FAIL: server exited nonzero (checked WAL flush failed?)"
    cat "$SCRATCH/server.err" >&2
    exit 1
fi
SERVER_PID=""
grep "protocol errors" "$SCRATCH/server.err" || true

# Reopen the data directory: the log must have closed clean.
if ! "$SERVER" --data "$DATA" --check; then
    echo "FAIL: WAL dirty after graceful shutdown"
    exit 1
fi

echo "server smoke: ok"
