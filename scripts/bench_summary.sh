#!/usr/bin/env bash
# Produce a machine-readable summary of one criterion bench target.
#
# Runs the named bench once (the workspace-local criterion harness is
# already configured for short runs: 10 samples, ~1 s windows) with
# GAEA_BENCH_JSON pointed at a JSONL trail, then condenses the scenarios
# whose id starts with the given prefix into a single JSON document for
# the CI artifact trail.
#
# Usage: scripts/bench_summary.sh [bench] [id-prefix] [output.json] [metrics.json]
#
# Defaults preserve the original q6 invocation:
#   scripts/bench_summary.sh                       # q6 invalidation rows
#   scripts/bench_summary.sh q8_parallel refresh_all BENCH_q8_parallel.json
#
# The optional fourth argument is a gaea_obs metrics snapshot (the flat
# JSON object `MetricsRegistry::snapshot().to_json()` emits, e.g. via
# GAEA_METRICS_JSON on a bench run): selected counters — WAL appends and
# fsyncs, cache hits/misses and the derived hit rate — are merged into
# the published document under a "metrics" key, so the artifact trail
# records the I/O and cache behaviour behind the latency numbers.
set -euo pipefail

bench="${1:-q6_memoization}"
prefix="${2:-invalidation}"
# The historical zero-argument invocation wrote BENCH_q6_invalidation.json;
# keep that artifact name stable for tooling that predates the arguments.
if [ "$bench" = "q6_memoization" ] && [ "$prefix" = "invalidation" ]; then
    out="${3:-BENCH_q6_invalidation.json}"
else
    out="${3:-BENCH_${bench}.json}"
fi
jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT

metrics="${4:-}"
if [ -n "$metrics" ]; then
    # cargo runs bench binaries with cwd = the bench *package* dir, so a
    # relative GAEA_METRICS_JSON inherited from the environment would
    # land in crates/bench/ and the merge below would never see it. Pin
    # the dump to the path this script reads.
    export GAEA_METRICS_JSON="$(pwd)/$metrics"
fi

GAEA_BENCH_JSON="$jsonl" cargo bench --bench "$bench" >/dev/null

scenarios="$(grep "\"id\":\"$prefix" "$jsonl" | sed 's/^/    /' | sed '$!s/$/,/' || true)"
if [ -z "$scenarios" ]; then
    echo "bench_summary: no \"$prefix\" scenarios captured from $bench" >&2
    exit 1
fi

{
    echo '{'
    echo "  \"bench\": \"$bench\","
    echo "  \"commit\": \"${GITHUB_SHA:-unknown}\","
    echo "  \"timestamp\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo '  "unit": "ns",'
    echo '  "scenarios": ['
    printf '%s\n' "$scenarios"
    echo '  ]'
    echo '}'
} >"$out"

echo "bench_summary: wrote $out ($(grep -c '"id"' "$out") scenarios)"

# Codec deltas: when a scenario has a JSON-codec twin (same id with the
# "json" marker removed, e.g. wal_replay_10k_json → wal_replay_10k or
# wal_append_json_fsync_64 → wal_append_fsync_64), publish the
# JSON-over-binary median ratio under "deltas" — the artifact trail
# records the binary-codec speedup directly instead of leaving it to
# whoever reads the raw rows.
python3 - "$out" <<'EOF'
import json, re, sys

doc = json.load(open(sys.argv[1]))
rows = {s["id"]: s for s in doc.get("scenarios", [])}
deltas = {}
for sid, row in rows.items():
    base_id = re.sub(r"_json(?=[_/]|$)|(?<=_)json_", "", sid)
    if base_id == sid or base_id not in rows:
        continue
    base = rows[base_id]
    if not base.get("median_ns"):
        continue
    deltas[base_id.split("/")[0]] = {
        "json_median_ns": row["median_ns"],
        "binary_median_ns": base["median_ns"],
        "json_over_binary": round(row["median_ns"] / base["median_ns"], 3),
    }
if deltas:
    doc["deltas"] = deltas
    with open(sys.argv[1], "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"bench_summary: published {len(deltas)} codec delta(s)")
EOF

if [ -n "$metrics" ]; then
    if [ ! -f "$metrics" ]; then
        echo "bench_summary: metrics snapshot $metrics not found" >&2
        exit 1
    fi
    python3 - "$out" "$metrics" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
snap = json.load(open(sys.argv[2]))
keys = ("wal_appends", "wal_fsyncs", "cache_hits", "cache_misses", "cache_evictions")
sel = {k: snap[k] for k in keys if k in snap}
hits, misses = snap.get("cache_hits", 0), snap.get("cache_misses", 0)
lookups = hits + misses
sel["cache_hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
doc["metrics"] = sel
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"bench_summary: merged {len(sel)} metric(s) from {sys.argv[2]}")
EOF
fi
