#!/usr/bin/env bash
# Produce a machine-readable summary of the q6 invalidation benchmarks.
#
# Runs the q6_memoization bench once (the workspace-local criterion
# harness is already configured for short runs: 10 samples, ~1 s windows)
# with GAEA_BENCH_JSON pointed at a JSONL trail, then condenses the
# `invalidation_*` scenarios — cached hit, update_object invalidation at
# several recorded-history sizes, and the invalidate-then-re-derive cycle
# — into a single JSON document for the CI artifact trail.
#
# Usage: scripts/bench_summary.sh [output.json]
set -euo pipefail

out="${1:-BENCH_q6_invalidation.json}"
jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT

GAEA_BENCH_JSON="$jsonl" cargo bench --bench q6_memoization >/dev/null

scenarios="$(grep '"id":"invalidation' "$jsonl" | sed 's/^/    /' | sed '$!s/$/,/' || true)"
if [ -z "$scenarios" ]; then
    echo "bench_summary: no invalidation scenarios captured" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "q6_memoization",'
    echo "  \"commit\": \"${GITHUB_SHA:-unknown}\","
    echo "  \"timestamp\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo '  "unit": "ns",'
    echo '  "scenarios": ['
    printf '%s\n' "$scenarios"
    echo '  ]'
    echo '}'
} >"$out"

echo "bench_summary: wrote $out ($(grep -c '"id"' "$out") scenarios)"
