#!/usr/bin/env bash
# Fault-injection matrix for the durability tentpole (CI `crash` job).
#
# For every crash point the store's injector knows —
#   append    abort mid log append (a torn record on disk)
#   fsync     abort at a group-commit batch boundary, before the sync
#   truncate  abort during snapshot truncation, snapshot written but
#             the log not yet clipped
#   snapshot-write          abort on the background compactor thread
#                           mid snapshot write (half-written snap-*.tmp)
#   manifest-flip           abort with the snapshot complete but the
#                           CURRENT pointer still naming the old one
#   post-flip-pre-truncate  abort after the pointer flipped but before
#                           the covered log prefix is clipped
#   truncate-rewrite        abort mid prefix clip: the surviving suffix
#                           is staged in wal.log.clip but the rename
#                           over the live log has not happened
# — and several arming positions, run the deterministic workload in
# examples/crash_harness.rs until the injected abort kills the process,
# then reopen and verify the recovered state is the exact committed
# prefix. Finally re-run the workload to completion on the recovered
# directory and verify again: recovery must leave a store you can keep
# writing to, not just read.
#
# Usage: scripts/crash_matrix.sh  (run from the repo root)

set -u

HARNESS="target/release/examples/crash_harness"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
failures=0

echo "building crash harness..."
cargo build --release --example crash_harness --quiet || exit 1

# The fsync lane batches group commit (GAEA_FSYNC_EVERY=4) so the
# armed sync really is a batch boundary; the other lanes sync every
# event, the strictest setting.
fsync_batch() {
    case "$1" in
        fsync) echo 4 ;;
        *) echo 1 ;;
    esac
}

run_case() {
    local point="$1" after="$2"
    local dir="$SCRATCH/$point-$after"
    local batch
    batch="$(fsync_batch "$point")"
    rm -rf "$dir"

    # Phase 1: the workload must NOT survive — the injector aborts it.
    if GAEA_CRASH_POINT="$point" GAEA_CRASH_AFTER="$after" \
       GAEA_FSYNC_EVERY="$batch" "$HARNESS" workload "$dir" >/dev/null 2>&1; then
        echo "FAIL [$point/$after]: workload completed, injector never fired"
        failures=$((failures + 1))
        return
    fi

    # Phase 2: recovery must reconstruct the committed prefix.
    if ! GAEA_FSYNC_EVERY="$batch" "$HARNESS" verify "$dir"; then
        echo "FAIL [$point/$after]: recovery verification failed"
        failures=$((failures + 1))
        return
    fi

    # Phase 3: the recovered store stays writable — finish the workload
    # with injection off, then verify once more.
    if ! GAEA_FSYNC_EVERY="$batch" "$HARNESS" workload "$dir" >/dev/null; then
        echo "FAIL [$point/$after]: post-recovery workload failed"
        failures=$((failures + 1))
        return
    fi
    if ! GAEA_FSYNC_EVERY="$batch" "$HARNESS" verify "$dir" >/dev/null; then
        echo "FAIL [$point/$after]: post-recovery verification failed"
        failures=$((failures + 1))
        return
    fi
    echo "ok   [$point/$after]"
}

# The shutdown lane: the server's graceful-exit contract. With a large
# group-commit batch the log tail stays unsynced until the explicit
# checked close — so a clean `shutdown` run must report zero dropped
# bytes on verify, and an armed fsync crash (firing before the close
# can flush) must still recover to the committed prefix and then shut
# down clean on the retry.
run_shutdown_case() {
    local dir="$SCRATCH/shutdown"
    rm -rf "$dir"

    # Clean path: checked close syncs the whole unsynced tail.
    if ! GAEA_FSYNC_EVERY=64 "$HARNESS" shutdown "$dir" >/dev/null; then
        echo "FAIL [shutdown/clean]: checked close did not exit clean"
        failures=$((failures + 1))
        return
    fi
    local out
    if ! out="$(GAEA_FSYNC_EVERY=64 "$HARNESS" verify "$dir")"; then
        echo "FAIL [shutdown/clean]: verification failed"
        failures=$((failures + 1))
        return
    fi
    case "$out" in
        *"dropped_bytes=0"*) ;;
        *)
            echo "FAIL [shutdown/clean]: checked close left unsynced tail: $out"
            failures=$((failures + 1))
            return
            ;;
    esac
    echo "ok   [shutdown/clean]"

    # Crash path: the abort fires mid-batch, before the close can flush.
    if GAEA_CRASH_POINT=fsync GAEA_CRASH_AFTER=9 GAEA_FSYNC_EVERY=64 \
       "$HARNESS" shutdown "$dir" >/dev/null 2>&1; then
        echo "FAIL [shutdown/fsync-9]: shutdown survived, injector never fired"
        failures=$((failures + 1))
        return
    fi
    if ! GAEA_FSYNC_EVERY=64 "$HARNESS" verify "$dir"; then
        echo "FAIL [shutdown/fsync-9]: recovery verification failed"
        failures=$((failures + 1))
        return
    fi
    # The recovered store must still shut down clean.
    if ! GAEA_FSYNC_EVERY=64 "$HARNESS" shutdown "$dir" >/dev/null; then
        echo "FAIL [shutdown/fsync-9]: post-recovery checked close failed"
        failures=$((failures + 1))
        return
    fi
    if ! GAEA_FSYNC_EVERY=64 "$HARNESS" verify "$dir" >/dev/null; then
        echo "FAIL [shutdown/fsync-9]: post-recovery verification failed"
        failures=$((failures + 1))
        return
    fi
    echo "ok   [shutdown/fsync-9]"
}

for point in append fsync truncate; do
    for after in 1 5 9 17; do
        run_case "$point" "$after"
    done
done

# Background-compaction lanes. The worker-side points (snapshot-write,
# manifest-flip) fire on the compactor thread; post-flip-pre-truncate
# and truncate-rewrite fire at the commit-thread hand-off that clips
# the covered prefix (truncate-rewrite inside the clip itself, with
# the suffix staged but the rename not yet done). The injector clock
# is the event sequence at compaction time and the harness snapshots
# every 8 events, so the positions select which compaction in the run
# aborts.
for point in snapshot-write manifest-flip post-flip-pre-truncate truncate-rewrite; do
    for after in 1 9 17; do
        run_case "$point" "$after"
    done
done
run_shutdown_case

if [ "$failures" -ne 0 ]; then
    echo "crash matrix: $failures case(s) failed"
    exit 1
fi
echo "crash matrix: all cases recovered cleanly"
