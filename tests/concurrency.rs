//! Concurrency properties of the kernel.
//!
//! The paper's data-sharing goal implies several scientists reading one
//! catalog at once. These tests pin down what the kernel guarantees:
//! `Gaea` is `Send + Sync` (all operator and site callbacks are), shared
//! read-only access from many threads is safe, and derivation is
//! deterministic across threads — two scientists running the identical
//! task on identical inputs obtain value-identical objects.

use gaea::adt::{AbsTime, GeoBox, Value};
use gaea::core::kernel::Gaea;
use gaea::core::{Query, QueryMethod, QueryStrategy};
use gaea::lang::{lower_program, parse};
use gaea::workload::{SceneSpec, SyntheticScene};
use std::sync::Arc;

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";

const SCHEMA: &str = r#"
CLASS tm (
  ATTRIBUTES: data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
CLASS landcover (
  ATTRIBUTES:
    data = image;
    numclass = int4;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P20
)
DEFINE PROCESS P20 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;
      common(bands.timestamp);
    MAPPINGS:
      landcover.data = unsuperclassify(composite(bands), 12);
      landcover.numclass = 12;
      landcover.spatialextent = ANYOF bands.spatialextent;
      landcover.timestamp = ANYOF bands.timestamp;
  }
)
"#;

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

fn jan86() -> AbsTime {
    AbsTime::from_ymd(1986, 1, 15).unwrap()
}

fn loaded_kernel(seed: u64) -> Gaea {
    let mut g = Gaea::in_memory();
    lower_program(&mut g, &parse(SCHEMA).unwrap()).unwrap();
    let scene = SyntheticScene::generate(SceneSpec::small(seed).sized(16, 16));
    for b in &scene.bands {
        g.insert_object(
            "tm",
            vec![
                ("data", Value::image(b.clone())),
                (SPATIAL, Value::GeoBox(africa())),
                (TEMPORAL, Value::AbsTime(jan86())),
            ],
        )
        .unwrap();
    }
    g
}

#[test]
fn kernel_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Gaea>();
    assert_send_sync::<gaea::core::ExternalRegistry>();
    assert_send_sync::<gaea::adt::OperatorRegistry>();
}

#[test]
fn shared_readers_across_threads() {
    let mut g = loaded_kernel(5);
    // Materialize the derivation once, then share read-only.
    let q = Query::class("landcover")
        .at(jan86())
        .with_strategy(QueryStrategy::PreferDerivation);
    let out = g.query(&q).unwrap();
    assert_eq!(out.method, QueryMethod::Derived);
    let derived = out.objects[0].id;
    let g = Arc::new(g);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(s.spawn(move || {
                // Concurrent lineage walks, catalog browsing and object
                // loads over the shared kernel.
                let tree = g.lineage(derived).unwrap();
                assert_eq!(tree.size(), 4);
                let obj = g.object(derived).unwrap();
                assert_eq!(obj.attr("numclass"), Some(&Value::Int4(12)));
                let ddl = g.describe();
                assert!(ddl.contains("P20"));
                g.derivation_net().net.place_count()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
    });
}

#[test]
fn derivation_is_deterministic_across_threads() {
    // Four independent kernels on four threads, identical base data:
    // value-identical derived objects (the reproducibility requirement —
    // the classifier is seeded, the planner deterministic).
    let images: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut g = loaded_kernel(99);
                    let q = Query::class("landcover")
                        .at(jan86())
                        .with_strategy(QueryStrategy::PreferDerivation);
                    let out = g.query(&q).unwrap();
                    out.objects[0].attr("data").unwrap().clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for w in images.windows(2) {
        assert_eq!(w[0], w[1], "derivations diverged across threads");
    }
}
