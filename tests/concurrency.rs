//! Concurrency properties of the kernel.
//!
//! The paper's data-sharing goal implies several scientists reading one
//! catalog at once. These tests pin down what the kernel guarantees:
//! `Gaea` is `Send + Sync` (all operator and site callbacks are), shared
//! read-only access from many threads is safe, and derivation is
//! deterministic across threads — two scientists running the identical
//! task on identical inputs obtain value-identical objects.

use gaea::adt::{AbsTime, GeoBox, Value};
use gaea::core::kernel::Gaea;
use gaea::core::{Query, QueryMethod, QueryStrategy};
use gaea::lang::{lower_program, parse};
use gaea::workload::{SceneSpec, SyntheticScene};
use std::sync::Arc;

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";

const SCHEMA: &str = r#"
CLASS tm (
  ATTRIBUTES: data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
CLASS landcover (
  ATTRIBUTES:
    data = image;
    numclass = int4;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P20
)
DEFINE PROCESS P20 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;
      common(bands.timestamp);
    MAPPINGS:
      landcover.data = unsuperclassify(composite(bands), 12);
      landcover.numclass = 12;
      landcover.spatialextent = ANYOF bands.spatialextent;
      landcover.timestamp = ANYOF bands.timestamp;
  }
)
"#;

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

fn jan86() -> AbsTime {
    AbsTime::from_ymd(1986, 1, 15).unwrap()
}

fn loaded_kernel(seed: u64) -> Gaea {
    let mut g = Gaea::in_memory();
    lower_program(&mut g, &parse(SCHEMA).unwrap()).unwrap();
    let scene = SyntheticScene::generate(SceneSpec::small(seed).sized(16, 16));
    for b in &scene.bands {
        g.insert_object(
            "tm",
            vec![
                ("data", Value::image(b.clone())),
                (SPATIAL, Value::GeoBox(africa())),
                (TEMPORAL, Value::AbsTime(jan86())),
            ],
        )
        .unwrap();
    }
    g
}

#[test]
fn kernel_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Gaea>();
    assert_send_sync::<gaea::core::ExternalRegistry>();
    assert_send_sync::<gaea::adt::OperatorRegistry>();
}

#[test]
fn shared_readers_across_threads() {
    let mut g = loaded_kernel(5);
    // Materialize the derivation once, then share read-only.
    let q = Query::class("landcover")
        .at(jan86())
        .with_strategy(QueryStrategy::PreferDerivation);
    let out = g.query(&q).unwrap();
    assert_eq!(out.method, QueryMethod::Derived);
    let derived = out.objects[0].id;
    let g = Arc::new(g);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(s.spawn(move || {
                // Concurrent lineage walks, catalog browsing and object
                // loads over the shared kernel.
                let tree = g.lineage(derived).unwrap();
                assert_eq!(tree.size(), 4);
                let obj = g.object(derived).unwrap();
                assert_eq!(obj.attr("numclass"), Some(&Value::Int4(12)));
                let ddl = g.describe();
                assert!(ddl.contains("P20"));
                g.derivation_net().net.place_count()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
    });
}

#[test]
fn derivation_is_deterministic_across_threads() {
    // Four independent kernels on four threads, identical base data:
    // value-identical derived objects (the reproducibility requirement —
    // the classifier is seeded, the planner deterministic).
    let images: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut g = loaded_kernel(99);
                    let q = Query::class("landcover")
                        .at(jan86())
                        .with_strategy(QueryStrategy::PreferDerivation);
                    let out = g.query(&q).unwrap();
                    out.objects[0].attr("data").unwrap().clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for w in images.windows(2) {
        assert_eq!(w[0], w[1], "derivations diverged across threads");
    }
}

#[test]
fn shared_cache_hammered_from_many_threads_loses_nothing() {
    // Satellite of the gaea-sched work: `DerivedCache` sits behind a
    // shared handle so scheduler workers can look up, insert and evict
    // concurrently. Hammer it from N threads over disjoint key ranges
    // and assert no entry is lost, no lookup observes a torn entry, and
    // eviction removes exactly what it should.
    use gaea::core::kernel::{DerivedCache, SharedCache};
    use gaea::core::{ObjectId, ProcessId, TaskId};
    use gaea::store::Oid;

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 200;
    let cache = SharedCache::new();
    cache.set_enabled(true);

    let key_of = |t: u64, i: u64| {
        let input = ObjectId(Oid(1_000 * t + i));
        DerivedCache::canonical_key(ProcessId(Oid(t + 1)), &[("x".into(), vec![input])])
    };
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let cache = cache.clone();
            handles.push(s.spawn(move || {
                for i in 0..PER_THREAD {
                    let (hash, canonical) = key_of(t, i);
                    let input = ObjectId(Oid(1_000 * t + i));
                    let output = ObjectId(Oid(100_000 + 1_000 * t + i));
                    cache.insert(
                        hash,
                        canonical.clone(),
                        TaskId(Oid(10_000 * t + i)),
                        vec![(input, 1)],
                        vec![(output, 1)],
                    );
                    // The entry this thread just inserted must be
                    // observable immediately: no other thread touches
                    // this key range, so a miss here is a lost entry.
                    let (task, outputs) = cache
                        .lookup_where(hash, &canonical, |ins, outs| {
                            ins == [(input, 1)] && outs == [(output, 1)]
                        })
                        .expect("freshly inserted entry must hit");
                    assert_eq!(task, TaskId(Oid(10_000 * t + i)));
                    assert_eq!(outputs, vec![output]);
                    // Evict every fourth entry through the derivation
                    // edges, like an update_object would.
                    if i % 4 == 0 {
                        assert_eq!(cache.invalidate_object(input), 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    let expected_live = THREADS * (PER_THREAD - PER_THREAD.div_ceil(4));
    let stats = cache.stats();
    assert_eq!(stats.entries as u64, expected_live, "no lost entries");
    assert_eq!(stats.hits, THREADS * PER_THREAD, "every check-back hit");
    assert_eq!(stats.invalidations, THREADS * PER_THREAD.div_ceil(4));
    // Surviving entries are intact: lookups validate recorded versions.
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let (hash, canonical) = key_of(t, i);
            let hit = cache.lookup_where(hash, &canonical, |_, _| true);
            assert_eq!(hit.is_some(), i % 4 != 0, "thread {t} entry {i}");
        }
    }
}

#[test]
fn kernel_cache_handle_shares_state_with_the_kernel() {
    let mut g = loaded_kernel(11);
    g.enable_memoization(true);
    let handle = g.cache_handle();
    assert!(handle.enabled());
    // A derivation memoized through the kernel is visible through the
    // handle's stats, from another thread.
    let q = Query::class("landcover")
        .at(jan86())
        .with_strategy(QueryStrategy::PreferDerivation);
    g.query(&q).unwrap();
    g.query(&q).unwrap();
    let entries = std::thread::scope(|s| {
        let handle = handle.clone();
        s.spawn(move || handle.stats().entries).join().unwrap()
    });
    assert_eq!(entries, g.memoization_stats().entries);
}
