//! MVCC staleness detection end to end: version-validated memoization,
//! O(1)-in-history invalidation on `update_object`, step-1 retrieval
//! flagging stale derived objects, stale-aware task reuse, and the
//! `refresh_object` re-derivation path.
//!
//! The scenario throughout is the paper's Figure 3 chain
//! `tm --P20--> landcover` (optionally `--REFINE--> refined`): mutate a
//! base band after deriving, and every layer must notice — without ever
//! walking the recorded task history.

use gaea::adt::{AbsTime, GeoBox, Image, PixType, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::{ObjectId, Query, QueryMethod, QueryStrategy};

const SPATIAL_ATTR: &str = "spatialextent";
const TEMPORAL_ATTR: &str = "timestamp";

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

fn jan86() -> AbsTime {
    AbsTime::from_ymd(1986, 1, 15).unwrap()
}

/// The Figure 3 schema: tm (base) --P20--> landcover.
fn p20_kernel() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("tm").attr("data", TypeTag::Image))
        .unwrap();
    g.define_class(
        ClassSpec::derived("landcover")
            .attr("data", TypeTag::Image)
            .attr("numclass", TypeTag::Int4),
    )
    .unwrap();
    let template = Template {
        assertions: vec![
            Expr::eq(
                Expr::Card(Box::new(Expr::Arg("bands".into()))),
                Expr::int(3),
            ),
            Expr::Common(Box::new(Expr::proj("bands", "timestamp"))),
        ],
        mappings: vec![
            Mapping {
                attr: "data".into(),
                expr: Expr::apply(
                    "unsuperclassify",
                    vec![
                        Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                        Expr::int(12),
                    ],
                ),
            },
            Mapping {
                attr: "numclass".into(),
                expr: Expr::int(12),
            },
            Mapping {
                attr: SPATIAL_ATTR.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", "spatialextent"))),
            },
            Mapping {
                attr: TEMPORAL_ATTR.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", "timestamp"))),
            },
        ],
    };
    g.define_process(
        ProcessSpec::new("P20", "landcover")
            .setof_arg("bands", "tm", 3)
            .template(template),
    )
    .unwrap();
    g
}

/// p20_kernel plus a second derivation level: landcover --REFINE--> refined.
fn refine_kernel() -> Gaea {
    let mut g = p20_kernel();
    g.define_class(ClassSpec::derived("refined").attr("numclass", TypeTag::Int4))
        .unwrap();
    g.define_process(
        ProcessSpec::new("REFINE", "refined")
            .arg("src", "landcover")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::proj("src", "numclass"),
                }],
            }),
    )
    .unwrap();
    g
}

fn insert_band(g: &mut Gaea, fill: f64, t: AbsTime) -> ObjectId {
    g.insert_object(
        "tm",
        vec![
            (
                "data",
                Value::image(Image::filled(8, 8, PixType::Float8, fill)),
            ),
            (SPATIAL_ATTR, Value::GeoBox(africa())),
            (TEMPORAL_ATTR, Value::AbsTime(t)),
        ],
    )
    .unwrap()
}

fn touch_band(g: &mut Gaea, band: ObjectId, fill: f64) {
    g.update_object(
        band,
        vec![(
            "data",
            Value::image(Image::filled(8, 8, PixType::Float8, fill)),
        )],
    )
    .unwrap();
}

fn lc_query() -> Query {
    Query::class("landcover")
        .over(africa())
        .at(jan86())
        .with_strategy(QueryStrategy::PreferDerivation)
}

#[test]
fn base_objects_are_never_stale_derived_objects_turn_stale_on_input_mutation() {
    let mut g = p20_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let run = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    assert!(!g.is_stale(bands[0]), "base data is the current truth");
    assert!(!g.is_stale(run.outputs[0]), "fresh derivation is current");
    assert!(g.task_is_current(run.task).unwrap());

    touch_band(&mut g, bands[0], 99.0);
    assert!(
        !g.is_stale(bands[0]),
        "mutated base data is still base data"
    );
    assert!(g.is_stale(run.outputs[0]), "derived from pre-update inputs");
    assert!(!g.task_is_current(run.task).unwrap());
}

#[test]
fn staleness_propagates_through_derivation_chains() {
    let mut g = refine_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let lc = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let refined = g
        .run_process("REFINE", &[("src", lc.outputs.clone())])
        .unwrap();
    assert!(!g.is_stale(refined.outputs[0]));

    // Mutating the *base* band stales both derivation levels, even though
    // the intermediate landcover object itself was never written again.
    touch_band(&mut g, bands[1], 42.0);
    assert!(g.is_stale(lc.outputs[0]));
    assert!(
        g.is_stale(refined.outputs[0]),
        "transitive: refined's input lc is itself stale"
    );
}

#[test]
fn deleting_an_input_stales_the_derivation() {
    let mut g = p20_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let run = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    g.delete_object(bands[2]).unwrap();
    assert!(g.is_stale(run.outputs[0]), "a deleted input is a mutation");
}

#[test]
fn step1_retrieval_flags_stale_derived_objects_but_still_serves_them() {
    let mut g = p20_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let derived = g.query(&lc_query()).unwrap();
    assert_eq!(derived.method, QueryMethod::Derived);
    assert!(derived.stale.is_empty(), "fresh derivation: nothing stale");
    let lc = derived.objects[0].id;

    // The repeated query retrieves, current.
    let warm = g.query(&lc_query()).unwrap();
    assert_eq!(warm.method, QueryMethod::Retrieved);
    assert!(!warm.any_stale());

    // Mutate a band: the stored landcover is served as history, flagged.
    touch_band(&mut g, bands[0], 7.0);
    let flagged = g.query(&lc_query()).unwrap();
    assert_eq!(flagged.method, QueryMethod::Retrieved);
    assert_eq!(flagged.objects.len(), 1, "still servable");
    assert!(flagged.is_stale(lc), "but flagged stale");
    assert_eq!(flagged.stale, vec![lc]);
}

#[test]
fn refresh_object_refires_and_clears_the_flag() {
    let mut g = p20_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let first = g.run_process("P20", &[("bands", bands.clone())]).unwrap();

    // Refreshing a current object is a no-op returning the recorded run.
    let noop = g.refresh_object(first.outputs[0]).unwrap();
    assert_eq!(noop.task, first.task);

    touch_band(&mut g, bands[0], 99.0);
    assert!(g.is_stale(first.outputs[0]));
    let refreshed = g.refresh_object(first.outputs[0]).unwrap();
    assert_ne!(refreshed.task, first.task, "a fresh task was recorded");
    assert_ne!(
        refreshed.outputs, first.outputs,
        "a fresh object was derived"
    );
    assert!(
        !g.is_stale(refreshed.outputs[0]),
        "the new object is current"
    );
    assert!(g.is_stale(first.outputs[0]), "the old one remains history");

    // And the new object answers retrieval as a current result.
    let q = g.query(&lc_query()).unwrap();
    assert!(q.objects.iter().any(|o| o.id == refreshed.outputs[0]));
    assert!(!q.is_stale(refreshed.outputs[0]));
    assert!(q.is_stale(first.outputs[0]));
}

#[test]
fn refresh_object_refreshes_stale_inputs_recursively() {
    let mut g = refine_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let lc = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let refined = g
        .run_process("REFINE", &[("src", lc.outputs.clone())])
        .unwrap();

    touch_band(&mut g, bands[2], 5.0);
    let refreshed = g.refresh_object(refined.outputs[0]).unwrap();
    assert!(!g.is_stale(refreshed.outputs[0]));
    // The chain re-derived root-to-leaf: a fresh landcover was produced
    // and consumed, not the stale one.
    let new_refined = g.task(refreshed.task).unwrap().clone();
    let src = new_refined.inputs["src"].clone();
    assert_ne!(src, lc.outputs, "stale intermediate was re-derived first");
    assert!(!g.is_stale(src[0]));
}

#[test]
fn refresh_object_rejects_base_objects() {
    let mut g = p20_kernel();
    let band = insert_band(&mut g, 1.0, jan86());
    assert!(g.refresh_object(band).is_err());
}

#[test]
fn refresh_object_rematerializes_a_deleted_derived_object() {
    let mut g = p20_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let first = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    g.delete_object(first.outputs[0]).unwrap();
    // Not a no-op returning the dead OID: a fresh firing re-materializes.
    let refreshed = g.refresh_object(first.outputs[0]).unwrap();
    assert_ne!(refreshed.task, first.task);
    assert_ne!(refreshed.outputs, first.outputs);
    assert!(g.object(refreshed.outputs[0]).is_ok());
    assert!(!g.is_stale(refreshed.outputs[0]));
}

#[test]
fn refresh_object_rederives_a_shared_stale_input_once() {
    // DOUBLE consumes the same landcover through two scalar arguments;
    // refreshing its output after the base mutates must re-derive the
    // shared input exactly once and rebind both arguments to the same
    // fresh object.
    let mut g = p20_kernel();
    g.define_class(ClassSpec::derived("doubled").attr("numclass", TypeTag::Int4))
        .unwrap();
    g.define_process(
        ProcessSpec::new("DOUBLE", "doubled")
            .arg("a", "landcover")
            .arg("b", "landcover")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::proj("a", "numclass"),
                }],
            }),
    )
    .unwrap();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let lc = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let doubled = g
        .run_process(
            "DOUBLE",
            &[("a", lc.outputs.clone()), ("b", lc.outputs.clone())],
        )
        .unwrap();

    touch_band(&mut g, bands[0], 6.0);
    let p20_tasks_before = g
        .catalog()
        .tasks
        .values()
        .filter(|t| t.process_name == "P20")
        .count();
    let refreshed = g.refresh_object(doubled.outputs[0]).unwrap();
    let p20_tasks_after = g
        .catalog()
        .tasks
        .values()
        .filter(|t| t.process_name == "P20")
        .count();
    assert_eq!(
        p20_tasks_after,
        p20_tasks_before + 1,
        "the shared stale input re-derived exactly once"
    );
    let new_task = g.task(refreshed.task).unwrap();
    assert_eq!(
        new_task.inputs["a"], new_task.inputs["b"],
        "both arguments rebound to the same fresh object"
    );
    assert!(!g.is_stale(refreshed.outputs[0]));
}

#[test]
fn delete_object_refuses_while_referenced() {
    let mut g = p20_kernel();
    g.define_class(
        ClassSpec::base("report")
            .attr("numclass", TypeTag::Int4)
            .ref_attr("subject", "tm"),
    )
    .unwrap();
    let band = insert_band(&mut g, 1.0, jan86());
    let report = g
        .insert_object("report", vec![("subject", Value::ObjRef(band.raw()))])
        .unwrap();
    let err = g.delete_object(band).unwrap_err();
    assert!(err.to_string().contains("references it"), "{err}");
    // Drop the referencing object first; then the band deletes fine.
    g.delete_object(report).unwrap();
    g.delete_object(band).unwrap();
}

#[test]
fn memo_lookup_validates_versions_even_without_eager_edges() {
    // The gap the lazy check exists for: the REFINE memo entry is recorded
    // while the P20 derivation predates memoization, so the cache holds no
    // edge from the base bands to the REFINE entry. Mutating a band must
    // still falsify it — caught at lookup by the version/staleness check.
    let mut g = refine_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let lc = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    g.enable_memoization(true);
    let refined = g
        .run_process("REFINE", &[("src", lc.outputs.clone())])
        .unwrap();
    assert_eq!(g.memoization_stats().entries, 1);

    touch_band(&mut g, bands[0], 77.0);
    // Eager propagation cannot reach the entry (no P20 entry exists)…
    assert_eq!(g.memoization_stats().entries, 1);
    // …but the lookup rejects and evicts it, then re-derives.
    let rerun = g
        .run_process("REFINE", &[("src", lc.outputs.clone())])
        .unwrap();
    assert_ne!(rerun.task, refined.task, "stale memo was not served");
    let stats = g.memoization_stats();
    assert_eq!(stats.invalidations, 1);
    assert_eq!(stats.hits, 0);
}

#[test]
fn reuse_tasks_refuses_stale_recorded_derivations() {
    let mut g = p20_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let first = g.query(&lc_query()).unwrap();
    assert_eq!(first.method, QueryMethod::Derived);
    let first_task = first.tasks[0];

    // Stale + PreferDerivation with an exact-instant query: retrieval
    // still answers (history is servable), so force the derivation path
    // by deleting the stored landcover first.
    touch_band(&mut g, bands[0], 3.0);
    g.delete_object(first.objects[0].id).unwrap();
    let second = g.query(&lc_query()).unwrap();
    assert_eq!(second.method, QueryMethod::Derived);
    assert_ne!(
        second.tasks[0], first_task,
        "a stale recorded task must not be reused; the derivation re-fires"
    );
    assert!(!g.is_stale(second.objects[0].id));
}

#[test]
fn staleness_report_names_the_drifted_inputs() {
    let mut g = refine_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let lc = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let refined = g
        .run_process("REFINE", &[("src", lc.outputs.clone())])
        .unwrap();

    let report = g.staleness_report(refined.outputs[0]).unwrap();
    assert!(!report.stale);
    assert_eq!(report.chain.len(), 2, "REFINE task + P20 task");
    assert!(report.chain.iter().all(|t| t.current));

    touch_band(&mut g, bands[1], 50.0);
    let report = g.staleness_report(refined.outputs[0]).unwrap();
    assert!(report.stale);
    let p20 = report
        .chain
        .iter()
        .find(|t| t.process == "P20")
        .expect("P20 in chain");
    assert!(!p20.current);
    assert_eq!(p20.drifted_inputs.len(), 1);
    assert_eq!(p20.drifted_inputs[0].object, bands[1]);
    assert!(p20.drifted_inputs[0].current > p20.drifted_inputs[0].recorded);
    // REFINE's direct input (the landcover object) was never rewritten:
    // no local drift, but the task is transitively non-current.
    let refine = report
        .chain
        .iter()
        .find(|t| t.process == "REFINE")
        .expect("REFINE in chain");
    assert!(!refine.current);
    assert!(refine.drifted_inputs.is_empty());

    // Base objects: empty chain, never stale.
    let base = g.staleness_report(bands[0]).unwrap();
    assert!(!base.stale);
    assert!(base.chain.is_empty());
}

#[test]
fn stale_objects_lists_the_impact_set() {
    let mut g = refine_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let lc = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let refined = g
        .run_process("REFINE", &[("src", lc.outputs.clone())])
        .unwrap();
    assert!(g.stale_objects().is_empty());

    touch_band(&mut g, bands[0], 9.0);
    let mut stale = g.stale_objects();
    stale.sort();
    let mut expected = vec![lc.outputs[0], refined.outputs[0]];
    expected.sort();
    assert_eq!(stale, expected);
}

#[test]
fn lineage_dot_marks_stale_nodes() {
    let mut g = p20_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let run = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let clean = g.lineage_dot(run.outputs[0]).unwrap();
    assert!(!clean.contains("stale"));

    touch_band(&mut g, bands[0], 4.0);
    let marked = g.lineage_dot(run.outputs[0]).unwrap();
    assert!(marked.contains("(stale)"));
    assert!(marked.contains("khaki"));
}

#[test]
fn staleness_survives_save_and_load() {
    let dir = std::env::temp_dir().join(format!("gaea-staleness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut g = p20_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let run = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    touch_band(&mut g, bands[0], 8.0);
    assert!(g.is_stale(run.outputs[0]));
    g.save(&dir).unwrap();

    let mut back = Gaea::load(&dir).unwrap();
    assert!(
        back.is_stale(run.outputs[0]),
        "version fingerprints and counters both persisted"
    );
    assert!(!back.is_stale(bands[0]));
    // The refresh path works on the reloaded kernel too.
    let refreshed = back.refresh_object(run.outputs[0]).unwrap();
    assert!(!back.is_stale(refreshed.outputs[0]));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression (diamond across refresh calls): two derivations share one
/// stale upstream; refreshing each sink in its own `refresh_object`
/// call must re-derive the shared upstream exactly once, not once per
/// path. Before the refresh path consulted `reuse_tasks`, the second
/// call re-fired P20 again — an identical current derivation already
/// recorded by the first call — duplicating the experiment.
#[test]
fn refresh_object_rederives_a_diamond_shared_upstream_once_across_calls() {
    let mut g = refine_kernel();
    g.define_class(ClassSpec::derived("refined2").attr("numclass", TypeTag::Int4))
        .unwrap();
    g.define_process(
        ProcessSpec::new("REFINE2", "refined2")
            .arg("src", "landcover")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::proj("src", "numclass"),
                }],
            }),
    )
    .unwrap();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let lc = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let r1 = g
        .run_process("REFINE", &[("src", lc.outputs.clone())])
        .unwrap();
    let r2 = g
        .run_process("REFINE2", &[("src", lc.outputs.clone())])
        .unwrap();

    touch_band(&mut g, bands[0], 3.0);
    let p20_count = |g: &Gaea| {
        g.catalog()
            .tasks
            .values()
            .filter(|t| t.process_name == "P20")
            .count()
    };
    assert_eq!(p20_count(&g), 1);
    let f1 = g.refresh_object(r1.outputs[0]).unwrap();
    assert_eq!(p20_count(&g), 2, "first call re-derives the upstream");
    let f2 = g.refresh_object(r2.outputs[0]).unwrap();
    assert_eq!(
        p20_count(&g),
        2,
        "second call reuses the now-current upstream instead of re-firing"
    );
    // Both sinks rebound to the same fresh landcover.
    let t1 = g.task(f1.task).unwrap().clone();
    let t2 = g.task(f2.task).unwrap().clone();
    assert_eq!(t1.inputs["src"], t2.inputs["src"]);
    assert!(!g.is_stale(f1.outputs[0]));
    assert!(!g.is_stale(f2.outputs[0]));
}

/// `stale_objects()` is documented to return ascending-OID order, and
/// `refresh_all` relies on it for a reproducible schedule.
#[test]
fn stale_objects_is_oid_sorted_and_repeatable() {
    let mut g = refine_kernel();
    let bands: Vec<ObjectId> = (0..3)
        .map(|i| insert_band(&mut g, i as f64, jan86()))
        .collect();
    let lc = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let refined = g
        .run_process("REFINE", &[("src", lc.outputs.clone())])
        .unwrap();
    touch_band(&mut g, bands[2], 5.0);

    let stale = g.stale_objects();
    let mut sorted = stale.clone();
    sorted.sort();
    assert_eq!(stale, sorted, "ascending OID order");
    assert_eq!(stale, vec![lc.outputs[0], refined.outputs[0]]);
    assert_eq!(g.stale_objects(), stale, "repeatable call to call");
}
