//! Asynchronous derivation jobs (§5): non-blocking external-site firings.
//!
//! The paper's external processes run at remote sites and can take
//! minutes — "Gaea writes the task record when the result arrives" while
//! the interactive session stays responsive. These tests pin that
//! contract down end to end: `RETRIEVE … DERIVE ASYNC` returns a job id
//! immediately; synchronous queries on unrelated classes complete while
//! the job is still in flight; the committed task/object state after
//! `await_job` is byte-identical to a synchronous run; in-flight jobs
//! are visible (query `pending` lists, `DerivationPending` refusals,
//! submit dedup, `refresh_all` pending entries) instead of being
//! double-fired; and the whole surface survives N threads hammering
//! submit/cancel/await against one kernel.
//!
//! Sites are *gate-backed* (they block on a channel until the test
//! releases them), so every "while the job is in flight" assertion is
//! deterministic — no sleep-based timing assumptions.

use gaea::adt::{AbsTime, TypeTag, Value};
use gaea::core::external::SimulatedSite;
use gaea::core::kernel::{ClassSpec, Gaea, JobStatus, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::{JobId, KernelError, Query, QueryMethod, QueryStrategy};
use gaea::lang::Retrieve as _;
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn day(d: u32) -> AbsTime {
    AbsTime::from_ymd(1986, 1, d).unwrap()
}

/// The remote mapping: `v → 2·v`, shared by every site in this suite.
fn double_v(
    inputs: &gaea::core::external::ExternalInputs,
) -> gaea::core::KernelResult<BTreeMap<String, Value>> {
    let v = inputs["x"][0]
        .attr("v")
        .and_then(Value::as_i64)
        .unwrap_or(0);
    let mut out = BTreeMap::new();
    out.insert("v".to_string(), Value::Int4((v as i32) * 2));
    Ok(out)
}

/// A site that blocks on a channel until the test sends one release
/// token per execution — the deterministic stand-in for a slow remote
/// computation.
fn gated_site() -> (Arc<SimulatedSite>, Sender<()>) {
    let (tx, rx) = channel::<()>();
    let rx = Mutex::new(rx);
    let site = Arc::new(SimulatedSite::new("slow_site", move |_def, inputs| {
        rx.lock()
            .expect("gate receiver lock")
            .recv()
            .map_err(|_| KernelError::Template("site gate dropped".into()))?;
        double_v(inputs)
    }));
    (site, tx)
}

/// A kernel with `n_obs` timestamped base observations, an external
/// process `REMOTE: obs → remote_out` at `slow_site`, and an unrelated
/// `local` class for interactive queries.
fn job_kernel(site: Arc<SimulatedSite>, n_obs: u32) -> Gaea {
    let mut g = Gaea::in_memory();
    g.set_workers(1);
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_class(ClassSpec::derived("remote_out").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_class(
        ClassSpec::base("local")
            .attr("v", TypeTag::Int4)
            .no_extents(),
    )
    .unwrap();
    g.define_external_process(
        ProcessSpec::new("REMOTE", "remote_out").arg("x", "obs"),
        "slow_site",
    )
    .unwrap();
    g.register_site("slow_site", site);
    for i in 0..n_obs {
        g.insert_object(
            "obs",
            vec![
                ("v", Value::Int4(10 + i as i32)),
                ("timestamp", Value::AbsTime(day(1 + i))),
            ],
        )
        .unwrap();
    }
    g.insert_object("local", vec![("v", Value::Int4(1))])
        .unwrap();
    g
}

fn remote_task_count(g: &Gaea) -> usize {
    let pid = g.catalog().process_by_name("REMOTE").unwrap().id;
    g.catalog().tasks_of_process(pid).count()
}

// ----------------------------------------------------------------------
// The acceptance scenario
// ----------------------------------------------------------------------

/// `DERIVE ASYNC` returns a job id immediately; a synchronous query on
/// an unrelated class completes while the job is provably still in
/// flight; after `await_job` the committed task and object state is
/// byte-identical to a synchronous run of the same statement.
#[test]
fn async_submission_is_nonblocking_and_commits_identically() {
    let (site, gate) = gated_site();
    let mut g = job_kernel(site, 1);
    let out = g
        .retrieve("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap();
    assert_eq!(out.method, QueryMethod::Submitted);
    assert!(out.objects.is_empty(), "nothing computed yet");
    assert!(out.tasks.is_empty());
    let job = out.pending[0];
    assert!(!g.job_status(job).unwrap().is_terminal());

    // The site is still gated: an interactive query on an unrelated
    // class completes while the firing is in flight.
    let local = g.query(&Query::class("local")).unwrap();
    assert_eq!(local.method, QueryMethod::Retrieved);
    assert_eq!(local.objects.len(), 1);
    assert!(
        !g.job_status(job).unwrap().is_terminal(),
        "the job outlives the interactive query"
    );
    assert_eq!(remote_task_count(&g), 0, "no task record before the result");

    // Release the site; the result arrives and commits on await.
    gate.send(()).unwrap();
    let status = g.await_job(job, Duration::from_secs(10)).unwrap();
    let task = match status {
        JobStatus::Done(task) => task,
        other => panic!("expected Done, got {other:?}"),
    };

    // The synchronous twin: identical kernel, identical statement, site
    // released up front.
    let (site2, gate2) = gated_site();
    gate2.send(()).unwrap();
    let mut g2 = job_kernel(site2, 1);
    let sync = g2.retrieve("RETRIEVE * FROM remote_out DERIVE").unwrap();
    assert_eq!(sync.method, QueryMethod::Derived);

    // Byte-identical task records (ids, inputs, fingerprints, params,
    // seq, user — everything serde serializes)…
    let async_task = serde_json::to_string(g.task(task).unwrap()).unwrap();
    let sync_task = serde_json::to_string(g2.task(sync.tasks[0]).unwrap()).unwrap();
    assert_eq!(async_task, sync_task);
    // …and byte-identical committed objects, served the same way.
    let re = g.query(&Query::class("remote_out")).unwrap();
    let re2 = g2.query(&Query::class("remote_out")).unwrap();
    assert_eq!(re.objects, re2.objects);
    assert_eq!(re.objects[0].attr("v"), Some(&Value::Int4(20)));
    assert!(re.stale.is_empty() && re.pending.is_empty());
}

/// A local primitive derivation can be submitted too: the template
/// evaluates at submit time (local work is cheap) and the job is born
/// ready, committing at the next pump.
#[test]
fn primitive_submissions_commit_via_pump() {
    let (site, _gate) = gated_site();
    let mut g = job_kernel(site, 1);
    g.define_class(ClassSpec::derived("mid").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_process(
        ProcessSpec::new("LOCAL_COPY", "mid")
            .arg("x", "obs")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "v".into(),
                    expr: Expr::proj("x", "v"),
                }],
            }),
    )
    .unwrap();
    let job = g.retrieve_job("RETRIEVE * FROM mid DERIVE").unwrap();
    let status = g.await_job(job, Duration::from_secs(10)).unwrap();
    let task = status.task().expect("primitive job commits");
    assert_eq!(g.task(task).unwrap().process_name, "LOCAL_COPY");
    let out = g.query(&Query::class("mid")).unwrap();
    assert_eq!(out.objects[0].attr("v"), Some(&Value::Int4(10)));
}

// ----------------------------------------------------------------------
// Visibility of in-flight derivations
// ----------------------------------------------------------------------

/// Step-1 answers list in-flight jobs of the target class in
/// `QueryOutcome::pending`; once the job commits the pending list empties
/// and the answer grows.
#[test]
fn pending_jobs_are_visible_in_step1_outcomes() {
    let (site, gate) = gated_site();
    let mut g = job_kernel(site, 1);
    // A stored answer exists, so retrieval succeeds while the job flies.
    g.insert_object("remote_out", vec![("v", Value::Int4(5))])
        .unwrap();
    let job = g
        .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap();
    let out = g.query(&Query::class("remote_out")).unwrap();
    assert_eq!(out.method, QueryMethod::Retrieved);
    assert_eq!(out.objects.len(), 1);
    assert_eq!(
        out.pending,
        vec![job],
        "the in-flight derivation is visible"
    );
    // An unrelated class lists nothing.
    assert!(g.query(&Query::class("local")).unwrap().pending.is_empty());
    gate.send(()).unwrap();
    g.await_job(job, Duration::from_secs(10)).unwrap();
    let after = g.query(&Query::class("remote_out")).unwrap();
    assert!(after.pending.is_empty());
    assert_eq!(after.objects.len(), 2, "the job's output joined the answer");
}

/// A `Submitted` outcome's `pending` leads with the query's own job and
/// also lists every other in-flight job of the target class — the
/// documented contract of `QueryOutcome::pending`.
#[test]
fn submitted_outcomes_list_other_inflight_jobs_too() {
    let (site, gate) = gated_site();
    let mut g = job_kernel(site, 2);
    let other = g
        .retrieve_job("RETRIEVE * FROM remote_out WHERE AT \"1986-01-01\" DERIVE ASYNC")
        .unwrap();
    let out = g
        .retrieve("RETRIEVE * FROM remote_out WHERE AT \"1986-01-02\" DERIVE ASYNC")
        .unwrap();
    assert_eq!(out.method, QueryMethod::Submitted);
    let own = out.pending[0];
    assert_ne!(own, other, "different bindings are different jobs");
    assert!(
        out.pending.contains(&other),
        "the earlier in-flight job is listed too: {:?}",
        out.pending
    );
    gate.send(()).unwrap();
    gate.send(()).unwrap();
    for job in [own, other] {
        assert!(g
            .await_job(job, Duration::from_secs(10))
            .unwrap()
            .is_terminal());
    }
}

/// A synchronous derivation refuses to double-fire a derivation that is
/// already in flight: the walker surfaces `DerivationPending` with the
/// job id instead of recording a duplicate task.
#[test]
fn sync_derivation_refuses_inflight_duplicates() {
    let (site, gate) = gated_site();
    let mut g = job_kernel(site, 1);
    let job = g
        .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap();
    let err = g
        .query(&Query::class("remote_out").with_strategy(QueryStrategy::PreferDerivation))
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("in flight") && msg.contains(&format!("job#{}", job.0)),
        "error must name the pending job: {msg}"
    );
    assert_eq!(remote_task_count(&g), 0, "nothing was double-fired");
    gate.send(()).unwrap();
    g.await_job(job, Duration::from_secs(10)).unwrap();
    // Once committed, the same query is answered from the store.
    let out = g
        .query(&Query::class("remote_out").with_strategy(QueryStrategy::PreferDerivation))
        .unwrap();
    assert_eq!(out.method, QueryMethod::Retrieved);
    assert_eq!(remote_task_count(&g), 1);
}

/// Duplicate submissions of the identical derivation dedup to one job —
/// the in-flight mirror of the `reuse_tasks` guarantee — and after the
/// job commits, a re-submission reuses the recorded task as a job that
/// is born Done.
#[test]
fn duplicate_submissions_dedup_to_one_job() {
    let (site, gate) = gated_site();
    let mut g = job_kernel(site, 1);
    let first = g
        .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap();
    let second = g
        .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap();
    assert_eq!(first, second, "identical in-flight derivation: same job");
    assert_eq!(g.jobs().len(), 1);
    gate.send(()).unwrap();
    let done = g.await_job(first, Duration::from_secs(10)).unwrap();
    let task = done.task().unwrap();
    // Resubmission after completion: the recorded derivation answers —
    // a fresh job id, born Done with the same task, nothing re-fired.
    let third = g
        .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap();
    assert_ne!(third, first);
    assert_eq!(g.job_status(third).unwrap(), JobStatus::Done(task));
    assert_eq!(remote_task_count(&g), 1);
}

// ----------------------------------------------------------------------
// Cancellation
// ----------------------------------------------------------------------

#[test]
fn cancel_queued_and_running_jobs_never_record_tasks() {
    let (site, gate) = gated_site();
    let mut g = job_kernel(site, 2);
    g.set_job_workers(1);
    // Job 1 occupies the single worker; job 2 (a distinct derivation,
    // pinned by its timestamp) stays queued.
    let j1 = g
        .retrieve_job("RETRIEVE * FROM remote_out WHERE AT \"1986-01-01\" DERIVE ASYNC")
        .unwrap();
    let j2 = g
        .retrieve_job("RETRIEVE * FROM remote_out WHERE AT \"1986-01-02\" DERIVE ASYNC")
        .unwrap();
    assert_ne!(j1, j2, "different bindings are different jobs");
    // Cancel the queued job: it never reaches the site.
    assert_eq!(g.cancel_job(j2).unwrap(), JobStatus::Cancelled);
    // Cancel the running job: the worker's eventual result is discarded.
    assert_eq!(g.cancel_job(j1).unwrap(), JobStatus::Cancelled);
    gate.send(()).unwrap(); // release the discarded execution
    assert_eq!(
        g.await_job(j1, Duration::from_secs(10)).unwrap(),
        JobStatus::Cancelled
    );
    assert_eq!(
        g.await_job(j2, Duration::from_millis(10)).unwrap(),
        JobStatus::Cancelled
    );
    assert_eq!(remote_task_count(&g), 0, "no task record ever appeared");
}

#[test]
fn cancel_after_done_is_a_clean_noop() {
    let (site, gate) = gated_site();
    let mut g = job_kernel(site, 1);
    let job = g
        .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap();
    gate.send(()).unwrap();
    let done = g.await_job(job, Duration::from_secs(10)).unwrap();
    let task = done.task().unwrap();
    assert_eq!(g.cancel_job(job).unwrap(), JobStatus::Done(task));
    assert_eq!(g.job_status(job).unwrap(), JobStatus::Done(task));
    assert!(g.task(task).is_ok(), "the recorded task stays on the books");
    assert_eq!(remote_task_count(&g), 1);
}

// ----------------------------------------------------------------------
// Failure surfaces
// ----------------------------------------------------------------------

/// Errors a synchronous firing would raise before going remote surface
/// at submit time; errors from the remote execution surface as Failed.
#[test]
fn submit_time_and_run_time_failures_split_correctly() {
    let (site, gate) = gated_site();
    site.set_reachable(false);
    let mut g = job_kernel(site.clone(), 1);
    // Unreachable at submit: an error now, not a failed job — the
    // plannable net excludes processes of unreachable sites, exactly as
    // it does for a synchronous query.
    let err = g
        .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap_err();
    assert!(matches!(err, KernelError::DerivationImpossible(_)), "{err}");
    assert!(g.jobs().is_empty());
    // Failure *during* the round-trip: the job reports Failed, no task
    // record appears. (Dropping the gate makes the remote body error
    // deterministically, wherever in the round-trip the worker is.)
    site.set_reachable(true);
    let job = g
        .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap();
    drop(gate);
    let status = g.await_job(job, Duration::from_secs(10)).unwrap();
    match status {
        JobStatus::Failed(msg) => assert!(msg.contains("gate dropped"), "{msg}"),
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(remote_task_count(&g), 0);
}

#[test]
fn await_timeout_reports_the_nonterminal_status() {
    let (site, gate) = gated_site();
    let mut g = job_kernel(site, 1);
    let job = g
        .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
        .unwrap();
    let status = g.await_job(job, Duration::from_millis(40)).unwrap();
    assert!(
        !status.is_terminal(),
        "timeout returns the live status, not an error: {status:?}"
    );
    gate.send(()).unwrap();
    assert!(g
        .await_job(job, Duration::from_secs(10))
        .unwrap()
        .is_terminal());
}

#[test]
fn unknown_job_ids_error() {
    let (site, _gate) = gated_site();
    let mut g = job_kernel(site, 1);
    assert!(g.job_status(JobId(999)).is_err());
    assert!(g.await_job(JobId(999), Duration::from_millis(1)).is_err());
    assert!(g.cancel_job(JobId(999)).is_err());
}

/// A goal whose plan needs several firings cannot be one background job.
#[test]
fn multi_firing_plans_are_refused_at_submit() {
    let (site, _gate) = gated_site();
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_class(ClassSpec::derived("mid").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_class(ClassSpec::derived("deep").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_process(
        ProcessSpec::new("STEP1", "mid")
            .arg("x", "obs")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "v".into(),
                    expr: Expr::proj("x", "v"),
                }],
            }),
    )
    .unwrap();
    g.define_external_process(
        ProcessSpec::new("STEP2", "deep").arg("x", "mid"),
        "slow_site",
    )
    .unwrap();
    g.register_site("slow_site", site);
    g.insert_object("obs", vec![("v", Value::Int4(1))]).unwrap();
    let err = g
        .retrieve_job("RETRIEVE * FROM deep DERIVE ASYNC")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("2 firings"), "{msg}");
}

// ----------------------------------------------------------------------
// refresh_all × in-flight jobs (regression: no re-fire mid-refresh)
// ----------------------------------------------------------------------

/// A stale derivation whose re-fire is already in flight as a background
/// job is reported in `RefreshReport::pending`, never re-fired by the
/// wave stage; once the job commits, a later refresh *reuses* its task.
/// Exercised at 1 and 4 wave-workers — the wave stage must not race the
/// job either way.
#[test]
fn refresh_all_reports_inflight_jobs_as_pending_not_refired() {
    for workers in [1usize, 4] {
        let (site, gate) = gated_site();
        let mut g = job_kernel(site, 1);
        g.set_workers(workers);
        // Synchronous first derivation, then stale it.
        gate.send(()).unwrap();
        let out = g.retrieve("RETRIEVE * FROM remote_out DERIVE").unwrap();
        let derived = out.objects[0].id;
        let obs = g.objects_of("obs").unwrap()[0];
        g.update_object(obs, vec![("v", Value::Int4(99))]).unwrap();
        assert!(g.is_stale(derived));
        // Background refresh: the stored-but-stale goal resolves through
        // its producer; the stale prior pins the same bindings.
        let job = g
            .retrieve_job("RETRIEVE * FROM remote_out DERIVE ASYNC")
            .unwrap();
        assert!(!g.job_status(job).unwrap().is_terminal());
        // `refresh_object` (and therefore a FRESH query over the stale
        // hit) refuses to race the job with a second round-trip.
        let err = g.refresh_object(derived).unwrap_err();
        assert!(
            matches!(err, KernelError::DerivationPending { .. }),
            "workers={workers}: {err}"
        );
        let err = g.retrieve("RETRIEVE * FROM remote_out FRESH").unwrap_err();
        assert!(err.to_string().contains("in flight"), "{err}");
        // Refresh while the job is in flight: pending, not re-fired.
        let report = g.refresh_all().unwrap();
        assert_eq!(report.runs.len(), 0, "workers={workers}: nothing re-fired");
        assert_eq!(report.pending, vec![(derived, job)]);
        assert_eq!(remote_task_count(&g), 1, "only the original task exists");
        // Let the job land, then refresh again: the stale object's
        // re-derivation is *reused* from the job's committed task.
        gate.send(()).unwrap();
        let status = g.await_job(job, Duration::from_secs(10)).unwrap();
        let task = status.task().expect("job commits");
        let report2 = g.refresh_all().unwrap();
        assert!(report2.pending.is_empty());
        assert_eq!(report2.runs.len(), 1);
        assert_eq!(report2.runs[0].task, task);
        assert_eq!(
            remote_task_count(&g),
            2,
            "workers={workers}: original + the job's refresh, exactly once"
        );
    }
}

// ----------------------------------------------------------------------
// Concurrency hammer
// ----------------------------------------------------------------------

/// N threads submitting, cancelling and awaiting jobs against one
/// kernel: every job reaches a terminal state, no task record is lost,
/// none is duplicated (the recorded REMOTE tasks are exactly the
/// distinct tasks of Done jobs), and cancel-after-done never unseats a
/// record.
#[test]
fn job_hammer_many_threads_no_lost_or_duplicate_records() {
    const THREADS: u32 = 8;
    const ROUNDS: usize = 3;
    let site = Arc::new(
        SimulatedSite::new("slow_site", |_def, inputs| double_v(inputs))
            .with_latency(Duration::from_millis(2)),
    );
    let g = Arc::new(Mutex::new(job_kernel(site, THREADS)));
    let results: Mutex<Vec<(JobId, JobStatus)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for k in 0..THREADS {
            let g = &g;
            let results = &results;
            s.spawn(move || {
                // One derivation per thread, pinned by timestamp; rounds
                // resubmit it (dedup / reuse across rounds is expected).
                let stmt = format!(
                    "RETRIEVE * FROM remote_out WHERE AT \"1986-01-{:02}\" DERIVE ASYNC",
                    1 + k
                );
                for round in 0..ROUNDS {
                    let id = g.lock().unwrap().retrieve_job(&stmt).unwrap();
                    if (k as usize + round).is_multiple_of(3) {
                        let _ = g.lock().unwrap().cancel_job(id).unwrap();
                    }
                    let status = g
                        .lock()
                        .unwrap()
                        .await_job(id, Duration::from_secs(30))
                        .unwrap();
                    assert!(status.is_terminal(), "thread {k} round {round}: {status:?}");
                    results.lock().unwrap().push((id, status));
                }
            });
        }
    });
    let mut g = Arc::try_unwrap(g)
        .ok()
        .expect("threads joined")
        .into_inner()
        .unwrap();
    let results = results.into_inner().unwrap();
    assert_eq!(results.len(), (THREADS as usize) * ROUNDS);
    // Every job the kernel knows about is terminal.
    let listed = g.jobs();
    for (id, status) in &listed {
        assert!(status.is_terminal(), "{id}: {status:?}");
    }
    // No lost records: every Done job's task is on the books; no
    // duplicates: the recorded tasks are exactly the distinct Done tasks.
    let done_tasks: std::collections::BTreeSet<_> =
        listed.iter().filter_map(|(_, s)| s.task()).collect();
    for task in &done_tasks {
        assert!(g.task(*task).is_ok(), "lost task record {task}");
    }
    assert_eq!(remote_task_count(&g), done_tasks.len());
}
