//! Experiment Q2 — §2.1.6 reachability and backward chaining at scale,
//! with property-based invariants on random derivation structures.

use gaea::petri::backward::{plan_derivation, plan_derivation_multi};
use gaea::petri::reachability::{coverable, derivable};
use gaea::petri::{FiringMode, Marking};
use gaea::workload::{random_derivation_catalog, RandDagSpec};
use proptest::prelude::*;

#[test]
fn planning_succeeds_across_shapes() {
    for depth in [1usize, 3, 6, 10] {
        for width in [2usize, 4, 8] {
            let spec = RandDagSpec {
                depth,
                width,
                alternatives: 2,
                fan_in: 3,
                threshold_max: 2,
                seed: depth as u64 * 100 + width as u64,
            };
            let rd = random_derivation_catalog(spec);
            // Plenty of base data: always plannable.
            let marking = rd.base_marking(8);
            let plan = plan_derivation(&rd.net, &marking, rd.goal, 1)
                .unwrap_or_else(|e| panic!("depth {depth} width {width}: {e:?}"));
            let end = plan.execute(&rd.net, &marking);
            assert!(end.get(rd.goal) >= 1);
        }
    }
}

#[test]
fn multi_goal_planning_covers_every_goal() {
    let rd = random_derivation_catalog(RandDagSpec {
        depth: 5,
        width: 5,
        ..RandDagSpec::default()
    });
    let marking = rd.base_marking(6);
    let goals: Vec<(gaea::petri::PlaceId, u64)> = rd.layers[5].iter().map(|p| (*p, 1)).collect();
    let plan = plan_derivation_multi(&rd.net, &marking, &goals).unwrap();
    let end = plan.execute(&rd.net, &marking);
    for (goal, need) in goals {
        assert!(end.get(goal) >= need);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: whatever the planner claims is derivable, the count-level
    /// reachability semantics agree and the plan executes to the goal.
    #[test]
    fn plan_implies_reachability(
        depth in 1usize..5,
        width in 1usize..4,
        alternatives in 1usize..3,
        threshold_max in 1u64..3,
        base_tokens in 0u64..4,
        seed in 0u64..500,
    ) {
        let spec = RandDagSpec {
            depth,
            width,
            alternatives,
            fan_in: 2,
            threshold_max,
            seed,
        };
        let rd = random_derivation_catalog(spec);
        let marking = rd.base_marking(base_tokens);
        if let Ok(plan) = plan_derivation(&rd.net, &marking, rd.goal, 1) {
            let want = Marking::from_counts(&rd.net, &[(rd.goal, 1)]);
            prop_assert!(derivable(&rd.net, &marking, &want));
            let end = plan.execute(&rd.net, &marking);
            prop_assert!(end.get(rd.goal) >= 1);
            // Gaea firing preserved every base token.
            for b in &rd.base {
                prop_assert_eq!(end.get(*b), marking.get(*b));
            }
        }
    }

    /// Failure diagnosis always blames something real: a base place or an
    /// orphan derived place.
    #[test]
    fn failures_carry_a_frontier(
        depth in 1usize..4,
        width in 1usize..4,
        seed in 0u64..300,
    ) {
        let spec = RandDagSpec {
            depth,
            width,
            alternatives: 1,
            fan_in: 2,
            threshold_max: 3,
            seed,
        };
        let rd = random_derivation_catalog(spec);
        let marking = rd.base_marking(0); // nothing stored
        match plan_derivation(&rd.net, &marking, rd.goal, 1) {
            Ok(plan) => prop_assert!(plan.is_empty(), "no tokens, yet a non-empty plan"),
            Err(failure) => {
                prop_assert!(
                    !failure.missing_base.is_empty() || !failure.underivable.is_empty()
                );
                for p in &failure.missing_base {
                    prop_assert!(rd.net.place(*p).unwrap().is_base);
                }
                for p in &failure.underivable {
                    prop_assert!(!rd.net.place(*p).unwrap().is_base);
                }
            }
        }
    }

    /// Gaea-mode coverability (token-preserving BFS) agrees with the
    /// saturation-based `derivable` on small nets.
    #[test]
    fn bfs_and_saturation_agree(
        depth in 1usize..3,
        width in 1usize..3,
        base_tokens in 0u64..3,
        seed in 0u64..200,
    ) {
        let spec = RandDagSpec {
            depth,
            width,
            alternatives: 1,
            fan_in: 2,
            threshold_max: 2,
            seed,
        };
        let rd = random_derivation_catalog(spec);
        let marking = rd.base_marking(base_tokens);
        let want = Marking::from_counts(&rd.net, &[(rd.goal, 1)]);
        let sat = derivable(&rd.net, &marking, &want);
        let bfs = coverable(&rd.net, &marking, &want, FiringMode::GaeaPreserving, 200_000)
            .expect("bounded nets stay within the state budget");
        prop_assert_eq!(sat, bfs);
    }

    /// Monotonicity: adding base tokens never makes a derivable goal
    /// underivable (the Gaea net is monotone).
    #[test]
    fn more_data_never_hurts(
        depth in 1usize..4,
        width in 1usize..4,
        base_tokens in 0u64..3,
        seed in 0u64..200,
    ) {
        let spec = RandDagSpec {
            depth,
            width,
            alternatives: 2,
            fan_in: 2,
            threshold_max: 2,
            seed,
        };
        let rd = random_derivation_catalog(spec);
        let small = rd.base_marking(base_tokens);
        let big = rd.base_marking(base_tokens + 2);
        if plan_derivation(&rd.net, &small, rd.goal, 1).is_ok() {
            prop_assert!(plan_derivation(&rd.net, &big, rd.goal, 1).is_ok());
        }
    }
}
