//! §4.3 extension — interactive processes (supervised classification).
//!
//! The paper: "interaction cannot be specified in the process definition
//! [...] A typical example is supervised classification. This process
//! requires interaction with the scientist before a task completes the
//! derivation of the output land cover classification data. We have not
//! yet developed methods to express such interactions in a process."
//!
//! These tests drive the method this reproduction adds: an interactive
//! process declares a `PARAM` interaction point with a composite preview;
//! a scripted scientist digitizes training sites from the preview; the
//! finished task records the answers and replays faithfully without the
//! scientist present.

use gaea::adt::{AbsTime, GeoBox, Matrix, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::task::TaskKind;
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::{KernelError, ObjectId, Query, QueryStrategy};
use gaea::raster::composite;
use gaea::raster::supervised::{signatures_from_training, TrainingSite};
use gaea::workload::{SceneSpec, SyntheticScene};

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

fn jan86() -> AbsTime {
    AbsTime::from_ymd(1986, 1, 15).unwrap()
}

/// Kernel with `tm` (base) and `landcover_sup` derived by the interactive
/// supervised-classification process `P_super`:
///
/// ```text
/// DEFINE PROCESS P_super (
///   OUTPUT landcover_sup
///   ARGUMENT ( SETOF bands tm )
///   INTERACTIONS {
///     PARAM signatures : matrix
///       PREVIEW composite(bands); // digitize training sites
///   }
///   TEMPLATE {
///     ASSERTIONS: card(bands) = 3; common(bands.timestamp);
///     MAPPINGS:   out.data = superclassify(composite(bands), PARAM signatures); ...
///   }
/// )
/// ```
fn supervised_kernel() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("tm").attr("data", TypeTag::Image))
        .unwrap();
    g.define_class(
        ClassSpec::derived("landcover_sup")
            .attr("data", TypeTag::Image)
            .attr("numclass", TypeTag::Int4),
    )
    .unwrap();
    let template = Template {
        assertions: vec![
            Expr::eq(
                Expr::Card(Box::new(Expr::Arg("bands".into()))),
                Expr::int(3),
            ),
            Expr::Common(Box::new(Expr::proj("bands", TEMPORAL))),
        ],
        mappings: vec![
            Mapping {
                attr: "data".into(),
                expr: Expr::apply(
                    "superclassify",
                    vec![
                        Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                        Expr::param("signatures"),
                    ],
                ),
            },
            Mapping {
                attr: "numclass".into(),
                expr: Expr::Card(Box::new(Expr::Arg("bands".into()))),
            },
            Mapping {
                attr: SPATIAL.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", SPATIAL))),
            },
            Mapping {
                attr: TEMPORAL.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", TEMPORAL))),
            },
        ],
    };
    g.define_process(
        ProcessSpec::new("P_super", "landcover_sup")
            .setof_arg("bands", "tm", 3)
            .template(template)
            .interact_preview(
                "signatures",
                "inspect the composite and digitize training-site signatures",
                TypeTag::Matrix,
                Expr::apply("composite", vec![Expr::Arg("bands".into())]),
            )
            .doc("supervised classification (paper §4.3 example)"),
    )
    .unwrap();
    g
}

fn insert_scene(g: &mut Gaea, scene: &SyntheticScene) -> Vec<ObjectId> {
    scene
        .bands
        .iter()
        .map(|b| {
            g.insert_object(
                "tm",
                vec![
                    ("data", Value::image(b.clone())),
                    (SPATIAL, Value::GeoBox(africa())),
                    (TEMPORAL, Value::AbsTime(jan86())),
                ],
            )
            .unwrap()
        })
        .collect()
}

/// The scripted scientist: pick a few training pixels per ground-truth
/// class and compute signatures from the *preview* images, exactly as a
/// human would from the screen.
fn digitize(scene: &SyntheticScene, preview: &Value) -> Matrix {
    let imgs = preview.as_set().expect("preview is a composite band set");
    let bands: Vec<_> = imgs
        .iter()
        .map(|v| v.as_image().expect("band").as_ref().clone())
        .collect();
    let refs: Vec<&gaea::adt::Image> = bands.iter().collect();
    let stack = composite(&refs).unwrap();
    let k = scene.spec.classes;
    let mut sites: Vec<TrainingSite> = (0..k).map(|c| TrainingSite::new(c, vec![])).collect();
    for (p, label) in scene.truth.iter().enumerate() {
        if sites[*label as usize].pixels.len() < 8 {
            sites[*label as usize].pixels.push(p);
        }
    }
    signatures_from_training(&stack, k, &sites).unwrap()
}

#[test]
fn interactive_session_end_to_end() {
    let mut g = supervised_kernel();
    let scene = SyntheticScene::generate(SceneSpec::small(42).sized(16, 16));
    let bands = insert_scene(&mut g, &scene);

    let mut session = g
        .begin_interactive("P_super", &[("bands", bands.clone())])
        .unwrap();
    // One point pending, with the composite preview.
    assert_eq!(session.remaining(), 1);
    let point = session.pending().unwrap().clone();
    assert_eq!(point.param, "signatures");
    assert!(point.prompt.contains("training"));
    let preview = g.interaction_preview(&session).unwrap().unwrap();
    assert!(
        preview.as_set().is_some(),
        "composite preview is a band set"
    );

    // The scientist answers from the preview.
    let signatures = digitize(&scene, &preview);
    session.supply(Value::matrix(signatures)).unwrap();
    assert!(session.is_ready());
    assert!(g.interaction_preview(&session).unwrap().is_none());

    let run = g.finish_interactive(session).unwrap();
    let task = g.task(run.task).unwrap().clone();
    assert_eq!(task.kind, TaskKind::Interactive);
    assert!(task.params.contains_key("signatures"), "answer recorded");
    assert_eq!(task.inputs["bands"], bands);

    // The classification is real: labels match the synthetic ground truth
    // almost everywhere (supervision sees the true classes).
    let out = g.object(run.outputs[0]).unwrap();
    let labels = out.attr("data").unwrap().as_image().unwrap();
    let score = scene.score(labels);
    assert!(score > 0.9, "supervised purity {score}");
    assert_eq!(out.attr("numclass"), Some(&Value::Int4(3)));
    assert_eq!(out.timestamp(), Some(jan86()));
}

#[test]
fn interactive_tasks_replay_without_the_scientist() {
    let mut g = supervised_kernel();
    let scene = SyntheticScene::generate(SceneSpec::small(7).sized(12, 12));
    let bands = insert_scene(&mut g, &scene);
    let mut session = g.begin_interactive("P_super", &[("bands", bands)]).unwrap();
    let preview = g.interaction_preview(&session).unwrap().unwrap();
    session
        .supply(Value::matrix(digitize(&scene, &preview)))
        .unwrap();
    let run = g.finish_interactive(session).unwrap();
    g.record_experiment("supervised_jan86", "supervised landcover", vec![run.task])
        .unwrap();
    // Reproduction replays the mapping with the recorded answers — no
    // interaction needed, no divergence observed.
    let rep = g.reproduce_experiment("supervised_jan86").unwrap();
    assert!(rep.is_faithful(), "{rep:?}");
    assert_eq!(rep.tasks_rerun, 1);
    assert!(!rep.has_unreplayable());
}

#[test]
fn interactive_processes_refuse_automatic_firing() {
    let mut g = supervised_kernel();
    let scene = SyntheticScene::generate(SceneSpec::small(3).sized(8, 8));
    let bands = insert_scene(&mut g, &scene);
    // Direct firing is refused: the process declares interactions.
    let err = g.run_process("P_super", &[("bands", bands)]).unwrap_err();
    assert!(matches!(err, KernelError::NotAutoFirable { .. }), "{err}");
    // The automatic query planner must not plan through it either: with
    // P_super the only process into landcover_sup, derivation fails
    // gracefully instead of silently skipping the scientist.
    let q = Query::class("landcover_sup").with_strategy(QueryStrategy::PreferDerivation);
    let err = g.query(&q).unwrap_err();
    assert!(
        matches!(
            err,
            KernelError::DerivationImpossible(_) | KernelError::NoData(_)
        ),
        "{err}"
    );
}

#[test]
fn session_validates_answers_and_completion() {
    let mut g = supervised_kernel();
    let scene = SyntheticScene::generate(SceneSpec::small(5).sized(8, 8));
    let bands = insert_scene(&mut g, &scene);
    let mut session = g
        .begin_interactive("P_super", &[("bands", bands.clone())])
        .unwrap();
    // Wrong type is rejected, session state unharmed.
    assert!(session.supply(Value::Int4(3)).is_err());
    assert_eq!(session.answered(), 0);
    // Finishing early is refused with the pending parameter named.
    let early = g.finish_interactive(session).unwrap_err();
    match early {
        KernelError::InteractionPending { process, param } => {
            assert_eq!(process, "P_super");
            assert_eq!(param, "signatures");
        }
        other => panic!("unexpected {other}"),
    }
    // Sessions on non-interactive processes are refused.
    assert!(g.begin_interactive("nope", &[]).is_err());
    // Bad bindings are caught at session start (min_card 3).
    let err = g
        .begin_interactive("P_super", &[("bands", vec![bands[0]])])
        .unwrap_err();
    assert!(err.to_string().contains("at least 3"), "{err}");
}

#[test]
fn different_answers_are_different_derivations() {
    // The paper's parameter rule extends to interaction answers: two tasks
    // with different supplied signatures are different derivations.
    let mut g = supervised_kernel();
    let scene = SyntheticScene::generate(SceneSpec::small(11).sized(12, 12));
    let bands = insert_scene(&mut g, &scene);

    let mut s1 = g
        .begin_interactive("P_super", &[("bands", bands.clone())])
        .unwrap();
    let preview = g.interaction_preview(&s1).unwrap().unwrap();
    let honest = digitize(&scene, &preview);
    s1.supply(Value::matrix(honest.clone())).unwrap();
    let r1 = g.finish_interactive(s1).unwrap();

    // A second scientist mislabels the classes (swaps two signature rows).
    let mut swapped_rows = Matrix::zeros(honest.rows(), honest.cols());
    for r in 0..honest.rows() {
        let src = if r == 0 {
            1
        } else if r == 1 {
            0
        } else {
            r
        };
        for c in 0..honest.cols() {
            swapped_rows.set(r, c, honest.get(src, c));
        }
    }
    let mut s2 = g.begin_interactive("P_super", &[("bands", bands)]).unwrap();
    s2.supply(Value::matrix(swapped_rows)).unwrap();
    let r2 = g.finish_interactive(s2).unwrap();

    let t1 = g.task(r1.task).unwrap();
    let t2 = g.task(r2.task).unwrap();
    assert_eq!(t1.inputs, t2.inputs, "same inputs");
    assert_ne!(t1.dedup_key(), t2.dedup_key(), "different parameters");
    // And the outputs differ: the interaction *is* part of the derivation.
    let o1 = g.object(r1.outputs[0]).unwrap();
    let o2 = g.object(r2.outputs[0]).unwrap();
    assert_ne!(o1.attr("data"), o2.attr("data"));
    // No duplicate-task false positive.
    assert!(g.duplicate_tasks().is_empty());
}
