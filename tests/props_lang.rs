//! Property-based tests on the definition language: the pretty-print /
//! re-parse round trip over generated programs.

use gaea::core::template::{CmpOp, Expr};
use gaea::lang::ast::{
    ArgItem, ClassItem, ConceptItem, InteractionItem, Item, ProcessItem, Program,
};
use gaea::lang::{parse, pretty_program};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

/// Comment text that survives the lexer's trim (no leading/trailing space).
fn prompt() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[a-z][a-z0-9 ]{0,10}[a-z]".prop_map(|s| s)
    ]
}

/// Site / procedure strings (quoted in the surface syntax).
fn quoted_text() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_ ]{0,14}".prop_map(|s| s)
}

fn type_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("int4".to_string()),
        Just("float8".to_string()),
        Just("char16".to_string()),
        Just("image".to_string()),
        Just("text".to_string()),
    ]
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i32..1000).prop_map(Expr::int),
        ident().prop_map(Expr::Arg),
        (ident(), ident()).prop_map(|(a, b)| Expr::ArgAttr { arg: a, attr: b }),
        ident().prop_map(Expr::Param),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::AnyOf(Box::new(e))),
            ident()
                .prop_filter("reserved words collide with builtins", |s| {
                    s != "card" && s != "common"
                })
                .prop_flat_map(move |op| {
                    prop::collection::vec(inner.clone(), 0..3).prop_map(move |args| Expr::Apply {
                        op: op.clone(),
                        args,
                    })
                }),
        ]
    })
}

fn assertion() -> impl Strategy<Value = Expr> {
    (
        expr(),
        expr(),
        prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Lt), Just(CmpOp::Gt)],
    )
        .prop_map(|(l, r, op)| Expr::Cmp {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        })
}

fn class_item() -> impl Strategy<Value = ClassItem> {
    (
        ident(),
        prop::collection::vec((ident(), type_name()), 1..5),
        prop::collection::vec((ident(), ident()), 0..3),
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(ident(), 0..2),
    )
        .prop_map(|(name, attrs, refs, spatial, temporal, derived_by)| {
            // Attribute names must be unique within the class (across both
            // primitive and reference attributes).
            let mut seen = std::collections::BTreeSet::new();
            let attrs: Vec<(String, String, String)> = attrs
                .into_iter()
                .filter(|(n, _)| seen.insert(n.clone()))
                .map(|(n, t)| (n, t, String::new()))
                .collect();
            let ref_attrs: Vec<(String, String, String)> = refs
                .into_iter()
                .filter(|(n, _)| seen.insert(n.clone()))
                .map(|(n, c)| (n, c, String::new()))
                .collect();
            ClassItem {
                name,
                doc: String::new(),
                attrs,
                ref_attrs,
                spatial,
                temporal,
                derived_by,
            }
        })
        .prop_filter("need at least one attr", |c| !c.attrs.is_empty())
}

fn interaction_item() -> impl Strategy<Value = InteractionItem> {
    (ident(), type_name(), prop::option::of(expr()), prompt()).prop_map(
        |(param, type_name, preview, prompt)| InteractionItem {
            param,
            type_name,
            preview,
            prompt,
        },
    )
}

fn process_item() -> impl Strategy<Value = ProcessItem> {
    (
        ident(),
        ident(),
        prop::collection::vec((any::<bool>(), ident(), ident()), 1..4),
        prop::collection::vec(assertion(), 0..3),
        prop::collection::vec((ident(), expr()), 0..4),
        prop::collection::vec(interaction_item(), 0..3),
        prop::option::of(quoted_text()),
        prop::option::of(quoted_text()),
    )
        .prop_map(
            |(name, output, args, assertions, raw_mappings, raw_interactions, site, nonapp)| {
                let mut seen = std::collections::BTreeSet::new();
                let args: Vec<ArgItem> = args
                    .into_iter()
                    .filter(|(_, n, _)| seen.insert(n.clone()))
                    .map(|(setof, name, class)| ArgItem { setof, name, class })
                    .collect();
                let mappings = raw_mappings
                    .into_iter()
                    .map(|(attr, e)| (output.clone(), attr, e))
                    .collect();
                // Interaction params must be unique.
                let mut seen_params = std::collections::BTreeSet::new();
                let interactions = raw_interactions
                    .into_iter()
                    .filter(|i| seen_params.insert(i.param.clone()))
                    .collect();
                ProcessItem {
                    name,
                    output,
                    args,
                    assertions,
                    mappings,
                    interactions,
                    external_site: site,
                    nonapplicative: nonapp,
                }
            },
        )
        .prop_filter("need at least one arg", |p| !p.args.is_empty())
}

fn concept_item() -> impl Strategy<Value = ConceptItem> {
    (
        ident(),
        prop::collection::vec(ident(), 1..4),
        prop::collection::vec(ident(), 0..2),
        "[a-zA-Z0-9 ]{0,20}",
    )
        .prop_map(|(name, members, isa, doc)| ConceptItem {
            name,
            members,
            isa,
            doc,
        })
}

fn program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop_oneof![
            class_item().prop_map(Item::Class),
            process_item().prop_map(Item::Process),
            concept_item().prop_map(Item::Concept),
        ],
        1..5,
    )
    .prop_map(|items| Program { items })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// pretty → parse is the identity on ASTs, and pretty is a fixpoint.
    #[test]
    fn pretty_parse_round_trip(prog in program()) {
        let printed = pretty_program(&prog);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        prop_assert_eq!(&reparsed, &prog);
        prop_assert_eq!(pretty_program(&reparsed), printed);
    }
}
