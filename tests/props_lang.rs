//! Property-based tests on the definition and query language: the
//! pretty-print / re-parse round trip over generated programs and over
//! generated `RETRIEVE` statements.

use gaea::core::query::AttrCmp;
use gaea::core::template::{CmpOp, Expr};
use gaea::lang::ast::{
    ArgItem, ClassItem, ConceptItem, DeriveClause, IndexItem, InteractionItem, Item, LitValue,
    OrderByItem, ProcessItem, Program, RetrieveItem, TimeLit, WhereItem,
};
use gaea::lang::{parse, parse_query, pretty_program, pretty_retrieve};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

/// Comment text that survives the lexer's trim (no leading/trailing space).
fn prompt() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[a-z][a-z0-9 ]{0,10}[a-z]".prop_map(|s| s)
    ]
}

/// Site / procedure strings (quoted in the surface syntax).
fn quoted_text() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_ ]{0,14}".prop_map(|s| s)
}

fn type_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("int4".to_string()),
        Just("float8".to_string()),
        Just("char16".to_string()),
        Just("image".to_string()),
        Just("text".to_string()),
    ]
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i32..1000).prop_map(Expr::int),
        ident().prop_map(Expr::Arg),
        (ident(), ident()).prop_map(|(a, b)| Expr::ArgAttr { arg: a, attr: b }),
        ident().prop_map(Expr::Param),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::AnyOf(Box::new(e))),
            ident()
                .prop_filter("reserved words collide with builtins", |s| {
                    s != "card" && s != "common"
                })
                .prop_flat_map(move |op| {
                    prop::collection::vec(inner.clone(), 0..3).prop_map(move |args| Expr::Apply {
                        op: op.clone(),
                        args,
                    })
                }),
        ]
    })
}

fn assertion() -> impl Strategy<Value = Expr> {
    (
        expr(),
        expr(),
        prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Lt), Just(CmpOp::Gt)],
    )
        .prop_map(|(l, r, op)| Expr::Cmp {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        })
}

fn class_item() -> impl Strategy<Value = ClassItem> {
    (
        ident(),
        prop::collection::vec((ident(), type_name()), 1..5),
        prop::collection::vec((ident(), ident()), 0..3),
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(ident(), 0..2),
    )
        .prop_map(|(name, attrs, refs, spatial, temporal, derived_by)| {
            // Attribute names must be unique within the class (across both
            // primitive and reference attributes).
            let mut seen = std::collections::BTreeSet::new();
            let attrs: Vec<(String, String, String)> = attrs
                .into_iter()
                .filter(|(n, _)| seen.insert(n.clone()))
                .map(|(n, t)| (n, t, String::new()))
                .collect();
            let ref_attrs: Vec<(String, String, String)> = refs
                .into_iter()
                .filter(|(n, _)| seen.insert(n.clone()))
                .map(|(n, c)| (n, c, String::new()))
                .collect();
            ClassItem {
                name,
                doc: String::new(),
                attrs,
                ref_attrs,
                spatial,
                temporal,
                derived_by,
            }
        })
        .prop_filter("need at least one attr", |c| !c.attrs.is_empty())
}

fn interaction_item() -> impl Strategy<Value = InteractionItem> {
    (ident(), type_name(), prop::option::of(expr()), prompt()).prop_map(
        |(param, type_name, preview, prompt)| InteractionItem {
            param,
            type_name,
            preview,
            prompt,
        },
    )
}

/// A bind-stage cost hint keyword (any identifier round-trips; the real
/// vocabulary is validated at lowering, not parsing).
fn cost_keyword() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("oldest".to_string()),
        Just("newest".to_string()),
        ident(),
    ]
}

fn process_item() -> impl Strategy<Value = ProcessItem> {
    (
        ident(),
        ident(),
        prop::collection::vec((any::<bool>(), ident(), ident()), 1..4),
        prop::collection::vec(assertion(), 0..3),
        prop::collection::vec((ident(), expr()), 0..4),
        prop::collection::vec(interaction_item(), 0..3),
        prop::option::of(quoted_text()),
        prop::option::of(quoted_text()),
        prop::option::of(cost_keyword()),
    )
        .prop_map(
            |(
                name,
                output,
                args,
                assertions,
                raw_mappings,
                raw_interactions,
                site,
                nonapp,
                cost,
            )| {
                let mut seen = std::collections::BTreeSet::new();
                let args: Vec<ArgItem> = args
                    .into_iter()
                    .filter(|(_, n, _)| seen.insert(n.clone()))
                    .map(|(setof, name, class)| ArgItem { setof, name, class })
                    .collect();
                let mappings = raw_mappings
                    .into_iter()
                    .map(|(attr, e)| (output.clone(), attr, e))
                    .collect();
                // Interaction params must be unique.
                let mut seen_params = std::collections::BTreeSet::new();
                let interactions = raw_interactions
                    .into_iter()
                    .filter(|i| seen_params.insert(i.param.clone()))
                    .collect();
                ProcessItem {
                    name,
                    output,
                    args,
                    assertions,
                    mappings,
                    interactions,
                    external_site: site,
                    nonapplicative: nonapp,
                    cost,
                }
            },
        )
        .prop_filter("need at least one arg", |p| !p.args.is_empty())
}

fn concept_item() -> impl Strategy<Value = ConceptItem> {
    (
        ident(),
        prop::collection::vec(ident(), 1..4),
        prop::collection::vec(ident(), 0..2),
        "[a-zA-Z0-9 ]{0,20}",
    )
        .prop_map(|(name, members, isa, doc)| ConceptItem {
            name,
            members,
            isa,
            doc,
        })
}

// ----------------------------------------------------------------------
// RETRIEVE statements
// ----------------------------------------------------------------------

fn lit_value() -> impl Strategy<Value = LitValue> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(LitValue::Int),
        (-1.0e6f64..1.0e6).prop_map(LitValue::Float),
        "[a-z][a-z0-9 ]{0,10}".prop_map(LitValue::Str),
    ]
}

fn time_lit() -> impl Strategy<Value = TimeLit> {
    prop_oneof![
        (-4_000_000_000i64..4_000_000_000).prop_map(TimeLit::Epoch),
        (1900i64..2100, 1u32..13, 1u32..29)
            .prop_map(|(y, m, d)| TimeLit::Date(format!("{y:04}-{m:02}-{d:02}"))),
    ]
}

fn attr_cmp() -> impl Strategy<Value = AttrCmp> {
    prop_oneof![Just(AttrCmp::Eq), Just(AttrCmp::Lt), Just(AttrCmp::Gt)]
}

fn where_item() -> impl Strategy<Value = WhereItem> {
    prop_oneof![
        (ident(), attr_cmp(), lit_value()).prop_map(|(attr, cmp, value)| WhereItem::Attr {
            attr,
            cmp,
            value
        }),
        (
            -180.0f64..180.0,
            -90.0f64..90.0,
            -180.0f64..180.0,
            -90.0f64..90.0,
        )
            .prop_map(|(xmin, ymin, xmax, ymax)| WhereItem::Within {
                xmin,
                ymin,
                xmax,
                ymax,
            }),
        time_lit().prop_map(WhereItem::At),
        (time_lit(), time_lit()).prop_map(|(a, b)| WhereItem::Between(a, b)),
    ]
}

fn derive_clause() -> impl Strategy<Value = DeriveClause> {
    (
        any::<bool>(),
        prop::option::of(ident()),
        prop::option::of(cost_keyword()),
    )
        .prop_map(|(is_async, using, cost)| DeriveClause {
            is_async,
            using,
            cost,
        })
}

fn order_by_item() -> impl Strategy<Value = OrderByItem> {
    (ident(), any::<bool>()).prop_map(|(attr, desc)| OrderByItem { attr, desc })
}

fn retrieve_item() -> impl Strategy<Value = RetrieveItem> {
    (
        prop::collection::vec(ident(), 0..4), // empty renders as `*`
        ident(),
        prop::collection::vec(where_item(), 0..4),
        prop::option::of(derive_clause()),
        any::<bool>(),
        prop::option::of(order_by_item()),
        prop::option::of(0u64..1000),
    )
        .prop_map(
            |(projection, target, where_clauses, derive, fresh, order_by, limit)| RetrieveItem {
                projection,
                target,
                where_clauses,
                derive,
                fresh,
                order_by,
                limit,
            },
        )
}

fn index_item() -> impl Strategy<Value = IndexItem> {
    (ident(), ident()).prop_map(|(attr, class)| IndexItem { attr, class })
}

fn program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop_oneof![
            class_item().prop_map(Item::Class),
            process_item().prop_map(Item::Process),
            concept_item().prop_map(Item::Concept),
            retrieve_item().prop_map(Item::Retrieve),
            index_item().prop_map(Item::Index),
        ],
        1..5,
    )
    .prop_map(|items| Program { items })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// pretty → parse is the identity on ASTs, and pretty is a fixpoint.
    #[test]
    fn pretty_parse_round_trip(prog in program()) {
        let printed = pretty_program(&prog);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        prop_assert_eq!(&reparsed, &prog);
        prop_assert_eq!(pretty_program(&reparsed), printed);
    }

    /// The same round trip over bare RETRIEVE statements through the
    /// dedicated single-statement entry point (`Gaea::retrieve`'s parser).
    #[test]
    fn retrieve_round_trip(item in retrieve_item()) {
        let printed = pretty_retrieve(&item);
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        prop_assert_eq!(&reparsed, &item);
        prop_assert_eq!(pretty_retrieve(&reparsed), printed);
    }

    /// Parse errors over mangled RETRIEVE text always carry a span that
    /// lies inside the source (so `underline` can render it).
    #[test]
    fn retrieve_error_spans_stay_in_bounds(item in retrieve_item(), cut in 0usize..40) {
        let printed = pretty_retrieve(&item);
        // Truncate mid-statement to provoke errors at arbitrary points
        // (generated surface text is pure ASCII, so any cut is valid).
        let cut = printed.len().saturating_sub(cut);
        let truncated = &printed[..cut];
        if let Err(e) = parse_query(truncated) {
            prop_assert!(e.span.start <= e.span.end);
            prop_assert!(e.span.end <= truncated.len());
            // Underlining must never panic.
            let _ = e.underline(truncated);
        }
    }
}
