//! Experiment F2 — Figure 2, the three semantic layers.
//!
//! The figure's structure is reproduced programmatically by
//! `gaea_workload::build_figure2_schema`; these tests verify the layer
//! *relationships* the figure draws: concepts expand to class sets
//! (dashed lines), classes link to processes (derivation layer), processes
//! decompose into operators (system layer).

use gaea::adt::{AbsTime, GeoBox, Image, Value};
use gaea::core::kernel::Gaea;
use gaea::core::{Query, QueryMethod, QueryStrategy};
use gaea::workload::{build_figure2_schema, ndvi_series};

fn kernel() -> Gaea {
    let mut g = Gaea::in_memory().with_user("figure2");
    build_figure2_schema(&mut g).unwrap();
    g
}

#[test]
fn high_level_layer_concept_dag() {
    let g = kernel();
    // The desert specialization hierarchy of the figure.
    let desert = g.catalog().concept_by_name("desert").unwrap();
    let children = g.catalog().concept_children(desert.id);
    let names: Vec<&str> = children.iter().map(|c| c.name.as_str()).collect();
    assert!(names.contains(&"hot_trade_wind_desert"));
    assert!(names.contains(&"ice_snow_desert"));
    // Hot trade-wind desert expands to a set of classes (the dashed
    // mapping into the derivation layer: {C2, C3, C4, C5}).
    let members = g
        .catalog()
        .concept_member_classes("hot_trade_wind_desert")
        .unwrap();
    assert_eq!(members.len(), 4);
    // NDVI maps to {C6} and vegetation change to {C7, C8}.
    assert_eq!(
        g.catalog()
            .concept_member_classes("ndvi_concept")
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        g.catalog()
            .concept_member_classes("vegetation_change")
            .unwrap()
            .len(),
        2
    );
}

#[test]
fn derivation_layer_links_classes_to_processes() {
    let g = kernel();
    // Every derived class is reachable from some process output (the
    // figure's solid arrows); every member of the hot desert concept has a
    // distinct derivation.
    let mut producing: Vec<String> = Vec::new();
    for class in g
        .catalog()
        .concept_member_classes("hot_trade_wind_desert")
        .unwrap()
    {
        assert!(
            !class.derived_by.is_empty(),
            "{} must be derived",
            class.name
        );
        for p in &class.derived_by {
            producing.push(g.catalog().process(*p).unwrap().name.clone());
        }
    }
    producing.sort();
    producing.dedup();
    assert_eq!(
        producing.len(),
        4,
        "four distinct derivations: {producing:?}"
    );
}

#[test]
fn system_layer_operators_back_the_processes() {
    let g = kernel();
    // P7 applies the compound pca operator; its network decomposes into the
    // Figure 4 primitives, all registered in the system layer.
    let p7 = g.catalog().process_by_name("P7_pca_change").unwrap();
    let uses_pca = p7
        .template
        .mappings
        .iter()
        .any(|m| m.expr.to_string().contains("pca("));
    assert!(uses_pca, "P7 maps through the pca operator");
    let pca = g.registry().get("pca").unwrap();
    assert!(pca.is_compound(), "pca is a compound operator (Figure 4)");
    for primitive in [
        "convert_image_matrix",
        "compute_covariance",
        "get_eigen_vectors",
        "linear_combination",
        "convert_matrix_image",
    ] {
        assert!(g.registry().contains(primitive), "{primitive} registered");
    }
}

#[test]
fn figure2_vegetation_change_derives_both_ways() {
    // The concept's two realizations both derive from the same NDVI data,
    // and the derivation layer keeps them apart.
    let mut g = kernel();
    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let series = ndvi_series(16, 16, 4, AbsTime::from_ymd(1988, 1, 1).unwrap(), -0.1, 3);
    for (t, img) in &series[..2] {
        g.insert_object(
            "ndvi",
            vec![
                ("data", Value::image(img.clone())),
                ("spatialextent", Value::GeoBox(africa)),
                ("timestamp", Value::AbsTime(*t)),
            ],
        )
        .unwrap();
    }
    let ndvi_objs = g.objects_of("ndvi").unwrap();
    let a = g
        .run_process("P7_pca_change", &[("series", ndvi_objs.clone())])
        .unwrap();
    let b = g
        .run_process("P8_spca_change", &[("series", ndvi_objs)])
        .unwrap();
    assert!(!g.same_derivation(a.outputs[0], b.outputs[0]).unwrap());
    assert_eq!(
        g.ancestors(a.outputs[0]).unwrap(),
        g.ancestors(b.outputs[0]).unwrap(),
        "same conceptual outcome from the same data (Eastman comparison)"
    );
}

#[test]
fn concept_query_falls_back_across_members() {
    // Querying the vegetation_change concept with only NDVI stored must
    // derive through one of the member classes.
    let mut g = kernel();
    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let series = ndvi_series(12, 12, 4, AbsTime::from_ymd(1988, 1, 1).unwrap(), -0.1, 9);
    for (t, img) in &series[..3] {
        g.insert_object(
            "ndvi",
            vec![
                ("data", Value::image(img.clone())),
                ("spatialextent", Value::GeoBox(africa)),
                ("timestamp", Value::AbsTime(*t)),
            ],
        )
        .unwrap();
    }
    let outcome = g
        .query(
            &Query::concept("vegetation_change")
                .over(africa)
                .with_strategy(QueryStrategy::PreferDerivation),
        )
        .unwrap();
    assert_eq!(outcome.method, QueryMethod::Derived);
    assert!(!outcome.objects.is_empty());
    let img: &Image = outcome.objects[0].attr("data").unwrap().as_image().unwrap();
    assert_eq!((img.nrow(), img.ncol()), (12, 12));
}
