//! Property-based tests on the storage substrate: CRUD model checking,
//! transaction rollback exactness, index/scan agreement.

use gaea::adt::{GeoBox, TypeTag, Value};
use gaea::store::{Database, Field, Oid, Predicate, Schema, Tuple};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i32),
    Delete(usize),
    Update(usize, i32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i32>().prop_map(Op::Insert),
        (0usize..32).prop_map(Op::Delete),
        ((0usize..32), any::<i32>()).prop_map(|(i, v)| Op::Update(i, v)),
    ]
}

fn db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "objects",
        Schema::new(vec![Field::required("v", TypeTag::Int4)]).unwrap(),
    )
    .unwrap();
    db
}

fn tuple(v: i32) -> Tuple {
    Tuple::new(vec![Value::Int4(v)])
}

/// A relation of GeoBox extents with a uniform spatial grid attached.
fn geo_db(cell: f64) -> Database {
    let mut db = Database::new();
    db.create_relation(
        "extents",
        Schema::new(vec![Field::required("ext", TypeTag::GeoBox)]).unwrap(),
    )
    .unwrap();
    db.relation_mut("extents")
        .unwrap()
        .create_grid("ext", cell)
        .unwrap();
    db
}

fn boxed(x: f64, y: f64, w: f64, h: f64) -> Tuple {
    Tuple::new(vec![Value::GeoBox(GeoBox::new(x, y, x + w, y + h))])
}

#[derive(Debug, Clone)]
enum GeoOp {
    Insert(f64, f64, f64, f64),
    Delete(usize),
    Update(usize, f64, f64, f64, f64),
}

fn geo_op_strategy() -> impl Strategy<Value = GeoOp> {
    let coords = (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.0f64..60.0,
        0.0f64..60.0,
    );
    prop_oneof![
        coords
            .clone()
            .prop_map(|(x, y, w, h)| GeoOp::Insert(x, y, w, h)),
        (0usize..32).prop_map(GeoOp::Delete),
        ((0usize..32), coords).prop_map(|(i, (x, y, w, h))| GeoOp::Update(i, x, y, w, h)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store agrees with a BTreeMap model under arbitrary CRUD
    /// interleavings.
    #[test]
    fn crud_model_check(ops in prop::collection::vec(op_strategy(), 0..64)) {
        let mut db = db();
        let mut model: BTreeMap<Oid, i32> = BTreeMap::new();
        let mut live: Vec<Oid> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    let oid = db.insert("objects", tuple(v)).unwrap();
                    model.insert(oid, v);
                    live.push(oid);
                }
                Op::Delete(i) => {
                    if live.is_empty() { continue; }
                    let oid = live[i % live.len()];
                    let stored = db.delete("objects", oid);
                    if model.remove(&oid).is_some() {
                        prop_assert!(stored.is_ok());
                        live.retain(|o| *o != oid);
                    } else {
                        prop_assert!(stored.is_err());
                    }
                }
                Op::Update(i, v) => {
                    if live.is_empty() { continue; }
                    let oid = live[i % live.len()];
                    if model.contains_key(&oid) {
                        db.update("objects", oid, tuple(v)).unwrap();
                        model.insert(oid, v);
                    }
                }
            }
        }
        // Full agreement.
        let rel = db.relation("objects").unwrap();
        prop_assert_eq!(rel.len(), model.len());
        for (oid, v) in &model {
            prop_assert_eq!(rel.get(*oid).unwrap().get(0), &Value::Int4(*v));
        }
    }

    /// A rolled-back transaction leaves the store exactly as it found it,
    /// whatever the interleaving.
    #[test]
    fn rollback_restores_exact_state(
        committed in prop::collection::vec(any::<i32>(), 1..16),
        txn_ops in prop::collection::vec(op_strategy(), 0..32),
    ) {
        let mut db = db();
        let mut live = Vec::new();
        for v in &committed {
            live.push(db.insert("objects", tuple(*v)).unwrap());
        }
        let before: Vec<(Oid, Tuple)> = db.scan("objects", &Predicate::True).unwrap();
        {
            let mut txn = db.begin();
            for op in txn_ops {
                match op {
                    Op::Insert(v) => { let _ = txn.insert("objects", tuple(v)); }
                    Op::Delete(i) => {
                        if !live.is_empty() {
                            let _ = txn.delete("objects", live[i % live.len()]);
                        }
                    }
                    Op::Update(i, v) => {
                        if !live.is_empty() {
                            let _ = txn.update("objects", live[i % live.len()], tuple(v));
                        }
                    }
                }
            }
            txn.rollback();
        }
        let after: Vec<(Oid, Tuple)> = db.scan("objects", &Predicate::True).unwrap();
        prop_assert_eq!(before, after);
    }

    /// Index lookups agree with predicate scans for every stored key.
    #[test]
    fn index_agrees_with_scan(values in prop::collection::vec(-50i32..50, 1..64)) {
        let mut db = db();
        db.relation_mut("objects").unwrap().create_index("v").unwrap();
        for v in &values {
            db.insert("objects", tuple(*v)).unwrap();
        }
        for key in -50i32..50 {
            let via_index = {
                let mut oids = db
                    .relation("objects")
                    .unwrap()
                    .index_lookup("v", &Value::Int4(key))
                    .unwrap();
                oids.sort();
                oids
            };
            let via_scan = {
                let mut oids: Vec<Oid> = db
                    .scan("objects", &Predicate::Eq("v".into(), Value::Int4(key)))
                    .unwrap()
                    .into_iter()
                    .map(|(oid, _)| oid)
                    .collect();
                oids.sort();
                oids
            };
            prop_assert_eq!(via_index, via_scan);
        }
    }

    /// Index-backed access agrees with the heap scan after an arbitrary
    /// mutation sequence: equality lookups, ordered range walks and the
    /// maintained statistics all reflect exactly the live rows.
    #[test]
    fn index_scan_equals_heap_scan_under_mutation(
        ops in prop::collection::vec(op_strategy(), 0..64),
        probe in -60i32..60,
    ) {
        let mut db = db();
        db.relation_mut("objects").unwrap().create_index("v").unwrap();
        let mut live: Vec<Oid> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(v) => live.push(db.insert("objects", tuple(v % 50)).unwrap()),
                Op::Delete(i) => {
                    if live.is_empty() { continue; }
                    let oid = live[i % live.len()];
                    db.delete("objects", oid).unwrap();
                    live.retain(|o| *o != oid);
                }
                Op::Update(i, v) => {
                    if live.is_empty() { continue; }
                    db.update("objects", live[i % live.len()], tuple(v % 50)).unwrap();
                }
            }
        }
        let rel = db.relation("objects").unwrap();
        // Equality: index lookup ≡ heap scan, for hit and miss keys alike.
        let mut via_index = rel.index_lookup("v", &Value::Int4(probe)).unwrap();
        via_index.sort();
        let mut via_scan = rel
            .scan_oids(&Predicate::Eq("v".into(), Value::Int4(probe)))
            .unwrap();
        via_scan.sort();
        prop_assert_eq!(via_index, via_scan);
        // Range: an inclusive index range ≡ the heap rows it brackets.
        let pos = rel.schema().position("v").unwrap();
        let idx = rel.index_for(pos).unwrap();
        let (lo, hi) = (Value::Int4(probe - 10), Value::Int4(probe + 10));
        let mut ranged = idx.range(Some(&lo), Some(&hi));
        ranged.sort();
        let mut manual: Vec<Oid> = rel
            .iter()
            .filter(|(_, t)| {
                let v = t.get(pos);
                *v >= lo && *v <= hi
            })
            .map(|(oid, _)| oid)
            .collect();
        manual.sort();
        prop_assert_eq!(ranged, manual);
        // Statistics track the mutations exactly.
        prop_assert_eq!(rel.stats().rows, live.len() as u64);
        let distinct: std::collections::BTreeSet<&Value> =
            rel.iter().map(|(_, t)| t.get(pos)).collect();
        prop_assert_eq!(
            rel.stats().column(pos).unwrap().distinct,
            distinct.len() as u64
        );
    }

    /// The spatial grid is exact: probing a window and re-filtering by
    /// true intersection returns precisely the heap rows whose boxes
    /// overlap it, under arbitrary insert/delete/update interleavings.
    #[test]
    fn grid_probe_agrees_with_heap_scan(
        cell in 1.0f64..30.0,
        ops in prop::collection::vec(geo_op_strategy(), 0..48),
        wx in -120.0f64..120.0,
        wy in -120.0f64..120.0,
        ww in 0.0f64..80.0,
        wh in 0.0f64..80.0,
    ) {
        let mut db = geo_db(cell);
        let mut live: Vec<Oid> = Vec::new();
        for op in ops {
            match op {
                GeoOp::Insert(x, y, w, h) => {
                    live.push(db.insert("extents", boxed(x, y, w, h)).unwrap());
                }
                GeoOp::Delete(i) => {
                    if live.is_empty() { continue; }
                    let oid = live[i % live.len()];
                    db.delete("extents", oid).unwrap();
                    live.retain(|o| *o != oid);
                }
                GeoOp::Update(i, x, y, w, h) => {
                    if live.is_empty() { continue; }
                    db.update("extents", live[i % live.len()], boxed(x, y, w, h)).unwrap();
                }
            }
        }
        let window = GeoBox::new(wx, wy, wx + ww, wy + wh);
        let rel = db.relation("extents").unwrap();
        let pos = rel.schema().position("ext").unwrap();
        // Candidates, then the exact residual filter the kernel applies.
        let mut via_grid: Vec<Oid> = rel
            .grid_probe("ext", &window)
            .unwrap()
            .into_iter()
            .filter(|oid| {
                rel.get(*oid)
                    .unwrap()
                    .get(pos)
                    .as_geobox()
                    .is_some_and(|b| b.intersects(&window))
            })
            .collect();
        via_grid.sort();
        let mut via_scan = rel
            .scan_oids(&Predicate::BoxOverlaps("ext".into(), window))
            .unwrap();
        via_scan.sort();
        prop_assert_eq!(via_grid, via_scan);
    }

    /// The serde-skipped index maps, grid cells and statistics all
    /// rebuild on snapshot load: every access path answers identically
    /// before and after a save/load round trip.
    #[test]
    fn access_paths_rebuild_after_snapshot(
        values in prop::collection::vec(-30i32..30, 1..32),
        geo_ops in prop::collection::vec(geo_op_strategy(), 1..24),
    ) {
        let mut db = geo_db(8.0);
        db.create_relation(
            "objects",
            Schema::new(vec![Field::required("v", TypeTag::Int4)]).unwrap(),
        )
        .unwrap();
        db.relation_mut("objects").unwrap().create_index("v").unwrap();
        for v in &values {
            db.insert("objects", tuple(*v)).unwrap();
        }
        let mut live: Vec<Oid> = Vec::new();
        for op in &geo_ops {
            match op {
                GeoOp::Insert(x, y, w, h) => {
                    live.push(db.insert("extents", boxed(*x, *y, *w, *h)).unwrap());
                }
                GeoOp::Delete(i) => {
                    if live.is_empty() { continue; }
                    let oid = live[i % live.len()];
                    db.delete("extents", oid).unwrap();
                    live.retain(|o| *o != oid);
                }
                GeoOp::Update(i, x, y, w, h) => {
                    if live.is_empty() { continue; }
                    db.update("extents", live[i % live.len()], boxed(*x, *y, *w, *h)).unwrap();
                }
            }
        }
        let dir = std::env::temp_dir().join(format!(
            "gaea-prop-paths-{}-{}-{}",
            std::process::id(),
            values.len(),
            geo_ops.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        gaea::store::snapshot::save(&db, &dir).unwrap();
        let back = gaea::store::snapshot::load(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // Ordered index: identical lookups for every probed key.
        for key in -30i32..30 {
            let mut before = db
                .relation("objects").unwrap()
                .index_lookup("v", &Value::Int4(key)).unwrap();
            before.sort();
            let mut after = back
                .relation("objects").unwrap()
                .index_lookup("v", &Value::Int4(key)).unwrap();
            after.sort();
            prop_assert_eq!(before, after);
        }
        // Grid: identical probes over a window sweep.
        for step in 0..4 {
            let o = -100.0 + step as f64 * 50.0;
            let window = GeoBox::new(o, o, o + 70.0, o + 70.0);
            let mut before = db.relation("extents").unwrap().grid_probe("ext", &window).unwrap();
            before.sort();
            let mut after = back.relation("extents").unwrap().grid_probe("ext", &window).unwrap();
            after.sort();
            prop_assert_eq!(before, after);
        }
        // Statistics recompute to the same summary.
        for name in ["objects", "extents"] {
            prop_assert_eq!(
                db.relation(name).unwrap().stats(),
                back.relation(name).unwrap().stats()
            );
        }
    }

    /// Snapshot save/load preserves scans and continues OID allocation
    /// without collisions.
    #[test]
    fn snapshot_round_trip(values in prop::collection::vec(any::<i32>(), 0..32)) {
        let mut db = db();
        let mut oids = Vec::new();
        for v in &values {
            oids.push(db.insert("objects", tuple(*v)).unwrap());
        }
        let dir = std::env::temp_dir().join(format!(
            "gaea-prop-snap-{}-{}",
            std::process::id(),
            values.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        gaea::store::snapshot::save(&db, &dir).unwrap();
        let mut back = gaea::store::snapshot::load(&dir).unwrap();
        for (oid, v) in oids.iter().zip(&values) {
            prop_assert_eq!(back.get("objects", *oid).unwrap().get(0), &Value::Int4(*v));
        }
        let fresh = back.insert("objects", tuple(0)).unwrap();
        prop_assert!(!oids.contains(&fresh), "OID reuse after snapshot");
        std::fs::remove_dir_all(&dir).ok();
    }
}
