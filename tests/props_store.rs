//! Property-based tests on the storage substrate: CRUD model checking,
//! transaction rollback exactness, index/scan agreement.

use gaea::adt::{TypeTag, Value};
use gaea::store::{Database, Field, Oid, Predicate, Schema, Tuple};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i32),
    Delete(usize),
    Update(usize, i32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<i32>().prop_map(Op::Insert),
        (0usize..32).prop_map(Op::Delete),
        ((0usize..32), any::<i32>()).prop_map(|(i, v)| Op::Update(i, v)),
    ]
}

fn db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "objects",
        Schema::new(vec![Field::required("v", TypeTag::Int4)]).unwrap(),
    )
    .unwrap();
    db
}

fn tuple(v: i32) -> Tuple {
    Tuple::new(vec![Value::Int4(v)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store agrees with a BTreeMap model under arbitrary CRUD
    /// interleavings.
    #[test]
    fn crud_model_check(ops in prop::collection::vec(op_strategy(), 0..64)) {
        let mut db = db();
        let mut model: BTreeMap<Oid, i32> = BTreeMap::new();
        let mut live: Vec<Oid> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    let oid = db.insert("objects", tuple(v)).unwrap();
                    model.insert(oid, v);
                    live.push(oid);
                }
                Op::Delete(i) => {
                    if live.is_empty() { continue; }
                    let oid = live[i % live.len()];
                    let stored = db.delete("objects", oid);
                    if model.remove(&oid).is_some() {
                        prop_assert!(stored.is_ok());
                        live.retain(|o| *o != oid);
                    } else {
                        prop_assert!(stored.is_err());
                    }
                }
                Op::Update(i, v) => {
                    if live.is_empty() { continue; }
                    let oid = live[i % live.len()];
                    if model.contains_key(&oid) {
                        db.update("objects", oid, tuple(v)).unwrap();
                        model.insert(oid, v);
                    }
                }
            }
        }
        // Full agreement.
        let rel = db.relation("objects").unwrap();
        prop_assert_eq!(rel.len(), model.len());
        for (oid, v) in &model {
            prop_assert_eq!(rel.get(*oid).unwrap().get(0), &Value::Int4(*v));
        }
    }

    /// A rolled-back transaction leaves the store exactly as it found it,
    /// whatever the interleaving.
    #[test]
    fn rollback_restores_exact_state(
        committed in prop::collection::vec(any::<i32>(), 1..16),
        txn_ops in prop::collection::vec(op_strategy(), 0..32),
    ) {
        let mut db = db();
        let mut live = Vec::new();
        for v in &committed {
            live.push(db.insert("objects", tuple(*v)).unwrap());
        }
        let before: Vec<(Oid, Tuple)> = db.scan("objects", &Predicate::True).unwrap();
        {
            let mut txn = db.begin();
            for op in txn_ops {
                match op {
                    Op::Insert(v) => { let _ = txn.insert("objects", tuple(v)); }
                    Op::Delete(i) => {
                        if !live.is_empty() {
                            let _ = txn.delete("objects", live[i % live.len()]);
                        }
                    }
                    Op::Update(i, v) => {
                        if !live.is_empty() {
                            let _ = txn.update("objects", live[i % live.len()], tuple(v));
                        }
                    }
                }
            }
            txn.rollback();
        }
        let after: Vec<(Oid, Tuple)> = db.scan("objects", &Predicate::True).unwrap();
        prop_assert_eq!(before, after);
    }

    /// Index lookups agree with predicate scans for every stored key.
    #[test]
    fn index_agrees_with_scan(values in prop::collection::vec(-50i32..50, 1..64)) {
        let mut db = db();
        db.relation_mut("objects").unwrap().create_index("v").unwrap();
        for v in &values {
            db.insert("objects", tuple(*v)).unwrap();
        }
        for key in -50i32..50 {
            let via_index = {
                let mut oids = db
                    .relation("objects")
                    .unwrap()
                    .index_lookup("v", &Value::Int4(key))
                    .unwrap();
                oids.sort();
                oids
            };
            let via_scan = {
                let mut oids: Vec<Oid> = db
                    .scan("objects", &Predicate::Eq("v".into(), Value::Int4(key)))
                    .unwrap()
                    .into_iter()
                    .map(|(oid, _)| oid)
                    .collect();
                oids.sort();
                oids
            };
            prop_assert_eq!(via_index, via_scan);
        }
    }

    /// Snapshot save/load preserves scans and continues OID allocation
    /// without collisions.
    #[test]
    fn snapshot_round_trip(values in prop::collection::vec(any::<i32>(), 0..32)) {
        let mut db = db();
        let mut oids = Vec::new();
        for v in &values {
            oids.push(db.insert("objects", tuple(*v)).unwrap());
        }
        let dir = std::env::temp_dir().join(format!(
            "gaea-prop-snap-{}-{}",
            std::process::id(),
            values.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        gaea::store::snapshot::save(&db, &dir).unwrap();
        let mut back = gaea::store::snapshot::load(&dir).unwrap();
        for (oid, v) in oids.iter().zip(&values) {
            prop_assert_eq!(back.get("objects", *oid).unwrap().get(0), &Value::Int4(*v));
        }
        let fresh = back.insert("objects", tuple(0)).unwrap();
        prop_assert!(!oids.contains(&fresh), "OID reuse after snapshot");
        std::fs::remove_dir_all(&dir).ok();
    }
}
