//! Property-based tests on the raster analysis layer: supervised
//! classification invariants, NDVI range, interpolation endpoints,
//! change-detection algebra.

use gaea::adt::{AbsTime, Image, Matrix};
use gaea::raster::interp::temporal_interp;
use gaea::raster::supervised::{
    min_distance_classify, parallelepiped_classify, signatures_from_training, training_boxes,
    TrainingSite, UNCLASSIFIED,
};
use gaea::raster::{composite, img_diff, img_ratio, ndvi};
use proptest::prelude::*;

/// A small multiband stack of bounded, finite samples.
fn stack_strategy(bands: usize) -> impl Strategy<Value = (u32, u32, Vec<Vec<f64>>)> {
    (1u32..6, 1u32..6).prop_flat_map(move |(r, c)| {
        let n = (r * c) as usize;
        (
            Just(r),
            Just(c),
            prop::collection::vec(prop::collection::vec(-1e3f64..1e3, n..=n), bands..=bands),
        )
    })
}

fn build_stack(r: u32, c: u32, data: &[Vec<f64>]) -> gaea::raster::composite::BandStack {
    let imgs: Vec<Image> = data
        .iter()
        .map(|b| Image::from_f64(r, c, b.clone()).expect("shape"))
        .collect();
    let refs: Vec<&Image> = imgs.iter().collect();
    composite(&refs).expect("co-registered")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Supervised labels are always `< k`, class counts sum to the pixel
    /// count, and training pixels classify to their own class when the
    /// signatures come from singleton sites.
    #[test]
    fn mindist_labels_bounded_and_exhaustive(
        (r, c, data) in stack_strategy(2),
        k in 1usize..4,
    ) {
        let stack = build_stack(r, c, &data);
        let npix = stack.pixels();
        prop_assume!(npix >= k);
        // One site per class: pixel i trains class i.
        let sites: Vec<TrainingSite> =
            (0..k).map(|cl| TrainingSite::new(cl, vec![cl])).collect();
        let sig = signatures_from_training(&stack, k, &sites).expect("sites valid");
        let out = min_distance_classify(&stack, &sig).expect("classify");
        prop_assert_eq!(out.class_counts.iter().sum::<u64>(), npix as u64);
        prop_assert_eq!(out.unclassified, 0);
        for p in 0..npix {
            prop_assert!((out.labels.get_flat(p) as usize) < k);
        }
    }

    /// Determinism: identical stack + signatures ⇒ identical class maps
    /// (tasks must be reproducible).
    #[test]
    fn mindist_is_deterministic((r, c, data) in stack_strategy(3)) {
        let stack = build_stack(r, c, &data);
        let sites = vec![TrainingSite::new(0, vec![0])];
        let sig = signatures_from_training(&stack, 1, &sites).expect("sig");
        let a = min_distance_classify(&stack, &sig).expect("a");
        let b = min_distance_classify(&stack, &sig).expect("b");
        prop_assert_eq!(a.labels, b.labels);
        prop_assert_eq!(a.class_counts, b.class_counts);
    }

    /// PIPED partitions pixels: classified + unclassified = all, and only
    /// valid labels (or UNCLASSIFIED) appear.
    #[test]
    fn piped_partitions_pixels(
        (r, c, data) in stack_strategy(2),
        z in 0.1f64..5.0,
    ) {
        let stack = build_stack(r, c, &data);
        let npix = stack.pixels();
        prop_assume!(npix >= 2);
        let sites = vec![
            TrainingSite::new(0, vec![0]),
            TrainingSite::new(1, vec![npix - 1]),
        ];
        let (lo, hi) = training_boxes(&stack, 2, &sites, z).expect("boxes");
        let out = parallelepiped_classify(&stack, &lo, &hi).expect("piped");
        prop_assert_eq!(
            out.class_counts.iter().sum::<u64>() + out.unclassified,
            npix as u64
        );
        for p in 0..npix {
            let l = out.labels.get_flat(p);
            prop_assert!(l < 2.0 || l == UNCLASSIFIED, "label {l}");
        }
    }

    /// Widening the PIPED boxes never *loses* classified pixels.
    #[test]
    fn piped_monotone_in_z((r, c, data) in stack_strategy(2)) {
        let stack = build_stack(r, c, &data);
        let npix = stack.pixels();
        prop_assume!(npix >= 2);
        let sites = vec![
            TrainingSite::new(0, vec![0]),
            TrainingSite::new(1, vec![npix - 1]),
        ];
        let (lo1, hi1) = training_boxes(&stack, 2, &sites, 1.0).expect("z=1");
        let (lo3, hi3) = training_boxes(&stack, 2, &sites, 3.0).expect("z=3");
        let tight = parallelepiped_classify(&stack, &lo1, &hi1).expect("tight");
        let wide = parallelepiped_classify(&stack, &lo3, &hi3).expect("wide");
        prop_assert!(wide.unclassified <= tight.unclassified);
    }

    /// NDVI stays within [-1, 1] for positive reflectances.
    #[test]
    fn ndvi_bounded(
        (r, c, data) in stack_strategy(2),
    ) {
        let pos: Vec<Vec<f64>> = data
            .iter()
            .map(|b| b.iter().map(|v| v.abs() + 0.001).collect())
            .collect();
        let nir = Image::from_f64(r, c, pos[0].clone()).expect("nir");
        let red = Image::from_f64(r, c, pos[1].clone()).expect("red");
        let out = ndvi(&nir, &red).expect("ndvi");
        for p in 0..out.len() {
            let v = out.get_flat(p);
            prop_assert!((-1.0..=1.0).contains(&v), "ndvi {v}");
        }
    }

    /// Interpolation hits the endpoints exactly and stays within the
    /// per-pixel bracket for interior instants.
    #[test]
    fn interpolation_endpoints_and_bounds(
        (r, c, data) in stack_strategy(2),
        frac in 0.0f64..=1.0,
    ) {
        let e = Image::from_f64(r, c, data[0].clone()).expect("earlier");
        let l = Image::from_f64(r, c, data[1].clone()).expect("later");
        let t0 = AbsTime(0);
        let t1 = AbsTime(1_000);
        let tq = AbsTime((1_000.0 * frac) as i64);
        let out = temporal_interp(&e, t0, &l, t1, tq).expect("bracketed");
        for p in 0..out.len() {
            let a = e.get_flat(p);
            let b = l.get_flat(p);
            let v = out.get_flat(p);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo},{hi}]");
        }
        let at_start = temporal_interp(&e, t0, &l, t1, t0).expect("t0");
        let at_end = temporal_interp(&e, t0, &l, t1, t1).expect("t1");
        prop_assert_eq!(at_start, e);
        prop_assert_eq!(at_end, l);
    }

    /// The two scientists' change maps (§1): diff is anti-symmetric,
    /// ratio is multiplicative-inverse — structurally different results
    /// from identical inputs.
    #[test]
    fn change_detection_algebra((r, c, data) in stack_strategy(2)) {
        let pos: Vec<Vec<f64>> = data
            .iter()
            .map(|b| b.iter().map(|v| v.abs() + 1.0).collect())
            .collect();
        let y88 = Image::from_f64(r, c, pos[0].clone()).expect("1988");
        let y89 = Image::from_f64(r, c, pos[1].clone()).expect("1989");
        let d_ab = img_diff(&y89, &y88).expect("diff");
        let d_ba = img_diff(&y88, &y89).expect("diff");
        let q_ab = img_ratio(&y89, &y88).expect("ratio");
        let q_ba = img_ratio(&y88, &y89).expect("ratio");
        for p in 0..d_ab.len() {
            prop_assert!((d_ab.get_flat(p) + d_ba.get_flat(p)).abs() < 1e-9);
            let prod = q_ab.get_flat(p) * q_ba.get_flat(p);
            prop_assert!((prod - 1.0).abs() < 1e-9, "ratio product {prod}");
        }
    }

    /// Signature matrices have one row per class and one column per band,
    /// and pooling a site's pixels twice doubles nothing (means are means).
    #[test]
    fn signatures_are_means((r, c, data) in stack_strategy(2)) {
        let stack = build_stack(r, c, &data);
        let npix = stack.pixels();
        let sites = vec![TrainingSite::new(0, (0..npix).collect())];
        let sig = signatures_from_training(&stack, 1, &sites).expect("sig");
        prop_assert_eq!((sig.rows(), sig.cols()), (1, 2));
        // Row 0 is the global mean per band.
        for b in 0..2 {
            let mean: f64 =
                (0..npix).map(|p| stack.bands()[b].get_flat(p)).sum::<f64>() / npix as f64;
            prop_assert!((sig.get(0, b) - mean).abs() < 1e-9);
        }
        // Doubled site pixels: same means.
        let doubled = vec![TrainingSite::new(
            0,
            (0..npix).chain(0..npix).collect(),
        )];
        let sig2 = signatures_from_training(&stack, 1, &doubled).expect("sig2");
        for b in 0..2 {
            prop_assert!((sig.get(0, b) - sig2.get(0, b)).abs() < 1e-9);
        }
    }
}

/// Deterministic (non-proptest) check that `Matrix`-valued parameters are
/// distinguished by content in task dedup keys — the regression caught by
/// the interactive tests.
#[test]
fn matrix_params_distinguished_by_content() {
    use gaea::adt::Value;
    use gaea::core::ids::{ObjectId, ProcessId, TaskId};
    use gaea::core::task::{Task, TaskKind};
    use gaea::store::Oid;
    use std::collections::BTreeMap;

    let mk = |m: Matrix| {
        let mut params = BTreeMap::new();
        params.insert("signatures".to_string(), Value::matrix(m));
        Task {
            id: TaskId(Oid(1)),
            process: ProcessId(Oid(2)),
            process_name: "P_super".into(),
            inputs: BTreeMap::new(),
            input_versions: BTreeMap::new(),
            outputs: vec![ObjectId(Oid(3))],
            params,
            seq: 1,
            user: "t".into(),
            kind: TaskKind::Interactive,
            children: vec![],
        }
    };
    let mut a = Matrix::zeros(2, 2);
    a.set(0, 0, 1.0);
    let mut b = Matrix::zeros(2, 2);
    b.set(0, 0, 2.0);
    assert_ne!(mk(a.clone()).dedup_key(), mk(b).dedup_key());
    assert_eq!(mk(a.clone()).dedup_key(), mk(a).dedup_key());
}
