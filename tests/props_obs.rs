//! Property-based tests on the `gaea-obs` observability substrate.
//!
//! The metrics registry's histograms are log-bucketed (one power-of-two
//! bucket per bit length), so a reported percentile is the *bucket
//! upper bound* of the true order statistic — never a different bucket.
//! This suite pins that contract against a sorted-vector oracle over
//! random samples, plus the bucket geometry itself (monotone,
//! exhaustive, ceil is the largest member of its bucket). CI runs the
//! suite at `PROPTEST_CASES=256`.

use gaea::obs::{bucket_ceil, bucket_index, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

/// Nearest-rank percentile over a sorted slice — the oracle the
/// bucketed histogram is compared against.
fn oracle_percentile(sorted: &[u64], pct: u32) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as u64;
    let rank = (u64::from(pct) * n).div_ceil(100).clamp(1, n);
    sorted[rank as usize - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every recorded value lands in the bucket whose ceiling covers
    /// it, and the reported percentile shares a bucket with the exact
    /// nearest-rank order statistic — the histogram's whole error
    /// contract (≤ 2× in value, exact in bucket).
    #[test]
    fn percentiles_agree_with_the_sorted_oracle_bucketwise(
        mut samples in prop::collection::vec(0u64..1u64 << 48, 1..512),
        pct_choice in 0usize..7,
    ) {
        let pct = [1u32, 25, 50, 90, 95, 99, 100][pct_choice];
        let h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        samples.sort_unstable();
        let exact = oracle_percentile(&samples, pct);
        let got = h.percentile(pct);
        prop_assert_eq!(
            bucket_index(got),
            bucket_index(exact),
            "p{} reported {} (bucket {}), oracle {} (bucket {})",
            pct, got, bucket_index(got), exact, bucket_index(exact)
        );
        // The report is the bucket ceiling, so it never undershoots the
        // exact statistic and never exceeds its bucket's upper bound.
        prop_assert!(got >= exact);
        prop_assert_eq!(got, bucket_ceil(bucket_index(exact)));
    }

    /// Count and sum aggregate exactly (they are plain atomics, no
    /// bucketing error).
    #[test]
    fn count_and_sum_are_exact(
        samples in prop::collection::vec(0u64..1u64 << 32, 0..256),
    ) {
        let h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
    }

    /// Bucket geometry: the index is monotone in the value, always in
    /// range, and each bucket's ceiling is the largest value mapping to
    /// that bucket.
    #[test]
    fn bucket_geometry_is_monotone_and_exhaustive(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        prop_assert!(v <= bucket_ceil(i));
        if v > 0 {
            prop_assert!(bucket_index(v - 1) <= i);
            // The ceiling is in the same bucket as the value…
            prop_assert_eq!(bucket_index(bucket_ceil(i)), i);
        }
        // …and the next value after the ceiling is in a later bucket.
        if let Some(next) = bucket_ceil(i).checked_add(1) {
            prop_assert_eq!(bucket_index(next), i + 1);
        }
    }
}
