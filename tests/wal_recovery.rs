//! Crash recovery end to end (durability tentpole): a durable kernel
//! reopened after losing its process reconstructs the exact pre-crash
//! state — including *in-flight derivation jobs*, whose journaled
//! submissions re-stage and complete after restart, committing task
//! records byte-identical to a run that never crashed.
//!
//! The gated-site idiom mirrors `tests/async_jobs.rs`: the "crash"
//! happens while every submitted firing is provably still blocked at
//! the remote site, so nothing has committed yet and everything must
//! come back from the job journal alone.

use gaea::adt::{AbsTime, TypeTag, Value};
use gaea::core::external::SimulatedSite;
use gaea::core::kernel::{ClassSpec, DurabilityOptions, Gaea, JobStatus, ProcessSpec};
use gaea::core::{JobId, KernelError, KernelResult};
use gaea::lang::Retrieve as _;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

static DIRS: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIRS.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gaea-walrec-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn day(d: u32) -> AbsTime {
    AbsTime::from_ymd(1986, 1, d).unwrap()
}

/// The remote mapping `v → 2·v` shared by every site here.
fn double_v(
    inputs: &gaea::core::external::ExternalInputs,
) -> KernelResult<BTreeMap<String, Value>> {
    let v = inputs["x"][0]
        .attr("v")
        .and_then(Value::as_i64)
        .unwrap_or(0);
    let mut out = BTreeMap::new();
    out.insert("v".to_string(), Value::Int4((v as i32) * 2));
    Ok(out)
}

/// A site that blocks on a channel until released — the firing a crash
/// interrupts.
fn gated_site() -> (Arc<SimulatedSite>, Sender<()>) {
    let (tx, rx) = channel::<()>();
    let rx = Mutex::new(rx);
    let site = Arc::new(SimulatedSite::new("slow_site", move |_def, inputs| {
        rx.lock()
            .expect("gate receiver lock")
            .recv()
            .map_err(|_| KernelError::Template("site gate dropped".into()))?;
        double_v(inputs)
    }));
    (site, tx)
}

/// A site that answers immediately.
fn free_site() -> Arc<SimulatedSite> {
    Arc::new(SimulatedSite::new("slow_site", |_def, inputs| {
        double_v(inputs)
    }))
}

/// Schema + data every test uses: `n_obs` timestamped observations and
/// the external `REMOTE: obs → remote_out` at `slow_site`.
fn populate(g: &mut Gaea, site: Arc<SimulatedSite>, n_obs: u32) {
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_class(ClassSpec::derived("remote_out").attr("v", TypeTag::Int4))
        .unwrap();
    g.define_external_process(
        ProcessSpec::new("REMOTE", "remote_out").arg("x", "obs"),
        "slow_site",
    )
    .unwrap();
    g.register_site("slow_site", site);
    for i in 0..n_obs {
        g.insert_object(
            "obs",
            vec![
                ("v", Value::Int4(10 + i as i32)),
                ("timestamp", Value::AbsTime(day(1 + i))),
            ],
        )
        .unwrap();
    }
}

/// The committed REMOTE task records, in sequence order, as JSON — the
/// "byte-identical" yardstick.
fn remote_tasks_json(g: &Gaea) -> Vec<String> {
    let pid = g.catalog().process_by_name("REMOTE").unwrap().id;
    let mut tasks: Vec<_> = g.catalog().tasks_of_process(pid).collect();
    tasks.sort_by_key(|t| t.seq);
    tasks
        .iter()
        .map(|t| serde_json::to_string(t).unwrap())
        .collect()
}

fn submit_n(g: &mut Gaea, n: u32) -> Vec<JobId> {
    (1..=n)
        .map(|d| {
            g.retrieve_job(&format!(
                "RETRIEVE * FROM remote_out WHERE AT \"1986-01-0{d}\" DERIVE ASYNC"
            ))
            .unwrap()
        })
        .collect()
}

fn await_all(g: &mut Gaea, jobs: &[JobId]) {
    for id in jobs {
        match g.await_job(*id, Duration::from_secs(10)).unwrap() {
            JobStatus::Done(_) => {}
            other => panic!("job {id:?} did not complete: {other:?}"),
        }
    }
}

/// Serialize the persistent state via [`Gaea::save`].
fn state_digest(g: &Gaea, tag: &str) -> (String, String) {
    let scratch = fresh_dir(tag);
    g.save(&scratch).unwrap();
    let manifest = std::fs::read_to_string(scratch.join("manifest.json")).unwrap();
    let catalog = std::fs::read_to_string(scratch.join("catalog.json")).unwrap();
    let _ = std::fs::remove_dir_all(&scratch);
    (manifest, catalog)
}

fn options() -> DurabilityOptions {
    DurabilityOptions {
        fsync_every: 1,
        snapshot_every: 0,
        ..Default::default()
    }
}

// ----------------------------------------------------------------------
// The acceptance scenario: jobs survive a restart
// ----------------------------------------------------------------------

/// Submit N derivations against a gated site, drop the kernel with all
/// N still in flight, reopen: all N re-stage from the job journal and
/// complete, and the committed task records are identical to a run
/// that never crashed.
#[test]
fn in_flight_jobs_restage_and_commit_identically_after_restart() {
    const N: u32 = 3;
    let dir = fresh_dir("jobs");
    let (site, gate) = gated_site();
    let mut g = Gaea::open_with(&dir, options()).unwrap();
    populate(&mut g, site, N);
    // One job worker on every kernel in this test: execution (and so
    // commit seq assignment) follows submission order deterministically,
    // which is what makes the byte-for-byte comparison below valid.
    g.set_job_workers(1);
    let jobs = submit_n(&mut g, N);
    assert_eq!(remote_tasks_json(&g).len(), 0, "nothing committed yet");
    drop(g); // the "crash": every firing still blocked at the site
    drop(gate);

    let mut g = Gaea::open_with(&dir, options()).unwrap();
    let stats = g.recovery_stats().unwrap().clone();
    assert_eq!(stats.jobs_restaged, N as u64);
    // Until the site is re-registered the recovered jobs wait, queued.
    let listed = g.jobs();
    assert_eq!(listed.len(), N as usize);
    for (id, status) in &listed {
        assert!(
            matches!(status, JobStatus::Queued),
            "job {id:?} should be queued before the site returns, got {status:?}"
        );
    }
    g.set_job_workers(1);
    g.register_site("slow_site", free_site());
    await_all(&mut g, &jobs);
    let recovered = remote_tasks_json(&g);
    assert_eq!(recovered.len(), N as usize);

    // Twin run: same schema, same submissions, no crash.
    let mut t = Gaea::in_memory();
    populate(&mut t, free_site(), N);
    t.set_job_workers(1);
    let twin_jobs = submit_n(&mut t, N);
    await_all(&mut t, &twin_jobs);
    assert_eq!(
        recovered,
        remote_tasks_json(&t),
        "recovered task records must be byte-identical to the uncrashed run"
    );
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint taken while jobs are in flight carries the pending
/// submissions into the snapshot: truncating the log cannot lose them.
#[test]
fn checkpoint_preserves_pending_jobs_across_truncation() {
    const N: u32 = 2;
    let dir = fresh_dir("ckpt-jobs");
    let (site, gate) = gated_site();
    let mut g = Gaea::open_with(&dir, options()).unwrap();
    populate(&mut g, site, N);
    let jobs = submit_n(&mut g, N);
    g.checkpoint().unwrap(); // truncates the log; jobs move to jobs.json
    drop(g);
    drop(gate);

    let mut g = Gaea::open_with(&dir, options()).unwrap();
    let stats = g.recovery_stats().unwrap().clone();
    assert!(
        stats.snapshot_seq > 0,
        "checkpoint must have advanced the watermark"
    );
    assert_eq!(stats.events_replayed, 0, "the log was truncated");
    assert_eq!(stats.jobs_restaged, N as u64);
    g.register_site("slow_site", free_site());
    await_all(&mut g, &jobs);
    assert_eq!(remote_tasks_json(&g).len(), N as usize);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancelling a recovered job resolves it durably: it does not come
/// back on the next restart.
#[test]
fn cancelled_recovered_jobs_stay_cancelled() {
    let dir = fresh_dir("cancel");
    let (site, gate) = gated_site();
    let mut g = Gaea::open_with(&dir, options()).unwrap();
    populate(&mut g, site, 2);
    let jobs = submit_n(&mut g, 2);
    drop(g);
    drop(gate);

    let mut g = Gaea::open_with(&dir, options()).unwrap();
    assert_eq!(g.recovery_stats().unwrap().jobs_restaged, 2);
    // Cancel the first before any site comes back.
    assert_eq!(g.cancel_job(jobs[0]).unwrap(), JobStatus::Cancelled);
    drop(g);

    let mut g = Gaea::open_with(&dir, options()).unwrap();
    assert_eq!(
        g.recovery_stats().unwrap().jobs_restaged,
        1,
        "the cancelled job must not be restaged again"
    );
    g.register_site("slow_site", free_site());
    await_all(&mut g, &jobs[1..]);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Synchronous lifecycle: external firings, queries, restarts
// ----------------------------------------------------------------------

/// External definitions and query-driven external firings replay: a
/// kernel that defined an external process, fired it synchronously
/// through the query pipeline, and was restarted is serde-identical to
/// its live self — and keeps working after the restart.
#[test]
fn synchronous_external_firings_replay_exactly() {
    let dir = fresh_dir("sync");
    let mut g = Gaea::open_with(&dir, options()).unwrap();
    populate(&mut g, free_site(), 2);
    // Fire through the query pipeline (choose_or_fire commit path).
    let out = g.retrieve("RETRIEVE * FROM remote_out DERIVE").unwrap();
    assert!(!out.objects.is_empty());
    let fired = remote_tasks_json(&g).len();
    assert!(fired > 0, "the DERIVE query must have committed a firing");
    let before = state_digest(&g, "sync-live");
    drop(g);

    let mut g = Gaea::open_with(&dir, options()).unwrap();
    assert_eq!(state_digest(&g, "sync-replayed"), before);
    assert_eq!(remote_tasks_json(&g).len(), fired);
    // The replayed catalog still drives new work: re-register the site
    // and derive against fresh data.
    g.register_site("slow_site", free_site());
    let new_obs = g
        .insert_object(
            "obs",
            vec![
                ("v", Value::Int4(40)),
                ("timestamp", Value::AbsTime(day(9))),
            ],
        )
        .unwrap();
    g.run_process("REMOTE", &[("x", vec![new_obs])]).unwrap();
    assert!(
        remote_tasks_json(&g).len() > fired,
        "the replayed catalog must still drive new derivations"
    );
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Background log compaction
// ----------------------------------------------------------------------

/// Cadence-triggered folds run on the background compactor: commits
/// keep landing while the fold is in flight, the covered prefix is
/// clipped at the next poll, and a reopen replays only the tail on top
/// of the flipped snapshot.
#[test]
fn background_compaction_folds_the_log_behind_live_commits() {
    let dir = fresh_dir("bg");
    let opts = DurabilityOptions {
        fsync_every: 1,
        snapshot_every: 4,
        ..Default::default()
    };
    assert!(
        opts.background_compaction,
        "background folding must be the default"
    );
    let folds_before = gaea::obs::metrics().wal_compactions.get();
    let mut g = Gaea::open_with(&dir, opts).unwrap();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4).no_extents())
        .unwrap();
    // Commit across several compaction cadences: the commit path only
    // hands work to the folder and polls — it never waits for it.
    for i in 0..40 {
        g.insert_object("obs", vec![("v", Value::Int4(i))]).unwrap();
    }
    g.flush_wal().unwrap(); // settles any in-flight fold
    assert!(
        gaea::obs::metrics().wal_compactions.get() > folds_before,
        "the cadence must have run at least one background fold"
    );
    let before = state_digest(&g, "bg-live");
    drop(g);

    let g = Gaea::open_with(&dir, opts).unwrap();
    let stats = g.recovery_stats().unwrap().clone();
    assert!(
        stats.snapshot_seq > 0,
        "background folds must advance the watermark"
    );
    assert!(
        stats.events_replayed < 41,
        "the folded prefix must not replay (replayed {})",
        stats.events_replayed
    );
    assert!(!stats.wal_corrupt);
    assert_eq!(state_digest(&g, "bg-replayed"), before);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An explicit `checkpoint()` settles whatever fold is in flight before
/// taking its own synchronous snapshot — afterwards the log is empty
/// and a reopen replays nothing.
#[test]
fn checkpoint_settles_an_inflight_background_fold() {
    let dir = fresh_dir("bg-ckpt");
    let opts = DurabilityOptions {
        fsync_every: 1,
        snapshot_every: 4,
        ..Default::default()
    };
    let mut g = Gaea::open_with(&dir, opts).unwrap();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4).no_extents())
        .unwrap();
    for i in 0..6 {
        g.insert_object("obs", vec![("v", Value::Int4(i))]).unwrap();
    }
    // A fold is (very likely) in flight from the cadence; checkpoint
    // must fold it in, then truncate everything.
    g.checkpoint().unwrap();
    let before = state_digest(&g, "bg-ckpt-live");
    drop(g);

    let g = Gaea::open_with(&dir, opts).unwrap();
    let stats = g.recovery_stats().unwrap().clone();
    assert_eq!(stats.events_replayed, 0, "checkpoint must clip the log");
    assert!(stats.snapshot_seq > 0);
    assert_eq!(state_digest(&g, "bg-ckpt-replayed"), before);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With `background_compaction: false` the cadence falls back to the
/// synchronous `checkpoint()` path — same watermark semantics, no
/// worker thread.
#[test]
fn synchronous_fallback_still_folds_on_cadence() {
    let dir = fresh_dir("sync-fold");
    let opts = DurabilityOptions {
        fsync_every: 1,
        snapshot_every: 4,
        background_compaction: false,
        ..Default::default()
    };
    let mut g = Gaea::open_with(&dir, opts).unwrap();
    g.define_class(ClassSpec::base("obs").attr("v", TypeTag::Int4).no_extents())
        .unwrap();
    for i in 0..10 {
        g.insert_object("obs", vec![("v", Value::Int4(i))]).unwrap();
    }
    let before = state_digest(&g, "sync-fold-live");
    drop(g);

    let g = Gaea::open_with(&dir, opts).unwrap();
    let stats = g.recovery_stats().unwrap().clone();
    assert!(
        stats.snapshot_seq > 0,
        "the synchronous fallback must advance the watermark on cadence"
    );
    assert_eq!(state_digest(&g, "sync-fold-replayed"), before);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The open-time sweep only treats a *missing* `CURRENT` as "no
/// authoritative snapshot". Any other read failure must skip the sweep
/// entirely — deleting `snap-*` directories while the pointer is merely
/// unreadable would destroy the snapshot it still names.
#[test]
fn unreadable_current_pointer_never_triggers_the_snapshot_sweep() {
    let dir = fresh_dir("sweep-guard");
    std::fs::create_dir_all(&dir).unwrap();
    // CURRENT exists but cannot be read as a file (read_to_string fails
    // with a non-NotFound error) — a stand-in for EACCES/EIO.
    std::fs::create_dir(dir.join("CURRENT")).unwrap();
    let snap = dir.join("snap-7");
    std::fs::create_dir(&snap).unwrap();
    std::fs::write(snap.join("MANIFEST"), b"authoritative bytes").unwrap();

    let err = Gaea::open_with(&dir, options());
    assert!(err.is_err(), "open must surface the unreadable CURRENT");
    assert!(
        snap.join("MANIFEST").exists(),
        "a transient CURRENT read failure must not sweep snap-* dirs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery stats on a clean, snapshot-less reopen count every event
/// and report an intact log.
#[test]
fn recovery_stats_report_clean_replay() {
    let dir = fresh_dir("stats");
    let mut g = Gaea::open_with(&dir, options()).unwrap();
    populate(&mut g, free_site(), 2);
    drop(g);
    let g = Gaea::open_with(&dir, options()).unwrap();
    let stats = g.recovery_stats().unwrap();
    // 3 definitions + 2 inserts.
    assert_eq!(stats.events_replayed, 5);
    assert_eq!(stats.jobs_restaged, 0);
    assert_eq!(stats.snapshot_seq, 0);
    assert_eq!(stats.wal_dropped_bytes, 0);
    assert!(!stats.wal_corrupt);
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}
