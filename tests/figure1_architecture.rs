//! Experiment F1 — Figure 1, the Gaea system architecture.
//!
//! Figure 1 shows the kernel as a metadata manager with three modules
//! (data type/operator manager, derivation manager, experiment manager)
//! plus an interpreter (parser → executor) sitting on the Postgres backend.
//! This test drives one request through every box in the figure:
//! DDL text → parser → catalog → derivation planning → operator execution
//! → storage → experiment reproduction.

use gaea::adt::{AbsTime, GeoBox, TypeTag, Value};
use gaea::core::kernel::Gaea;
use gaea::core::{Query, QueryMethod, QueryStrategy};
use gaea::lang::{lower_program, parse};
use gaea::workload::{SceneSpec, SyntheticScene};

const DDL: &str = r#"
CLASS tm (
  ATTRIBUTES:
    data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
CLASS landcover (
  ATTRIBUTES:
    data = image;
    numclass = int4;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P20
)
DEFINE PROCESS P20 (
  OUTPUT landcover
  ARGUMENT ( SETOF bands tm )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;
      common(bands.spatialextent);
      common(bands.timestamp);
    MAPPINGS:
      landcover.data = unsuperclassify(composite(bands), 12);
      landcover.numclass = 12;
      landcover.spatialextent = ANYOF bands.spatialextent;
      landcover.timestamp = ANYOF bands.timestamp;
  }
)
DEFINE CONCEPT land_cover_concept (
  MEMBERS: landcover;
)
"#;

#[test]
fn one_request_through_every_architecture_box() {
    // Visual environment stand-in: DDL text.
    let program = parse(DDL).expect("parser (interpreter front)");
    // Metadata manager: catalog registration across all three layers.
    let mut g = Gaea::in_memory().with_user("architecture-test");
    lower_program(&mut g, &program).expect("catalog lowering");
    // System-level layer: operator manager is loaded and browsable (§4.2).
    assert!(g.registry().contains("unsuperclassify"));
    assert!(g.registry().contains("pca"));
    let image_ops = g.registry().ops_for_input(&TypeTag::Image);
    assert!(image_ops.len() >= 5, "browsable operator hierarchy");
    // Postgres-substitute backend: base data lands in relations.
    let africa = GeoBox::new(-20.0, -35.0, 55.0, 38.0);
    let jan86 = AbsTime::from_ymd(1986, 1, 15).unwrap();
    let scene = SyntheticScene::generate(SceneSpec::small(5).sized(24, 24));
    for band in &scene.bands {
        g.insert_object(
            "tm",
            vec![
                ("data", Value::image(band.clone())),
                ("spatialextent", Value::GeoBox(africa)),
                ("timestamp", Value::AbsTime(jan86)),
            ],
        )
        .unwrap();
    }
    assert_eq!(g.count_objects("tm").unwrap(), 3);
    // Derivation manager: concept query plans and executes P20.
    let outcome = g
        .query(
            &Query::concept("land_cover_concept")
                .over(africa)
                .at(jan86)
                .with_strategy(QueryStrategy::PreferDerivation),
        )
        .expect("derivation through the planner");
    assert_eq!(outcome.method, QueryMethod::Derived);
    // Experiment manager: record + reproduce.
    g.record_experiment("arch", "architecture walkthrough", outcome.tasks)
        .unwrap();
    let rep = g.reproduce_experiment("arch").unwrap();
    assert!(rep.is_faithful(), "{rep:?}");
    // Persistence: the whole kernel round-trips through the backend
    // snapshot and still answers the query by retrieval.
    let dir = std::env::temp_dir().join(format!("gaea-f1-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    g.save(&dir).unwrap();
    let mut loaded = Gaea::load(&dir).unwrap();
    let again = loaded
        .query(&Query::class("landcover").over(africa).at(jan86))
        .unwrap();
    assert_eq!(again.method, QueryMethod::Retrieved);
    std::fs::remove_dir_all(&dir).unwrap();
}
