//! The derived-result cache: memoized re-derivation, invalidation on
//! input mutation, and lineage stability across cached re-runs.
//!
//! §2.1.1's goal — avoid unnecessary duplication of experiments — backed
//! by the execution layer's `DerivedCache`: repeated `run_process` calls
//! with identical canonical bindings are answered from the memo, mutating
//! an input invalidates everything derived from it transitively, and a
//! cached answer carries the same task record (hence the same lineage) as
//! the original derivation.

use gaea::adt::{AbsTime, GeoBox, Image, PixType, TypeTag, Value};
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::ObjectId;

const SPATIAL_ATTR: &str = "spatialextent";
const TEMPORAL_ATTR: &str = "timestamp";

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

fn day(y: i64, m: u32, d: u32) -> AbsTime {
    AbsTime::from_ymd(y, m, d).unwrap()
}

/// The Figure 3 schema: tm (base) --P20--> landcover.
fn p20_kernel() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("tm").attr("data", TypeTag::Image))
        .unwrap();
    g.define_class(
        ClassSpec::derived("landcover")
            .attr("data", TypeTag::Image)
            .attr("numclass", TypeTag::Int4),
    )
    .unwrap();
    let template = Template {
        assertions: vec![
            Expr::eq(
                Expr::Card(Box::new(Expr::Arg("bands".into()))),
                Expr::int(3),
            ),
            Expr::Common(Box::new(Expr::proj("bands", "timestamp"))),
        ],
        mappings: vec![
            Mapping {
                attr: "data".into(),
                expr: Expr::apply(
                    "unsuperclassify",
                    vec![
                        Expr::apply("composite", vec![Expr::Arg("bands".into())]),
                        Expr::int(12),
                    ],
                ),
            },
            Mapping {
                attr: "numclass".into(),
                expr: Expr::int(12),
            },
            Mapping {
                attr: SPATIAL_ATTR.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", "spatialextent"))),
            },
            Mapping {
                attr: TEMPORAL_ATTR.into(),
                expr: Expr::AnyOf(Box::new(Expr::proj("bands", "timestamp"))),
            },
        ],
    };
    g.define_process(
        ProcessSpec::new("P20", "landcover")
            .setof_arg("bands", "tm", 3)
            .template(template),
    )
    .unwrap();
    g
}

fn insert_band(g: &mut Gaea, fill: f64, t: AbsTime) -> ObjectId {
    g.insert_object(
        "tm",
        vec![
            (
                "data",
                Value::image(Image::filled(8, 8, PixType::Float8, fill)),
            ),
            (SPATIAL_ATTR, Value::GeoBox(africa())),
            (TEMPORAL_ATTR, Value::AbsTime(t)),
        ],
    )
    .unwrap()
}

#[test]
fn repeated_run_process_hits_the_cache() {
    let mut g = p20_kernel();
    g.enable_memoization(true);
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3).map(|i| insert_band(&mut g, i as f64, t0)).collect();

    let first = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let stats = g.memoization_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.entries, 1);

    // Same bindings → same task and outputs, no new task record.
    let tasks_before = g.catalog().tasks.len();
    let second = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    assert_eq!(second, first);
    assert_eq!(g.catalog().tasks.len(), tasks_before);
    assert_eq!(g.memoization_stats().hits, 1);

    // SETOF bindings are sets: permuted order is the same derivation.
    let mut permuted = bands.clone();
    permuted.rotate_left(1);
    let third = g.run_process("P20", &[("bands", permuted)]).unwrap();
    assert_eq!(third.task, first.task);
    assert_eq!(g.memoization_stats().hits, 2);
}

#[test]
fn cache_disabled_by_default_preserves_duplicate_detection() {
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3).map(|i| insert_band(&mut g, i as f64, t0)).collect();
    g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    g.run_process("P20", &[("bands", bands)]).unwrap();
    // Without memoization every firing records a task; §4.2 duplicate
    // detection reports the pair.
    assert_eq!(g.duplicate_tasks().len(), 1);
    let stats = g.memoization_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
}

#[test]
fn input_update_invalidates_dependent_entries() {
    let mut g = p20_kernel();
    g.enable_memoization(true);
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3).map(|i| insert_band(&mut g, i as f64, t0)).collect();
    let first = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    assert_eq!(g.memoization_stats().entries, 1);

    // Mutate one input band in place: the memo must drop.
    g.update_object(
        bands[0],
        vec![(
            "data",
            Value::image(Image::filled(8, 8, PixType::Float8, 99.0)),
        )],
    )
    .unwrap();
    let stats = g.memoization_stats();
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.invalidations, 1);

    // Re-running now derives afresh (new task, new output object) instead
    // of serving the stale result, and the memo repopulates.
    let second = g.run_process("P20", &[("bands", bands)]).unwrap();
    assert_ne!(second.task, first.task);
    assert_ne!(second.outputs, first.outputs);
    let stats = g.memoization_stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.misses, 2);
}

#[test]
fn output_update_invalidates_the_producing_entry() {
    let mut g = p20_kernel();
    g.enable_memoization(true);
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3).map(|i| insert_band(&mut g, i as f64, t0)).collect();
    let first = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    // Mutate the *derived output* in place: the memo that produced it is
    // now falsified and must not be served again.
    g.update_object(first.outputs[0], vec![("numclass", Value::Int4(5))])
        .unwrap();
    assert_eq!(g.memoization_stats().entries, 0);
    let second = g.run_process("P20", &[("bands", bands)]).unwrap();
    assert_ne!(
        second.task, first.task,
        "stale memo served a mutated output"
    );
    assert_eq!(
        g.object(second.outputs[0]).unwrap().attr("numclass"),
        Some(&Value::Int4(12))
    );
}

#[test]
fn setof_dedup_key_agrees_with_cache_canonical_form() {
    // Finding parity: with memoization *off*, a permuted SETOF binding is
    // the same derivation for the §4.2 duplicate detector, exactly as the
    // cache treats it when memoization is on.
    let mut g = p20_kernel();
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3).map(|i| insert_band(&mut g, i as f64, t0)).collect();
    g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let mut permuted = bands;
    permuted.rotate_left(1);
    g.run_process("P20", &[("bands", permuted)]).unwrap();
    let dups = g.duplicate_tasks();
    assert_eq!(dups.len(), 1, "permuted SETOF bindings are one derivation");
    assert_eq!(dups[0].len(), 2);
}

#[test]
fn invalidation_propagates_to_downstream_derivations() {
    let mut g = p20_kernel();
    // A second derivation level: landcover --REFINE--> refined.
    g.define_class(ClassSpec::derived("refined").attr("numclass", TypeTag::Int4))
        .unwrap();
    g.define_process(
        ProcessSpec::new("REFINE", "refined")
            .arg("src", "landcover")
            .template(Template {
                assertions: vec![],
                mappings: vec![Mapping {
                    attr: "numclass".into(),
                    expr: Expr::proj("src", "numclass"),
                }],
            }),
    )
    .unwrap();
    g.enable_memoization(true);
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3).map(|i| insert_band(&mut g, i as f64, t0)).collect();
    let lc = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    g.run_process("REFINE", &[("src", lc.outputs.clone())])
        .unwrap();
    assert_eq!(g.memoization_stats().entries, 2);

    // Touching a base band invalidates the P20 memo *and* the REFINE memo
    // downstream of it.
    g.update_object(
        bands[1],
        vec![(
            "data",
            Value::image(Image::filled(8, 8, PixType::Float8, 42.0)),
        )],
    )
    .unwrap();
    let stats = g.memoization_stats();
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.invalidations, 2);
}

#[test]
fn same_derivation_holds_across_cached_reruns() {
    let mut g = p20_kernel();
    g.enable_memoization(true);
    let t0 = day(1986, 1, 15);
    let bands: Vec<ObjectId> = (0..3).map(|i| insert_band(&mut g, i as f64, t0)).collect();
    let first = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    let cached = g.run_process("P20", &[("bands", bands.clone())]).unwrap();
    // The cached re-run returns the recorded derivation: identical output
    // objects, so lineage is trivially identical…
    assert_eq!(first.outputs, cached.outputs);
    assert!(g
        .same_derivation(first.outputs[0], cached.outputs[0])
        .unwrap());
    // …and a *fresh* derivation over the same inputs (memoization off)
    // still compares structurally equal to the cached one.
    g.enable_memoization(false);
    g.reuse_tasks = false;
    let fresh = g.run_process("P20", &[("bands", bands)]).unwrap();
    assert_ne!(fresh.task, first.task);
    assert!(g
        .same_derivation(first.outputs[0], fresh.outputs[0])
        .unwrap());
    let sig_a = g.lineage(first.outputs[0]).unwrap().signature();
    let sig_b = g.lineage(fresh.outputs[0]).unwrap().signature();
    assert_eq!(sig_a, sig_b);
}
