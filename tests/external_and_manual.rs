//! §5 extension — non-local and non-applicative processes.
//!
//! The paper's future work: "The need to deal with processes that are not
//! locally available will be essential in the future. Furthermore, a
//! process may be in general non-applicative, that is a process may
//! consist of a mapping which is described by experimental procedures
//! that do not follow a well known algorithm."
//!
//! These tests exercise both: an NDVI process whose mapping runs at a
//! simulated remote site (with outage injection), and a ground-survey
//! process whose tasks are recorded, not computed.

use gaea::adt::{AbsTime, GeoBox, Image, PixType, TypeTag, Value};
use gaea::core::external::SimulatedSite;
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::task::TaskKind;
use gaea::core::template::{Expr, Template};
use gaea::core::{KernelError, ObjectId, Query, QueryMethod, QueryStrategy};
use std::collections::BTreeMap;
use std::sync::Arc;

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

fn jun88() -> AbsTime {
    AbsTime::from_ymd(1988, 6, 1).unwrap()
}

/// The remote service: computes NDVI from the shipped band objects and
/// transfers the extents invariantly — the same contract a local template
/// would implement.
fn ndvi_site() -> Arc<SimulatedSite> {
    Arc::new(SimulatedSite::new("nasa_eos", |_def, inputs| {
        let nir = &inputs["nir"][0];
        let red = &inputs["red"][0];
        let img = gaea::raster::ndvi(
            nir.attr("data")
                .and_then(Value::as_image)
                .expect("nir image"),
            red.attr("data")
                .and_then(Value::as_image)
                .expect("red image"),
        )
        .map_err(gaea::core::KernelError::from)?;
        let mut out = BTreeMap::new();
        out.insert("data".to_string(), Value::image(img));
        if let Some(b) = nir.attr(SPATIAL) {
            out.insert(SPATIAL.to_string(), b.clone());
        }
        if let Some(t) = nir.attr(TEMPORAL) {
            out.insert(TEMPORAL.to_string(), t.clone());
        }
        Ok(out)
    }))
}

/// Kernel with `avhrr` (base) and `ndvi_map` derived by the *external*
/// process `P_ndvi_remote` at site "nasa_eos". The local template carries
/// only the guard assertion (`common(timestamps)`).
fn external_kernel() -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("avhrr").attr("data", TypeTag::Image))
        .unwrap();
    g.define_class(ClassSpec::derived("ndvi_map").attr("data", TypeTag::Image))
        .unwrap();
    // Guard rule: both bands must be from the same instant. Checked
    // *locally*, before anything is shipped to the site.
    let guards = Template {
        assertions: vec![Expr::eq(
            Expr::proj("nir", TEMPORAL),
            Expr::proj("red", TEMPORAL),
        )],
        mappings: vec![],
    };
    g.define_external_process(
        ProcessSpec::new("P_ndvi_remote", "ndvi_map")
            .arg("nir", "avhrr")
            .arg("red", "avhrr")
            .template(guards)
            .doc("NDVI computed at the NASA EOS processing facility"),
        "nasa_eos",
    )
    .unwrap();
    g
}

fn insert_band(g: &mut Gaea, fill: f64) -> ObjectId {
    g.insert_object(
        "avhrr",
        vec![
            (
                "data",
                Value::image(Image::filled(8, 8, PixType::Float8, fill)),
            ),
            (SPATIAL, Value::GeoBox(africa())),
            (TEMPORAL, Value::AbsTime(jun88())),
        ],
    )
    .unwrap()
}

#[test]
fn external_process_fires_through_its_site() {
    let mut g = external_kernel();
    g.register_site("nasa_eos", ndvi_site());
    assert_eq!(g.sites(), vec!["nasa_eos"]);
    let nir = insert_band(&mut g, 0.8);
    let red = insert_band(&mut g, 0.2);
    let run = g
        .run_process("P_ndvi_remote", &[("nir", vec![nir]), ("red", vec![red])])
        .unwrap();
    let task = g.task(run.task).unwrap().clone();
    assert_eq!(task.kind, TaskKind::External);
    assert_eq!(task.params["site"], Value::Text("nasa_eos".into()));
    // NDVI of (0.8, 0.2) = 0.6/1.0.
    let out = g.object(run.outputs[0]).unwrap();
    let img = out.attr("data").unwrap().as_image().unwrap();
    assert!((img.get(0, 0) - 0.6).abs() < 1e-12);
    assert_eq!(out.spatial_extent(), Some(africa()));
    // Lineage does not care where the mapping ran.
    assert_eq!(g.ancestors(run.outputs[0]).unwrap().len(), 2);
}

#[test]
fn unregistered_or_down_sites_fail_cleanly() {
    let mut g = external_kernel();
    let nir = insert_band(&mut g, 0.8);
    let red = insert_band(&mut g, 0.2);
    // No site registered at all.
    let err = g
        .run_process("P_ndvi_remote", &[("nir", vec![nir]), ("red", vec![red])])
        .unwrap_err();
    assert!(matches!(err, KernelError::SiteUnavailable { .. }), "{err}");
    // Registered but down (outage injection).
    let site = ndvi_site();
    g.register_site("nasa_eos", site.clone());
    site.set_reachable(false);
    let err = g
        .run_process("P_ndvi_remote", &[("nir", vec![nir]), ("red", vec![red])])
        .unwrap_err();
    assert!(matches!(err, KernelError::SiteUnavailable { .. }), "{err}");
    // Nothing was stored or recorded on either failure.
    assert_eq!(g.count_objects("ndvi_map").unwrap(), 0);
    assert!(g.catalog().tasks.is_empty());
    // Service restored: the derivation goes through.
    site.set_reachable(true);
    assert!(g
        .run_process("P_ndvi_remote", &[("nir", vec![nir]), ("red", vec![red])])
        .is_ok());
}

#[test]
fn guards_are_checked_locally_before_dispatch() {
    let mut g = external_kernel();
    // A site that panics if ever reached — the guard must fail first.
    g.register_site(
        "nasa_eos",
        Arc::new(SimulatedSite::new("nasa_eos", |_, _| {
            panic!("inputs must not be shipped when local guards fail")
        })),
    );
    let nir = insert_band(&mut g, 0.8);
    // red is from a different instant: the declared guard
    // `nir.timestamp = red.timestamp` fails locally.
    let red = g
        .insert_object(
            "avhrr",
            vec![
                (
                    "data",
                    Value::image(Image::filled(8, 8, PixType::Float8, 0.2)),
                ),
                (SPATIAL, Value::GeoBox(africa())),
                (
                    TEMPORAL,
                    Value::AbsTime(AbsTime::from_ymd(1989, 6, 1).unwrap()),
                ),
            ],
        )
        .unwrap();
    let err = g
        .run_process("P_ndvi_remote", &[("nir", vec![nir]), ("red", vec![red])])
        .unwrap_err();
    // An AssertionFailed error (not a site panic) proves evaluation order.
    assert!(matches!(err, KernelError::AssertionFailed { .. }), "{err}");
    assert_eq!(g.count_objects("ndvi_map").unwrap(), 0);
}

#[test]
fn queries_derive_through_reachable_external_sites_only() {
    let mut g = external_kernel();
    insert_band(&mut g, 0.9);
    insert_band(&mut g, 0.3);
    let q = Query::class("ndvi_map").with_strategy(QueryStrategy::PreferDerivation);
    // Site absent: the planner must not route through the external process.
    let err = g.query(&q).unwrap_err();
    assert!(
        matches!(
            err,
            KernelError::DerivationImpossible(_) | KernelError::NoData(_)
        ),
        "{err}"
    );
    // Site registered: automatic derivation crosses the site boundary.
    g.register_site("nasa_eos", ndvi_site());
    let out = g.query(&q).unwrap();
    assert_eq!(out.method, QueryMethod::Derived);
    assert_eq!(out.objects.len(), 1);
    let task = g.task(out.tasks[0]).unwrap();
    assert_eq!(task.kind, TaskKind::External);
}

#[test]
fn external_reproduction_depends_on_the_site() {
    let mut g = external_kernel();
    let site = ndvi_site();
    g.register_site("nasa_eos", site.clone());
    let nir = insert_band(&mut g, 0.8);
    let red = insert_band(&mut g, 0.2);
    let run = g
        .run_process("P_ndvi_remote", &[("nir", vec![nir]), ("red", vec![red])])
        .unwrap();
    g.record_experiment("remote_ndvi_88", "NDVI via EOS", vec![run.task])
        .unwrap();
    // Site up: replayed and matching.
    let rep = g.reproduce_experiment("remote_ndvi_88").unwrap();
    assert!(rep.is_faithful(), "{rep:?}");
    assert_eq!(rep.tasks_rerun, 1);
    assert!(!rep.has_unreplayable());
    // Site down: the history stands, the computation cannot be repeated.
    site.set_reachable(false);
    let rep = g.reproduce_experiment("remote_ndvi_88").unwrap();
    assert!(rep.is_faithful(), "down site is not a divergence: {rep:?}");
    assert_eq!(rep.tasks_rerun, 0);
    assert!(rep.has_unreplayable());
    assert!(rep.not_replayable[0].contains("nasa_eos"), "{rep:?}");
}

#[test]
fn external_definitions_are_validated() {
    let mut g = external_kernel();
    // Mappings are not allowed locally.
    let bad = ProcessSpec::new("P_bad", "ndvi_map")
        .arg("nir", "avhrr")
        .template(Template {
            assertions: vec![],
            mappings: vec![gaea::core::template::Mapping {
                attr: "data".into(),
                expr: Expr::int(1),
            }],
        });
    let err = g.define_external_process(bad, "x").unwrap_err();
    assert!(err.to_string().contains("assertions"), "{err}");
    // Interactions are not allowed remotely.
    let bad = ProcessSpec::new("P_bad2", "ndvi_map")
        .arg("nir", "avhrr")
        .interact("k", "pick k", TypeTag::Int4);
    assert!(g.define_external_process(bad, "x").is_err());
    // The definition itself does not require the site to exist yet.
    let ok = ProcessSpec::new("P_future", "ndvi_map").arg("nir", "avhrr");
    let id = g.define_external_process(ok, "not_yet_built").unwrap();
    assert_eq!(
        g.catalog().process(id).unwrap().site(),
        Some("not_yet_built")
    );
}

// ---------------------------------------------------------------------
// Non-applicative processes
// ---------------------------------------------------------------------

/// Kernel with a ground-truth survey: `site_survey` data is derived from
/// `avhrr` scenes by *fieldwork*, not by an algorithm.
fn survey_kernel() -> Gaea {
    let mut g = external_kernel();
    g.define_class(
        ClassSpec::derived("site_survey")
            .attr("vegetation_pct", TypeTag::Float8)
            .attr("surveyor", TypeTag::Text),
    )
    .unwrap();
    g.define_nonapplicative_process(
        "P_field_survey",
        "site_survey",
        &[("scene".to_string(), "avhrr".to_string(), false, 1)],
        "visit the scene's footprint, sample 20 quadrats, record canopy cover",
        "ground-truthing for classifier validation",
    )
    .unwrap();
    g
}

#[test]
fn nonapplicative_tasks_are_recorded_not_computed() {
    let mut g = survey_kernel();
    let scene = insert_band(&mut g, 0.5);
    // Firing is refused, with the procedure quoted.
    let err = g
        .run_process("P_field_survey", &[("scene", vec![scene])])
        .unwrap_err();
    match &err {
        KernelError::NotAutoFirable { process, reason } => {
            assert_eq!(process, "P_field_survey");
            assert!(reason.contains("quadrats"), "{reason}");
        }
        other => panic!("unexpected {other}"),
    }
    // The scientist records the observed outcome instead.
    let run = g
        .record_manual_task(
            "P_field_survey",
            &[("scene", vec![scene])],
            vec![
                ("vegetation_pct", Value::Float8(37.5)),
                ("surveyor", Value::Text("qiu".into())),
                (SPATIAL, Value::GeoBox(africa())),
                (TEMPORAL, Value::AbsTime(jun88())),
            ],
            "dry season; northern quadrats inaccessible",
        )
        .unwrap();
    let task = g.task(run.task).unwrap().clone();
    assert_eq!(task.kind, TaskKind::Manual);
    assert!(task.params["procedure"]
        .as_str()
        .unwrap()
        .contains("quadrats"));
    assert!(task.params["notes"]
        .as_str()
        .unwrap()
        .contains("dry season"));
    // The observation is a first-class object with lineage.
    let obj = g.object(run.outputs[0]).unwrap();
    assert_eq!(obj.attr("vegetation_pct"), Some(&Value::Float8(37.5)));
    assert_eq!(g.ancestors(run.outputs[0]).unwrap(), vec![scene]);
    // Recording against a computable process is refused.
    let nir = insert_band(&mut g, 0.8);
    let red = insert_band(&mut g, 0.2);
    assert!(g
        .record_manual_task(
            "P_ndvi_remote",
            &[("nir", vec![nir]), ("red", vec![red])],
            vec![],
            ""
        )
        .is_err());
}

#[test]
fn nonapplicative_processes_stay_out_of_automatic_derivation() {
    let mut g = survey_kernel();
    insert_band(&mut g, 0.5);
    let q = Query::class("site_survey").with_strategy(QueryStrategy::PreferDerivation);
    let err = g.query(&q).unwrap_err();
    assert!(
        matches!(
            err,
            KernelError::DerivationImpossible(_) | KernelError::NoData(_)
        ),
        "{err}"
    );
    // But the full derivation diagram shows the relationship (browsable).
    let dnet = g.derivation_net();
    let cat = g.catalog();
    let pid = cat.process_by_name("P_field_survey").unwrap().id;
    assert!(dnet.transition_of.contains_key(&pid));
}

#[test]
fn manual_tasks_reproduce_as_audit_notes() {
    let mut g = survey_kernel();
    let scene = insert_band(&mut g, 0.5);
    let run = g
        .record_manual_task(
            "P_field_survey",
            &[("scene", vec![scene])],
            vec![("vegetation_pct", Value::Float8(41.0))],
            "",
        )
        .unwrap();
    g.record_experiment("survey_88", "field validation", vec![run.task])
        .unwrap();
    let rep = g.reproduce_experiment("survey_88").unwrap();
    assert!(rep.is_faithful(), "{rep:?}");
    assert_eq!(rep.tasks_rerun, 0, "nothing computable to rerun");
    assert!(rep.has_unreplayable());
    assert!(rep.not_replayable[0].contains("non-applicative"), "{rep:?}");
}
