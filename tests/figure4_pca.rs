//! Experiment F4 — Figure 4, the PCA compound-operator network.
//!
//! The network (`convert-image-matrix → compute-covariance →
//! get-eigen-vector → linear-combination → convert-matrix-image`) is built
//! literally as a dataflow graph and registered as the `pca` operator; the
//! SPCA variant swaps the covariance stage for correlation. These tests
//! verify the network against the fused implementation, the PCA/SPCA
//! divergence (the §2.1.3 Eastman comparison), and the reproducibility
//! claim: "such an experiment can be reproduced once the derivation
//! procedures are captured".

use gaea::adt::{Image, OperatorRegistry, Value};
use gaea::raster::ops::build_pca_dataflow;
use gaea::raster::{pca, register_raster_ops, spca};
use gaea::workload::{SceneSpec, SyntheticScene};

fn registry() -> OperatorRegistry {
    let mut r = OperatorRegistry::with_builtins();
    register_raster_ops(&mut r).unwrap();
    r
}

fn bands_value(scene: &SyntheticScene) -> Value {
    Value::Set(scene.bands.iter().cloned().map(Value::image).collect())
}

#[test]
fn network_structure_matches_figure4() {
    let g = build_pca_dataflow("pca_check", false);
    let ops: Vec<&str> = g.nodes().iter().map(|n| n.op.as_str()).collect();
    assert_eq!(
        ops,
        vec![
            "convert_image_matrix",
            "compute_covariance",
            "get_eigen_vectors",
            "linear_combination",
            "anyof",
            "convert_matrix_image",
        ],
        "node inventory mirrors the figure"
    );
    let r = registry();
    assert!(g.validate(&r).is_ok());
}

#[test]
fn network_equals_fused_pca() {
    let r = registry();
    let scene = SyntheticScene::generate(SceneSpec::small(4).sized(24, 24).with_bands(4));
    let out = r.invoke("pca", &[bands_value(&scene)]).unwrap();
    let comps = out.as_set().unwrap();
    assert_eq!(comps.len(), 4);
    let refs: Vec<&Image> = scene.bands.iter().collect();
    let fused = pca(&refs).unwrap();
    for (k, comp) in comps.iter().enumerate() {
        let net_img = comp.as_image().unwrap();
        for p in 0..net_img.len() {
            let diff = (net_img.get_flat(p) - fused.components[k].get_flat(p)).abs();
            assert!(diff < 1e-6, "component {k} pixel {p}: {diff}");
        }
    }
}

#[test]
fn spca_network_equals_fused_spca() {
    let r = registry();
    let scene = SyntheticScene::generate(SceneSpec::small(6).sized(16, 16).with_bands(3));
    let out = r.invoke("spca", &[bands_value(&scene)]).unwrap();
    let comps = out.as_set().unwrap();
    let refs: Vec<&Image> = scene.bands.iter().collect();
    let fused = spca(&refs).unwrap();
    for (k, comp) in comps.iter().enumerate() {
        let net_img = comp.as_image().unwrap();
        for p in 0..net_img.len() {
            let diff = (net_img.get_flat(p) - fused.components[k].get_flat(p)).abs();
            assert!(diff < 1e-6, "component {k} pixel {p}");
        }
    }
}

#[test]
fn pca_and_spca_derive_different_objects_from_same_input() {
    // §2.1.3: SPCA-derived vegetation change was "compared to the 'same
    // conceptual outcome' provided by PCA" — different data, same concept.
    let r = registry();
    let scene = SyntheticScene::generate(SceneSpec::small(8).sized(16, 16).with_bands(3));
    // Scale one band so the two transforms demonstrably diverge.
    let mut bands = scene.bands.clone();
    bands[2] = bands[2].map(gaea::adt::PixType::Float8, |v| v * 100.0);
    let input = Value::Set(bands.into_iter().map(Value::image).collect());
    let p = r.invoke("pca", std::slice::from_ref(&input)).unwrap();
    let s = r.invoke("spca", &[input]).unwrap();
    assert_ne!(p, s, "value identity distinguishes the two derivations");
}

#[test]
fn network_application_is_deterministic() {
    // Reproducibility at the operator level: same input ⇒ identical output
    // objects (value identity), so recorded tasks replay faithfully.
    let r = registry();
    let scene = SyntheticScene::generate(SceneSpec::small(12).sized(16, 16));
    let a = r.invoke("pca", &[bands_value(&scene)]).unwrap();
    let b = r.invoke("pca", &[bands_value(&scene)]).unwrap();
    assert_eq!(a, b);
}

#[test]
fn variance_ordering_and_explained_fraction() {
    let scene = SyntheticScene::generate(SceneSpec::small(3).sized(32, 32).with_bands(5));
    let refs: Vec<&Image> = scene.bands.iter().collect();
    let out = pca(&refs).unwrap();
    // Eigenvalues descending; explained fractions sum to 1.
    for w in out.eigen.values.windows(2) {
        assert!(w[0] >= w[1] - 1e-9);
    }
    let total: f64 = (0..5).map(|k| out.eigen.explained(k)).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // The synthetic scene's class structure concentrates variance up front.
    assert!(out.eigen.explained(0) > 0.5);
}
