//! Experiment F3 — Figure 3, process P20 (unsupervised classification).
//!
//! The full loop on the figure's own artifact: the DDL text is parsed,
//! the process is fired as a task, the assertions guard bad inputs, the
//! classification output is validated against the synthetic ground truth,
//! and the task record supports the "January 1986 for Africa" query of
//! §2.1.2.

use gaea::adt::{AbsTime, GeoBox, Value};
use gaea::core::kernel::Gaea;
use gaea::core::{KernelError, Query, QueryMethod, QueryStrategy};
use gaea::lang::{lower_program, parse};
use gaea::workload::{SceneSpec, SyntheticScene};

const FIGURE3: &str = r#"
CLASS tm (
  ATTRIBUTES: data = image;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
)
CLASS land_cover (
  ATTRIBUTES:
    data = image;
    numclass = int4;
  SPATIAL EXTENT: spatialextent = box;
  TEMPORAL EXTENT: timestamp = abstime;
  DERIVED BY: P20
)
DEFINE PROCESS P20 (
  OUTPUT land_cover
  ARGUMENT ( SETOF bands tm )
  TEMPLATE {
    ASSERTIONS:
      card(bands) = 3;  // need three bands
      common(bands.spatialextent);
      common(bands.timestamp);
    MAPPINGS:
      land_cover.data = unsuperclassify(composite(bands), 12);
      land_cover.numclass = 12;
      land_cover.spatialextent = ANYOF bands.spatialextent;
      land_cover.timestamp = ANYOF bands.timestamp;
  }
)
"#;

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

fn kernel_with_scene(seed: u64, classes: usize) -> (Gaea, SyntheticScene, AbsTime) {
    let mut g = Gaea::in_memory().with_user("figure3");
    lower_program(&mut g, &parse(FIGURE3).unwrap()).unwrap();
    let mut spec = SceneSpec::small(seed).sized(32, 32);
    spec.classes = classes;
    let scene = SyntheticScene::generate(spec);
    let t = AbsTime::from_ymd(1986, 1, 15).unwrap();
    for band in &scene.bands {
        g.insert_object(
            "tm",
            vec![
                ("data", Value::image(band.clone())),
                ("spatialextent", Value::GeoBox(africa())),
                ("timestamp", Value::AbsTime(t)),
            ],
        )
        .unwrap();
    }
    (g, scene, t)
}

#[test]
fn p20_task_produces_a_valid_classification() {
    let (mut g, scene, t) = kernel_with_scene(42, 4);
    let bands = g.objects_of("tm").unwrap();
    let run = g.run_process("P20", &[("bands", bands)]).unwrap();
    let out = g.object(run.outputs[0]).unwrap();
    // Mapped attributes per the template.
    assert_eq!(out.attr("numclass"), Some(&Value::Int4(12)));
    assert_eq!(out.spatial_extent(), Some(africa()));
    assert_eq!(out.timestamp(), Some(t));
    // Labels live in [0, 12).
    let img = out.attr("data").unwrap().as_image().unwrap().clone();
    for i in 0..img.len() {
        assert!(img.get_flat(i) < 12.0);
    }
    // With k = 12 over 4 latent classes the clusters over-segment the
    // truth; purity (majority-class mapping) is the right fidelity score.
    let purity = scene.purity(&img);
    assert!(purity > 0.9, "purity {purity}");
}

#[test]
fn p20_assertions_block_bad_bindings() {
    let (mut g, _scene, t) = kernel_with_scene(7, 4);
    let bands = g.objects_of("tm").unwrap();
    // A fourth band at a different timestamp.
    let stray = g
        .insert_object(
            "tm",
            vec![
                (
                    "data",
                    Value::image(gaea::adt::Image::filled(
                        32,
                        32,
                        gaea::adt::PixType::Float8,
                        5.0,
                    )),
                ),
                ("spatialextent", Value::GeoBox(africa())),
                ("timestamp", Value::AbsTime(AbsTime(t.0 + 86_400 * 90))),
            ],
        )
        .unwrap();
    // card(bands) = 3 rejects four bands.
    let four = vec![bands[0], bands[1], bands[2], stray];
    let err = g.run_process("P20", &[("bands", four)]).unwrap_err();
    assert!(matches!(err, KernelError::AssertionFailed { .. }), "{err}");
    // Mixed timestamps reject.
    let mixed = vec![bands[0], bands[1], stray];
    let err = g.run_process("P20", &[("bands", mixed)]).unwrap_err();
    match err {
        KernelError::AssertionFailed { assertion, .. } => {
            assert_eq!(assertion, "common(bands.timestamp)");
        }
        other => panic!("unexpected: {other}"),
    }
}

#[test]
fn the_january_1986_africa_query() {
    // §2.1.2: "A simple example of a task is the derivation of the land use
    // classification for January 1986 for Africa. This involves a query on
    // the LAND COVER class, which translates into a conventional retrieval
    // if the data have been precomputed; or into the retrieval of the
    // proper Landsat TM spatio-temporal objects, followed by the
    // application of the unsupervised classification process (P20)."
    let (mut g, _scene, t) = kernel_with_scene(11, 4);
    let q = Query::class("land_cover")
        .over(africa())
        .at(t)
        .with_strategy(QueryStrategy::PreferDerivation);
    // Not precomputed: derivation fires P20.
    let first = g.query(&q).unwrap();
    assert_eq!(first.method, QueryMethod::Derived);
    let task = g.task(first.tasks[0]).unwrap();
    assert_eq!(task.process_name, "P20");
    assert_eq!(task.inputs["bands"].len(), 3);
    // Precomputed now: conventional retrieval.
    let second = g.query(&q).unwrap();
    assert_eq!(second.method, QueryMethod::Retrieved);
    assert_eq!(second.objects[0].id, first.objects[0].id);
}

#[test]
fn p20_is_reproducible() {
    let (mut g, _scene, _t) = kernel_with_scene(99, 3);
    let bands = g.objects_of("tm").unwrap();
    let run = g.run_process("P20", &[("bands", bands)]).unwrap();
    g.record_experiment("fig3", "P20 classification", vec![run.task])
        .unwrap();
    let rep = g.reproduce_experiment("fig3").unwrap();
    assert!(rep.is_faithful(), "{rep:?}");
}
