//! Compound firing is atomic (§2.1.4: "a compound process is merely an
//! abstraction") — a failing later step must undo the objects and task
//! records of earlier steps, or the catalog fills with orphaned
//! intermediate derivations the scientist never asked for.

use gaea::adt::{AbsTime, GeoBox, Image, PixType, TypeTag, Value};
use gaea::core::external::SimulatedSite;
use gaea::core::kernel::{ClassSpec, Gaea, ProcessSpec};
use gaea::core::schema::StepSource;
use gaea::core::task::TaskKind;
use gaea::core::template::{Expr, Mapping, Template};
use gaea::core::{KernelError, ObjectId};
use std::sync::Arc;

const SPATIAL: &str = "spatialextent";
const TEMPORAL: &str = "timestamp";

fn africa() -> GeoBox {
    GeoBox::new(-20.0, -35.0, 55.0, 38.0)
}

/// Schema: raw --P_ok--> mid --P_guarded--> final, where P_guarded's
/// assertion rejects every input (`1 = 2`), plus the compound chaining
/// them.
fn kernel(guard_fails: bool) -> Gaea {
    let mut g = Gaea::in_memory();
    g.define_class(ClassSpec::base("raw").attr("data", TypeTag::Image))
        .unwrap();
    g.define_class(ClassSpec::derived("mid").attr("data", TypeTag::Image))
        .unwrap();
    g.define_class(ClassSpec::derived("final").attr("data", TypeTag::Image))
        .unwrap();
    let transfer = |arg: &str| Template {
        assertions: if guard_fails && arg == "m" {
            vec![Expr::eq(Expr::int(1), Expr::int(2))]
        } else {
            vec![]
        },
        mappings: vec![
            Mapping {
                attr: "data".into(),
                expr: Expr::Arg(arg.into()),
            },
            Mapping {
                attr: SPATIAL.into(),
                expr: Expr::proj(arg, SPATIAL),
            },
            Mapping {
                attr: TEMPORAL.into(),
                expr: Expr::proj(arg, TEMPORAL),
            },
        ],
    };
    g.define_process(
        ProcessSpec::new("P_ok", "mid")
            .arg("r", "raw")
            .template(transfer("r")),
    )
    .unwrap();
    g.define_process(
        ProcessSpec::new("P_guarded", "final")
            .arg("m", "mid")
            .template(transfer("m")),
    )
    .unwrap();
    g.define_compound_process(
        "P_chain",
        "final",
        &[("r".to_string(), "raw".to_string(), false, 1)],
        &[
            ("P_ok".to_string(), vec![StepSource::OuterArg(0)]),
            ("P_guarded".to_string(), vec![StepSource::StepOutput(0)]),
        ],
        "two-step chain",
    )
    .unwrap();
    g
}

fn insert_raw(g: &mut Gaea) -> ObjectId {
    g.insert_object(
        "raw",
        vec![
            (
                "data",
                Value::image(Image::filled(4, 4, PixType::Float8, 1.0)),
            ),
            (SPATIAL, Value::GeoBox(africa())),
            (
                TEMPORAL,
                Value::AbsTime(AbsTime::from_ymd(1986, 1, 15).unwrap()),
            ),
        ],
    )
    .unwrap()
}

#[test]
fn compound_success_leaves_full_record() {
    let mut g = kernel(false);
    let r = insert_raw(&mut g);
    let run = g.run_process("P_chain", &[("r", vec![r])]).unwrap();
    assert_eq!(g.count_objects("mid").unwrap(), 1);
    assert_eq!(g.count_objects("final").unwrap(), 1);
    // Umbrella + 2 children on record.
    assert_eq!(g.catalog().tasks.len(), 3);
    let umbrella = g.task(run.task).unwrap();
    assert_eq!(umbrella.children.len(), 2);
}

#[test]
fn failing_step_undoes_earlier_steps() {
    let mut g = kernel(true);
    let r = insert_raw(&mut g);
    let err = g.run_process("P_chain", &[("r", vec![r])]).unwrap_err();
    assert!(matches!(err, KernelError::AssertionFailed { .. }), "{err}");
    // Atomicity: step 1's intermediate object and task are gone.
    assert_eq!(g.count_objects("mid").unwrap(), 0, "orphaned intermediate");
    assert_eq!(g.count_objects("final").unwrap(), 0);
    assert!(g.catalog().tasks.is_empty(), "orphaned task records");
    // The base object is untouched.
    assert_eq!(g.count_objects("raw").unwrap(), 1);
    assert!(g.object(r).is_ok());
}

/// Compound whose *second* step is external: local rectification feeds a
/// remote classification. Exercises the §2.1.4 expansion crossing the §5
/// site boundary, and atomic undo when the site is down.
fn hybrid_kernel() -> (Gaea, Arc<SimulatedSite>) {
    let mut g = kernel(false);
    g.define_class(ClassSpec::derived("remote_final").attr("data", TypeTag::Image))
        .unwrap();
    g.define_external_process(
        ProcessSpec::new("P_remote", "remote_final").arg("m", "mid"),
        "hpc_center",
    )
    .unwrap();
    g.define_compound_process(
        "P_hybrid",
        "remote_final",
        &[("r".to_string(), "raw".to_string(), false, 1)],
        &[
            ("P_ok".to_string(), vec![StepSource::OuterArg(0)]),
            ("P_remote".to_string(), vec![StepSource::StepOutput(0)]),
        ],
        "local preprocessing, remote analysis",
    )
    .unwrap();
    let site = Arc::new(SimulatedSite::new("hpc_center", |_d, inputs| {
        let m = &inputs["m"][0];
        let mut out = std::collections::BTreeMap::new();
        out.insert("data".to_string(), m.attr("data").cloned().unwrap());
        out.insert(SPATIAL.to_string(), m.attr(SPATIAL).cloned().unwrap());
        out.insert(TEMPORAL.to_string(), m.attr(TEMPORAL).cloned().unwrap());
        Ok(out)
    }));
    g.register_site("hpc_center", site.clone());
    (g, site)
}

#[test]
fn compounds_cross_site_boundaries() {
    let (mut g, _site) = hybrid_kernel();
    let r = insert_raw(&mut g);
    let run = g.run_process("P_hybrid", &[("r", vec![r])]).unwrap();
    assert_eq!(g.count_objects("mid").unwrap(), 1);
    assert_eq!(g.count_objects("remote_final").unwrap(), 1);
    let umbrella = g.task(run.task).unwrap().clone();
    assert_eq!(umbrella.kind, TaskKind::Compound);
    assert_eq!(umbrella.children.len(), 2);
    // The second child is an external task attributed to the site.
    let second = g.task(umbrella.children[1]).unwrap();
    assert_eq!(second.kind, TaskKind::External);
    assert_eq!(second.params["site"], Value::Text("hpc_center".into()));
    // Lineage spans the boundary: final ← mid ← raw.
    assert_eq!(g.ancestors(run.outputs[0]).unwrap().len(), 2);
}

#[test]
fn site_outage_mid_compound_undoes_local_steps() {
    let (mut g, site) = hybrid_kernel();
    let r = insert_raw(&mut g);
    site.set_reachable(false);
    let err = g.run_process("P_hybrid", &[("r", vec![r])]).unwrap_err();
    assert!(matches!(err, KernelError::SiteUnavailable { .. }), "{err}");
    // The local preprocessing of step 1 was rolled back with everything
    // else: atomicity holds across the site boundary.
    assert_eq!(g.count_objects("mid").unwrap(), 0);
    assert_eq!(g.count_objects("remote_final").unwrap(), 0);
    assert!(g.catalog().tasks.is_empty());
    // Service restored: the identical firing succeeds.
    site.set_reachable(true);
    assert!(g.run_process("P_hybrid", &[("r", vec![r])]).is_ok());
}

#[test]
fn retry_after_failure_succeeds_cleanly() {
    // The failed compound must leave the kernel in a state where the same
    // derivation (without the failing guard) runs normally — no leaked
    // OIDs, names or sequence numbers that break a retry.
    let mut g = kernel(true);
    let r = insert_raw(&mut g);
    assert!(g.run_process("P_chain", &[("r", vec![r])]).is_err());
    // A direct P_ok firing still works and records the only task.
    let run = g.run_process("P_ok", &[("r", vec![r])]).unwrap();
    assert_eq!(g.catalog().tasks.len(), 1);
    assert_eq!(g.count_objects("mid").unwrap(), 1);
    let obj = g.object(run.outputs[0]).unwrap();
    assert_eq!(obj.spatial_extent(), Some(africa()));
}
