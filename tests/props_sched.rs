//! Property-based tests on the `gaea-sched` scheduler substrate.
//!
//! The kernel's parallel execution rides on two invariants this suite
//! pins down over random inputs: [`DepGraph::waves`] is a correct,
//! deterministic topological levelling (every edge respected, waves
//! id-sorted, every node exactly once, cycles always detected), and
//! [`Scheduler::map`] returns results in input order at every worker
//! count. CI runs the suite at `PROPTEST_CASES=256`.

use gaea::sched::{DepGraph, NodeId, Scheduler};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random DAG shape: `n` nodes plus raw node pairs that become
/// forward edges `(min, max)` — always acyclic by construction.
fn dag_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (1usize..24).prop_flat_map(|n| (Just(n), prop::collection::vec((0..n, 0..n), 0..64)))
}

fn build_dag(n: usize, pairs: &[(usize, usize)]) -> (DepGraph<usize>, Vec<(usize, usize)>) {
    let mut g: DepGraph<usize> = DepGraph::new();
    for i in 0..n {
        g.add_node(i);
    }
    let mut edges = Vec::new();
    for (a, b) in pairs {
        if a == b {
            continue; // self-edges are rejected by construction
        }
        let (lo, hi) = (*a.min(b), *a.max(b));
        g.add_edge(NodeId(lo), NodeId(hi)).unwrap();
        edges.push((lo, hi));
    }
    (g, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wave levelling of a random acyclic graph: every edge's
    /// prerequisite sits in a strictly earlier wave, every wave is
    /// id-sorted, and the waves partition the node set exactly.
    #[test]
    fn waves_respect_every_edge_and_partition_the_nodes(
        (n, pairs) in dag_strategy()
    ) {
        let (g, edges) = build_dag(n, &pairs);
        let waves = g.waves().expect("forward edges cannot cycle");
        // Wave index per node.
        let mut wave_of = vec![usize::MAX; n];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for (w, wave) in waves.iter().enumerate() {
            // Id-sorted within the wave.
            let ids: Vec<usize> = wave.iter().map(|x| x.0).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&ids, &sorted, "wave {} not id-sorted", w);
            for id in ids {
                prop_assert!(seen.insert(id), "node {} appears twice", id);
                wave_of[id] = w;
            }
        }
        prop_assert_eq!(seen.len(), n, "every node is levelled exactly once");
        for (a, b) in edges {
            prop_assert!(
                wave_of[a] < wave_of[b],
                "edge {}→{} violated: waves {} vs {}",
                a, b, wave_of[a], wave_of[b]
            );
        }
    }

    /// The wave decomposition is a pure function of the edge set:
    /// inserting the same edges in any order yields identical waves.
    #[test]
    fn waves_are_insertion_order_independent(
        (n, pairs) in dag_strategy(),
        seed in any::<u64>()
    ) {
        let (g, edges) = build_dag(n, &pairs);
        // Re-insert the edges in a seed-shuffled order.
        let mut shuffled = edges.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut h: DepGraph<usize> = DepGraph::new();
        for i in 0..n {
            h.add_node(i);
        }
        for (a, b) in shuffled {
            h.add_edge(NodeId(a), NodeId(b)).unwrap();
        }
        prop_assert_eq!(g.waves().unwrap(), h.waves().unwrap());
    }

    /// Injecting a directed cycle into an otherwise random DAG always
    /// fails wave levelling, and the stuck set names cycle members.
    #[test]
    fn cycle_injection_always_errors(
        (n, pairs) in dag_strategy(),
        cycle_len in 2usize..6
    ) {
        let n = n.max(2);
        let cycle_len = cycle_len.min(n);
        let mut g: DepGraph<usize> = DepGraph::new();
        for i in 0..n {
            g.add_node(i);
        }
        for (a, b) in &pairs {
            if a == b {
                continue;
            }
            let (lo, hi) = (*a.min(b), *a.max(b));
            if hi < n {
                g.add_edge(NodeId(lo), NodeId(hi)).unwrap();
            }
        }
        // Close a cycle over the first `cycle_len` nodes: forward chain
        // plus the back edge.
        for i in 0..cycle_len - 1 {
            g.add_edge(NodeId(i), NodeId(i + 1)).unwrap();
        }
        g.add_edge(NodeId(cycle_len - 1), NodeId(0)).unwrap();
        let err = g.waves().expect_err("a cycle admits no wave order");
        prop_assert!(!err.stuck.is_empty());
        // Every cycle member is stuck (possibly with its dependents).
        for i in 0..cycle_len {
            prop_assert!(
                err.stuck.contains(&NodeId(i)),
                "cycle member {} missing from stuck set {:?}",
                i, err.stuck
            );
        }
    }

    /// `Scheduler::map` output order equals input order at 1/2/4/8
    /// workers, for arbitrary inputs — the invariant the kernel's
    /// "committed state is identical at any worker count" claim rides on.
    #[test]
    fn map_output_order_is_input_order_at_any_worker_count(
        items in prop::collection::vec(any::<i64>(), 0..96)
    ) {
        let expected: Vec<(usize, i64)> = items
            .iter()
            .copied()
            .enumerate()
            .map(|(i, x)| (i, x.wrapping_mul(31).rotate_left(7)))
            .collect();
        for workers in [1usize, 2, 4, 8] {
            let got = Scheduler::new(workers)
                .map(items.clone(), |i, x| (i, x.wrapping_mul(31).rotate_left(7)));
            prop_assert_eq!(&got, &expected, "workers={}", workers);
        }
    }
}
